//! # tango-repro — a full reproduction of *Tango: Simplifying SDN
//! Control with Automatic Switch Property Inference, Abstraction, and
//! Optimization* (CoNEXT 2014)
//!
//! This façade crate re-exports every subsystem of the reproduction so
//! the examples and integration tests can use one import. See
//! `README.md` for the tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! | crate | role |
//! |---|---|
//! | [`ofwire`] | OpenFlow 1.0-flavoured wire protocol (from scratch) |
//! | [`simnet`] | deterministic discrete-event simulation substrate |
//! | [`switchsim`] | emulated diverse switches (OVS + three vendors) |
//! | [`tango`] | the paper's contribution: probing + inference |
//! | [`tango_net`] | real-transport control plane: TCP reactor + agents |
//! | [`tango_sched`] | the Tango scheduler and Dionysus baseline |
//! | [`workloads`] | ClassBench-like ACLs, topologies, TE/LF scenarios |
//! | `bench` | experiment harness regenerating every table/figure |

pub use ::bench;
pub use ofwire;
pub use simnet;
pub use switchsim;
pub use tango;
pub use tango_net;
pub use tango_sched;
pub use workloads;
