//! Property-based invariants of the workload substrates.
//!
//! * Max-min fairness: allocations are non-negative, never exceed
//!   demand, never oversubscribe a link, and are *max-min*: no flow can
//!   be increased without decreasing a flow of equal-or-smaller rate.
//! * ClassBench generation: exact rule counts, dependency depth equals
//!   the configured level count, all dependencies point forward.
//! * Scenario generation: dependencies are forward edges, every mod/del
//!   has a preinstall record.

use proptest::prelude::*;
use workloads::classbench::{generate, ClassBenchConfig};
use workloads::dependency::{chain_depth, rule_dependencies};
use workloads::maxmin::{max_min_fair, Demand};
use workloads::routing::{path_links, shortest_path};
use workloads::scenarios::{traffic_engineering, ScenOp};
use workloads::topology::Topology;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn maxmin_is_feasible_and_maximal(
        pairs in proptest::collection::vec((0usize..12, 0usize..12, 0.5f64..40.0), 1..40),
    ) {
        let topo = Topology::b4();
        let demands: Vec<Demand> = pairs
            .into_iter()
            .filter(|&(a, b, _)| a != b)
            .map(|(a, b, demand)| Demand {
                path: shortest_path(&topo, a, b).expect("connected"),
                demand,
            })
            .collect();
        prop_assume!(!demands.is_empty());
        let alloc = max_min_fair(&topo, &demands);

        // Feasibility.
        let mut used = vec![0.0f64; topo.links.len()];
        for (d, &a) in demands.iter().zip(&alloc) {
            prop_assert!(a >= -1e-12);
            prop_assert!(a <= d.demand + 1e-9);
            for l in path_links(&topo, &d.path) {
                used[l] += a;
            }
        }
        for (l, &(_, _, cap)) in topo.links.iter().enumerate() {
            prop_assert!(used[l] <= cap + 1e-6, "link {l}: {} > {cap}", used[l]);
        }

        // Maximality: every unsatisfied flow crosses a saturated link.
        for (d, &a) in demands.iter().zip(&alloc) {
            if a < d.demand - 1e-9 {
                let blocked = path_links(&topo, &d.path)
                    .into_iter()
                    .any(|l| used[l] >= topo.links[l].2 - 1e-6);
                prop_assert!(blocked, "flow got {a} of {} with slack", d.demand);
            }
        }

        // Max-min property: an unsatisfied flow's rate is ≥ every other
        // flow's rate on some saturated link it crosses (it cannot be
        // raised by lowering someone larger).
        for (i, (d, &a)) in demands.iter().zip(&alloc).enumerate() {
            if a < d.demand - 1e-9 {
                let bottlenecks: Vec<usize> = path_links(&topo, &d.path)
                    .into_iter()
                    .filter(|&l| used[l] >= topo.links[l].2 - 1e-6)
                    .collect();
                let can_take_from_larger = bottlenecks.iter().any(|&l| {
                    demands.iter().zip(&alloc).enumerate().all(|(j, (dj, &aj))| {
                        i == j
                            || !path_links(&topo, &dj.path).contains(&l)
                            || aj <= a + 1e-6
                    })
                });
                prop_assert!(
                    can_take_from_larger,
                    "flow {i} at {a} is not max-min"
                );
            }
        }
    }

    #[test]
    fn classbench_depth_matches_config(
        rules in 30usize..160,
        levels in 4usize..25,
        cluster_depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(rules >= levels && cluster_depth <= levels);
        let cfg = ClassBenchConfig { rules, levels, cluster_depth, seed };
        let acl = generate(&cfg);
        prop_assert_eq!(acl.len(), rules);
        let matches: Vec<_> = acl.iter().map(|r| r.flow_match).collect();
        let deps = rule_dependencies(&matches);
        prop_assert_eq!(chain_depth(matches.len(), &deps), levels);
        for &(a, b) in &deps {
            prop_assert!(a < b, "ACL dependencies point forward");
        }
    }

    #[test]
    fn te_scenarios_are_well_formed(
        n in 1usize..150,
        wa in 0u32..4,
        wd in 0u32..4,
        wm in 0u32..4,
        levels in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(wa + wd + wm > 0);
        let topo = Topology::triangle();
        let s = traffic_engineering(&topo, "p", n, (wa, wd, wm), levels, false, seed);
        prop_assert_eq!(s.requests.len(), n);
        for &(before, after) in &s.deps {
            prop_assert!(before < after);
            prop_assert!(after < n);
        }
        for r in &s.requests {
            prop_assert!(r.node < topo.len());
            if matches!(r.op, ScenOp::Mod | ScenOp::Del) {
                prop_assert!(
                    s.preinstall
                        .iter()
                        .any(|&(node, f, _)| node == r.node && f == r.flow_id),
                    "{r:?} lacks a preinstall"
                );
            }
        }
    }

    #[test]
    fn shortest_paths_are_simple_and_minimal(
        a in 0usize..12,
        b in 0usize..12,
    ) {
        let topo = Topology::b4();
        let p = shortest_path(&topo, a, b).expect("connected");
        // Simple: no repeated nodes.
        let mut nodes = p.clone();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), p.len());
        // Each hop is a real link (path_links panics otherwise).
        prop_assert_eq!(path_links(&topo, &p).len(), p.len().saturating_sub(1));
    }
}
