//! ClassBench-style scaled update DAGs: synthetic network-update
//! workloads that grow to 100k+ operations while keeping the structural
//! signature of the paper's scenarios — per-flow dependency chains,
//! occasional cross-flow joins, and a mixed add/del/mod op population
//! with preinstalled targets.
//!
//! The generators here are scheduler-neutral [`Scenario`]s, like
//! [`crate::scenarios`]; the bench layer lowers them onto switches and
//! sweeps the whole `tango_sched::schedulers` portfolio over them
//! (the fig11-style `sched_sweep` experiment arm). All dependency edges
//! point forward in request-index order, so every generated DAG is
//! acyclic by construction.

use crate::scenarios::{ScenOp, Scenario, ScenarioRequest};
use simnet::rng::DetRng;

/// Shape of a scaled update DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateDagConfig {
    /// Total operation count.
    pub ops: usize,
    /// Number of switches the operations spread over.
    pub switches: usize,
    /// Length of each per-flow dependency chain ("cluster"); 1 = flat.
    pub cluster_depth: usize,
    /// `(add, del, mod)` op-mix weights, as in
    /// [`crate::scenarios::traffic_engineering`].
    pub weights: (u32, u32, u32),
    /// Per-request chance (‰) of an extra cross-cluster dependency edge
    /// from an earlier request, creating joins between chains.
    pub cross_dep_permille: u32,
    /// Generator seed.
    pub seed: u64,
}

impl UpdateDagConfig {
    /// The scheduler-sweep preset at a given op count: 8 switches,
    /// depth-6 chains, the add-heavy 6:1:1 mix, 3% cross edges.
    #[must_use]
    pub fn sweep(ops: usize) -> UpdateDagConfig {
        UpdateDagConfig {
            ops,
            switches: 8,
            cluster_depth: 6,
            weights: (6, 1, 1),
            cross_dep_permille: 30,
            seed: 0xDA6,
        }
    }
}

/// Generates a scaled update DAG.
///
/// Requests are grouped into clusters of `cluster_depth` consecutive
/// indices chained head-to-tail (one "flow" being updated hop by hop);
/// cross-cluster edges occasionally join a request to a random earlier
/// one. Every delete/modify targets a preinstalled rule; flow ids are
/// unique per request so concurrent adds never collide.
#[must_use]
pub fn scaled_update_dag(cfg: &UpdateDagConfig) -> Scenario {
    assert!(cfg.switches >= 1);
    assert!(cfg.cluster_depth >= 1);
    let (wa, wd, wm) = cfg.weights;
    let total_w = wa + wd + wm;
    assert!(total_w > 0);
    let mut rng = DetRng::new(cfg.seed);
    let mut requests = Vec::with_capacity(cfg.ops);
    let mut deps = Vec::new();
    let mut preinstall = Vec::new();
    for i in 0..cfg.ops {
        let node = rng.index(cfg.switches);
        let roll = rng.range_u64(0, u64::from(total_w)) as u32;
        let op = if roll < wa {
            ScenOp::Add
        } else if roll < wa + wd {
            ScenOp::Del
        } else {
            ScenOp::Mod
        };
        let priority = 1000 + rng.index(2000) as u16;
        if matches!(op, ScenOp::Del | ScenOp::Mod) {
            preinstall.push((node, i as u32, priority));
        }
        requests.push(ScenarioRequest {
            node,
            op,
            flow_id: i as u32,
            priority: Some(priority),
        });
        // Chain within the cluster.
        if i % cfg.cluster_depth != 0 {
            deps.push((i - 1, i));
        }
        // Occasional cross-cluster join from an earlier request.
        if i > 0 && rng.chance(f64::from(cfg.cross_dep_permille) / 1000.0) {
            let from = rng.index(i);
            if from != i - 1 {
                deps.push((from, i));
            }
        }
    }
    Scenario {
        name: format!("UpdateDAG {}", cfg.ops),
        requests,
        deps,
        preinstall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = UpdateDagConfig::sweep(5_000);
        assert_eq!(scaled_update_dag(&cfg), scaled_update_dag(&cfg));
    }

    #[test]
    fn edges_point_forward_so_the_dag_is_acyclic() {
        let s = scaled_update_dag(&UpdateDagConfig::sweep(10_000));
        assert!(s.deps.iter().all(|&(b, a)| b < a));
    }

    #[test]
    fn sweep_preset_scales_to_requested_ops() {
        for ops in [1_000, 10_000, 100_000] {
            let s = scaled_update_dag(&UpdateDagConfig::sweep(ops));
            assert_eq!(s.requests.len(), ops);
            // Chains exist: at least (depth-1)/depth of ops are chained.
            assert!(s.deps.len() >= ops * 4 / 6, "deps {}", s.deps.len());
        }
    }

    #[test]
    fn mix_follows_weights_and_preinstall_covers_targets() {
        let s = scaled_update_dag(&UpdateDagConfig::sweep(8_000));
        let (adds, mods, dels) = s.op_counts();
        assert_eq!(adds + mods + dels, 8_000);
        assert!((adds as f64 - 6_000.0).abs() < 300.0, "adds {adds}");
        assert!((dels as f64 - 1_000.0).abs() < 200.0, "dels {dels}");
        assert!((mods as f64 - 1_000.0).abs() < 200.0, "mods {mods}");
        assert_eq!(s.preinstall.len(), mods + dels);
        // Unique flow ids: adds can never collide.
        assert!(s
            .requests
            .iter()
            .enumerate()
            .all(|(i, r)| r.flow_id == i as u32));
    }

    #[test]
    fn cross_cluster_edges_join_chains() {
        let s = scaled_update_dag(&UpdateDagConfig::sweep(10_000));
        let chained = s.deps.iter().filter(|&&(b, a)| a - b == 1).count();
        let joins = s.deps.len() - chained;
        assert!(joins > 100, "expected cross-cluster joins, got {joins}");
    }
}
