//! ClassBench-like ACL generation (§7.1).
//!
//! The paper draws three rule sets from ClassBench \[21\] access-control
//! lists; the scheduler experiments consume only the rules' *counts and
//! dependency structure* (Table 2). This generator synthesizes ACLs with
//! controlled size and dependency depth:
//!
//! * a **main chain** of nested prefixes (each rule strictly inside its
//!   predecessor) sets the number of topological priority levels;
//! * the remaining rules form small nested **clusters** in disjoint
//!   address blocks, giving a realistic overlap-rich body without
//!   deepening the chain.
//!
//! The three presets reproduce Table 2's rows: 829/989/972 rules with
//! 64/38/33 topological priority levels.

use ofwire::action::Action;
use ofwire::flow_match::{FlowMatch, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use simnet::rng::DetRng;

/// One ACL rule: a match plus an action, in list-precedence order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AclRule {
    /// What the rule matches.
    pub flow_match: FlowMatch,
    /// The forwarding action.
    pub actions: Vec<Action>,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassBenchConfig {
    /// Total rules to generate.
    pub rules: usize,
    /// Dependency-chain depth = number of topological priority levels.
    pub levels: usize,
    /// Depth of the filler clusters (must not exceed `levels`).
    pub cluster_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ClassBenchConfig {
    /// Table 2 row 1: 829 rules, 64 priority levels.
    #[must_use]
    pub fn classbench1() -> ClassBenchConfig {
        ClassBenchConfig {
            rules: 829,
            levels: 64,
            cluster_depth: 3,
            seed: 0xc1a5_5001,
        }
    }

    /// Table 2 row 2: 989 rules, 38 priority levels.
    #[must_use]
    pub fn classbench2() -> ClassBenchConfig {
        ClassBenchConfig {
            rules: 989,
            levels: 38,
            cluster_depth: 3,
            seed: 0xc1a5_5002,
        }
    }

    /// Table 2 row 3: 972 rules, 33 priority levels.
    #[must_use]
    pub fn classbench3() -> ClassBenchConfig {
        ClassBenchConfig {
            rules: 972,
            levels: 33,
            cluster_depth: 3,
            seed: 0xc1a5_5003,
        }
    }

    /// All three presets with their paper labels.
    #[must_use]
    pub fn presets() -> Vec<(&'static str, ClassBenchConfig)> {
        vec![
            ("Classbench1", ClassBenchConfig::classbench1()),
            ("Classbench2", ClassBenchConfig::classbench2()),
            ("Classbench3", ClassBenchConfig::classbench3()),
        ]
    }
}

/// A chain of `depth` rules nested inside the `/8` block `block`,
/// emitted most-specific-first (standard ACL ordering): rule `k` is
/// strictly inside rule `k+1`, so each earlier rule overlaps every later
/// rule and must receive a higher priority — a dependency chain of
/// length `depth`.
fn nested_chain(block: u32, depth: usize, rng: &mut DetRng) -> Vec<AclRule> {
    // Split the nesting across src and dst prefixes: total depth can
    // reach 48 + 24 without leaving the block.
    let src_base = block << 24;
    let dst_base = (block ^ 0xff) << 24;
    (0..depth)
        .map(|i| {
            // Most specific first: depth-1 downto 0 extra bits.
            let spec = depth - 1 - i;
            let src_extra = spec.min(24) as u8;
            let dst_extra = spec.saturating_sub(24).min(24) as u8;
            let m = FlowMatch {
                dl_type: Some(0x0800),
                nw_src: Some(Ipv4Prefix::new(src_base, 8 + src_extra)),
                nw_dst: Some(Ipv4Prefix::new(dst_base, 8 + dst_extra)),
                ..FlowMatch::default()
            };
            AclRule {
                flow_match: m,
                actions: vec![Action::output(1 + (rng.index(4) as u16))],
            }
        })
        .collect()
}

/// Generates the ACL.
///
/// Panics if `rules < levels` or `cluster_depth` is zero or exceeds
/// `levels` (the chain must dominate the depth).
#[must_use]
pub fn generate(config: &ClassBenchConfig) -> Vec<AclRule> {
    assert!(config.rules >= config.levels, "rules < levels");
    assert!(
        (1..=config.levels).contains(&config.cluster_depth),
        "cluster_depth out of range"
    );
    let mut rng = DetRng::new(config.seed);
    let mut rules = nested_chain(10, config.levels, &mut rng);

    // Filler clusters in disjoint /16 blocks within 11.0.0.0/8 …
    // 200.x — never the chain's block (10/8) nor its dst mirror.
    let mut next_block: u32 = (11 << 8) + 1; // /16 index: high 16 bits
    let mut remaining = config.rules - config.levels;
    while remaining > 0 {
        let depth = config.cluster_depth.min(remaining).max(1);
        let block16 = next_block;
        next_block += 1;
        let src_base = block16 << 16;
        // Transport fields are drawn once per cluster so the cluster's
        // rules genuinely nest (differing ports would break the overlap).
        let proto = if rng.chance(0.5) { 6u8 } else { 17 };
        let tp_dst = 1000 + rng.index(64) as u16 * 16;
        for j in 0..depth {
            // Most specific first within the cluster: j extra bits fewer.
            let extra = (depth - 1 - j) as u8;
            let m = FlowMatch {
                dl_type: Some(0x0800),
                nw_src: Some(Ipv4Prefix::new(src_base, 16 + extra)),
                nw_dst: None,
                nw_proto: Some(proto),
                tp_dst: Some(tp_dst),
                ..FlowMatch::default()
            };
            rules.push(AclRule {
                flow_match: m,
                actions: vec![Action::output(1 + (rng.index(4) as u16))],
            });
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
    }
    assert_eq!(rules.len(), config.rules);
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{chain_depth, rule_dependencies};

    #[test]
    fn presets_match_table2_counts() {
        for (name, cfg) in ClassBenchConfig::presets() {
            let rules = generate(&cfg);
            assert_eq!(rules.len(), cfg.rules, "{name} rule count");
            let matches: Vec<FlowMatch> = rules.iter().map(|r| r.flow_match).collect();
            let deps = rule_dependencies(&matches);
            let depth = chain_depth(matches.len(), &deps);
            assert_eq!(depth, cfg.levels, "{name} priority levels");
        }
    }

    #[test]
    fn chain_rules_are_strictly_nested() {
        let mut rng = DetRng::new(1);
        let chain = nested_chain(10, 10, &mut rng);
        for w in chain.windows(2) {
            // Later rule (more general) subsumes the earlier one.
            assert!(w[1].flow_match.subsumes(&w[0].flow_match));
            assert!(!w[0].flow_match.subsumes(&w[1].flow_match));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ClassBenchConfig::classbench1();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn clusters_do_not_deepen_the_chain() {
        // A tiny config where fillers dominate: depth still equals the
        // configured levels.
        let cfg = ClassBenchConfig {
            rules: 100,
            levels: 7,
            cluster_depth: 3,
            seed: 9,
        };
        let rules = generate(&cfg);
        let matches: Vec<FlowMatch> = rules.iter().map(|r| r.flow_match).collect();
        let deps = rule_dependencies(&matches);
        assert_eq!(chain_depth(matches.len(), &deps), 7);
    }

    #[test]
    #[should_panic(expected = "rules < levels")]
    fn invalid_config_panics() {
        let _ = generate(&ClassBenchConfig {
            rules: 5,
            levels: 10,
            cluster_depth: 3,
            seed: 0,
        });
    }
}
