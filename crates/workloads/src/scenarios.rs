//! Network-wide update scenarios (§7.2): link failure (LF) and traffic
//! engineering (TE), expressed as scheduler-neutral request lists plus
//! dependency edges and the rules that must be preinstalled for mods and
//! deletes to have targets.
//!
//! The bench/example layer lowers a [`Scenario`] onto concrete switches
//! and a `tango-sched` request DAG.

use crate::maxmin::{max_min_fair, Demand};
use crate::routing::shortest_path;
use crate::topology::{NodeIdx, Topology};
use serde::{Deserialize, Serialize};
use simnet::rng::DetRng;

/// Operation class of one scenario request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenOp {
    /// Install a new rule.
    Add,
    /// Change an existing rule's action.
    Mod,
    /// Remove an existing rule.
    Del,
}

/// One per-switch request of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioRequest {
    /// Topology node (switch) the request targets.
    pub node: NodeIdx,
    /// Operation.
    pub op: ScenOp,
    /// Flow identity; maps 1:1 to a concrete match at lowering time.
    pub flow_id: u32,
    /// Rule priority; `None` = let Tango enforce one.
    pub priority: Option<u16>,
}

/// A complete scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario label (e.g. `"LF"`, `"TE 1"`).
    pub name: String,
    /// Requests, in submission order.
    pub requests: Vec<ScenarioRequest>,
    /// Dependency edges `(before, after)` into `requests`.
    pub deps: Vec<(usize, usize)>,
    /// Rules that must exist before the scenario starts:
    /// `(node, flow_id, priority)`.
    pub preinstall: Vec<(NodeIdx, u32, u16)>,
}

impl Scenario {
    /// Counts of (adds, mods, dels).
    #[must_use]
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.requests {
            match r.op {
                ScenOp::Add => c.0 += 1,
                ScenOp::Mod => c.1 += 1,
                ScenOp::Del => c.2 += 1,
            }
        }
        c
    }
}

/// The paper's LF scenario: the `(a, b)` link fails; `n_flows` existing
/// flows from `a` to `b` are rerouted over the detour. Per the paper's
/// footnote 3, the reroute produces **only rule additions on s1** (new
/// next-hop rules at the source, which must out-rank the dead route) and
/// **rule modifications on s2** (ingress adjustment at the far end) —
/// which is exactly why rule-type reordering has no room to help in this
/// scenario. Update consistency orders each flow destination-first:
/// `mod(s2)` before `add(s1)`.
#[must_use]
pub fn link_failure(
    topo: &Topology,
    failed: (NodeIdx, NodeIdx),
    n_flows: usize,
    seed: u64,
) -> Scenario {
    let mut rng = DetRng::new(seed);
    let broken = topo.without_link(failed.0, failed.1);
    let detour = shortest_path(&broken, failed.0, failed.1)
        .expect("topology must survive single link failure");
    assert!(detour.len() >= 3, "detour must use at least one transit");

    let mut requests = Vec::new();
    let mut deps = Vec::new();
    let mut preinstall = Vec::new();
    for f in 0..n_flows as u32 {
        let priority = 1000 + rng.index(2000) as u16;
        // The far end's existing ingress rule is modified in place.
        preinstall.push((failed.1, f, priority));
        requests.push(ScenarioRequest {
            node: failed.1,
            op: ScenOp::Mod,
            flow_id: f,
            priority: Some(priority),
        });
        let mod_idx = requests.len() - 1;
        // The source installs the new (detour) route above the old one.
        requests.push(ScenarioRequest {
            node: failed.0,
            op: ScenOp::Add,
            flow_id: f,
            priority: Some(priority),
        });
        let add_idx = requests.len() - 1;
        deps.push((mod_idx, add_idx));
    }
    Scenario {
        name: "LF".into(),
        requests,
        deps,
        preinstall,
    }
}

/// A traffic-engineering scenario on an arbitrary topology: `n_requests`
/// single-switch operations with the given `add:del:mod` weights,
/// `dag_levels` dependency depth (1 = flat, 2 = pairwise chains, …), and
/// random rule priorities (or `None` if `enforce_priorities`).
#[must_use]
pub fn traffic_engineering(
    topo: &Topology,
    name: &str,
    n_requests: usize,
    weights: (u32, u32, u32),
    dag_levels: usize,
    enforce_priorities: bool,
    seed: u64,
) -> Scenario {
    assert!(dag_levels >= 1);
    let mut rng = DetRng::new(seed);
    let (wa, wd, wm) = weights;
    let total_w = wa + wd + wm;
    assert!(total_w > 0);
    let mut requests = Vec::new();
    let mut preinstall = Vec::new();
    for i in 0..n_requests as u32 {
        let node = rng.index(topo.len());
        let roll = rng.range_u64(0, u64::from(total_w)) as u32;
        let op = if roll < wa {
            ScenOp::Add
        } else if roll < wa + wd {
            ScenOp::Del
        } else {
            ScenOp::Mod
        };
        let priority = 1000 + rng.index(2000) as u16;
        if matches!(op, ScenOp::Del | ScenOp::Mod) {
            preinstall.push((node, i, priority));
        }
        requests.push(ScenarioRequest {
            node,
            op,
            flow_id: i,
            priority: if enforce_priorities {
                None
            } else {
                Some(priority)
            },
        });
    }
    // Dependency chains of length `dag_levels`: request k depends on
    // request k - n/levels (same stripe), forming `levels` tiers.
    let mut deps = Vec::new();
    if dag_levels > 1 {
        let stripe = n_requests / dag_levels;
        if stripe > 0 {
            for k in stripe..n_requests {
                deps.push((k - stripe, k));
            }
        }
    }
    Scenario {
        name: name.into(),
        requests,
        deps,
        preinstall,
    }
}

/// The Fig 12 workload: a traffic-matrix change on B4. `n_flows`
/// end-to-end flows run over shortest paths with max-min fair rates; a
/// seeded perturbation rescales demands, and every flow whose allocation
/// changes produces `Mod`s along its path (new flows produce `Add`s,
/// drained flows `Del`s), destination-first per flow.
#[must_use]
pub fn b4_traffic_engineering(n_flows: usize, seed: u64) -> Scenario {
    let topo = Topology::b4();
    let mut rng = DetRng::new(seed);
    // End-to-end flows between distinct random sites.
    let mut demands = Vec::new();
    let mut pairs = Vec::new();
    for _ in 0..n_flows {
        let a = rng.index(topo.len());
        let mut b = rng.index(topo.len());
        while b == a {
            b = rng.index(topo.len());
        }
        pairs.push((a, b));
        demands.push(Demand {
            path: shortest_path(&topo, a, b).expect("connected"),
            demand: 1.0 + rng.f64() * 9.0,
        });
    }
    let before = max_min_fair(&topo, &demands);
    // Traffic-matrix change: rescale a third of the demands, drop a
    // tenth, add a tenth new.
    let mut after_demands = demands.clone();
    let mut dropped = vec![false; n_flows];
    for (i, d) in after_demands.iter_mut().enumerate() {
        let roll = rng.f64();
        if roll < 0.10 {
            dropped[i] = true;
            d.demand = 0.0;
        } else if roll < 0.43 {
            d.demand *= 0.3 + rng.f64() * 2.0;
        }
    }
    let after = max_min_fair(&topo, &after_demands);

    let mut requests = Vec::new();
    let mut deps = Vec::new();
    let mut preinstall = Vec::new();
    let emit_path_ops = |flow: u32,
                         path: &[NodeIdx],
                         op: ScenOp,
                         priority: u16,
                         requests: &mut Vec<ScenarioRequest>,
                         deps: &mut Vec<(usize, usize)>| {
        // Ops at every switch except the destination, destination-side
        // first.
        let hops = &path[..path.len() - 1];
        let mut prev: Option<usize> = None;
        for &node in hops.iter().rev() {
            requests.push(ScenarioRequest {
                node,
                op,
                flow_id: flow,
                priority: Some(priority),
            });
            let idx = requests.len() - 1;
            if let Some(p) = prev {
                deps.push((p, idx));
            }
            prev = Some(idx);
        }
    };

    for (i, d) in demands.iter().enumerate() {
        let flow = i as u32;
        let priority = 1000 + rng.index(2000) as u16;
        let changed = (before[i] - after[i]).abs() > 1e-9;
        if dropped[i] {
            for &node in &d.path[..d.path.len() - 1] {
                preinstall.push((node, flow, priority));
            }
            emit_path_ops(
                flow,
                &d.path,
                ScenOp::Del,
                priority,
                &mut requests,
                &mut deps,
            );
        } else if changed {
            for &node in &d.path[..d.path.len() - 1] {
                preinstall.push((node, flow, priority));
            }
            emit_path_ops(
                flow,
                &d.path,
                ScenOp::Mod,
                priority,
                &mut requests,
                &mut deps,
            );
        }
    }
    // New flows: a tenth more, with fresh ids.
    let n_new = n_flows / 10;
    for k in 0..n_new {
        let a = rng.index(topo.len());
        let mut b = rng.index(topo.len());
        while b == a {
            b = rng.index(topo.len());
        }
        let path = shortest_path(&topo, a, b).expect("connected");
        let flow = (n_flows + k) as u32;
        let priority = 1000 + rng.index(2000) as u16;
        emit_path_ops(flow, &path, ScenOp::Add, priority, &mut requests, &mut deps);
    }
    let _ = pairs;
    Scenario {
        name: "B4 TE".into(),
        requests,
        deps,
        preinstall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lf_shape_matches_paper_footnote() {
        // s1–s2 fails; 400 flows reroute: 400 adds on s1, 400 mods on
        // s2 (footnote 3: "only rule additions on s1 and rule
        // modifications on s2"), destination-first deps.
        let topo = Topology::triangle();
        let s = link_failure(&topo, (0, 1), 400, 1);
        let (adds, mods, dels) = s.op_counts();
        assert_eq!(adds, 400);
        assert_eq!(mods, 400);
        assert_eq!(dels, 0);
        assert_eq!(s.deps.len(), 400);
        // Every dep points mod(s2) → add(s1).
        for &(before, after) in &s.deps {
            assert_eq!(s.requests[before].node, 1);
            assert_eq!(s.requests[before].op, ScenOp::Mod);
            assert_eq!(s.requests[after].node, 0);
            assert_eq!(s.requests[after].op, ScenOp::Add);
        }
        assert_eq!(s.preinstall.len(), 400);
    }

    #[test]
    fn te1_mix_is_roughly_two_to_one() {
        // TE1: twice as many additions as deletions or modifications.
        let topo = Topology::triangle();
        let s = traffic_engineering(&topo, "TE 1", 800, (2, 1, 1), 1, false, 7);
        let (adds, mods, dels) = s.op_counts();
        assert_eq!(adds + mods + dels, 800);
        assert!((adds as f64 - 400.0).abs() < 60.0, "adds {adds}");
        assert!((mods as f64 - 200.0).abs() < 50.0, "mods {mods}");
        assert!((dels as f64 - 200.0).abs() < 50.0, "dels {dels}");
        assert!(s.deps.is_empty());
        // Every del/mod has its target preinstalled.
        assert_eq!(s.preinstall.len(), mods + dels);
    }

    #[test]
    fn te_dag_levels_create_chains() {
        let topo = Topology::triangle();
        let s = traffic_engineering(&topo, "TE", 100, (1, 1, 1), 2, false, 3);
        assert_eq!(s.deps.len(), 50);
        for &(b, a) in &s.deps {
            assert_eq!(a - b, 50);
        }
    }

    #[test]
    fn priority_enforcement_leaves_priorities_unset() {
        let topo = Topology::triangle();
        let s = traffic_engineering(&topo, "TE", 50, (1, 0, 0), 1, true, 3);
        assert!(s.requests.iter().all(|r| r.priority.is_none()));
    }

    #[test]
    fn b4_te_produces_path_consistent_requests() {
        let s = b4_traffic_engineering(300, 5);
        assert!(!s.requests.is_empty());
        // Dependencies respect the destination-first rule: the `before`
        // request of each dep was emitted earlier for the same flow.
        for &(b, a) in &s.deps {
            assert_eq!(s.requests[b].flow_id, s.requests[a].flow_id);
            assert!(b < a);
        }
        // Mods and dels have preinstalled targets.
        for r in &s.requests {
            if matches!(r.op, ScenOp::Mod | ScenOp::Del) {
                assert!(
                    s.preinstall
                        .iter()
                        .any(|&(n, f, _)| n == r.node && f == r.flow_id),
                    "missing preinstall for {r:?}"
                );
            }
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let topo = Topology::triangle();
        let a = traffic_engineering(&topo, "TE", 200, (1, 1, 1), 1, false, 9);
        let b = traffic_engineering(&topo, "TE", 200, (1, 1, 1), 1, false, 9);
        assert_eq!(a, b);
        assert_eq!(
            b4_traffic_engineering(100, 2),
            b4_traffic_engineering(100, 2)
        );
    }
}
