//! Network topologies: the paper's three-switch hardware triangle and
//! Google's B4 inter-datacenter backbone (used for the Fig 12 Mininet
//! experiment).

use serde::{Deserialize, Serialize};

/// A node index within a topology.
pub type NodeIdx = usize;

/// An undirected network topology with named nodes and capacitated
/// links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Node names.
    pub names: Vec<String>,
    /// Undirected links `(a, b, capacity_gbps)`, `a < b`.
    pub links: Vec<(NodeIdx, NodeIdx, f64)>,
}

impl Topology {
    /// Builds a topology from names and links.
    #[must_use]
    pub fn new(names: Vec<String>, links: Vec<(NodeIdx, NodeIdx, f64)>) -> Topology {
        let t = Topology { names, links };
        for &(a, b, cap) in &t.links {
            assert!(a < b, "links stored with a < b");
            assert!(b < t.names.len(), "link endpoint out of range");
            assert!(cap > 0.0, "capacity must be positive");
        }
        t
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True for the empty topology.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Neighbors of a node.
    #[must_use]
    pub fn neighbors(&self, n: NodeIdx) -> Vec<NodeIdx> {
        let mut out: Vec<NodeIdx> = self
            .links
            .iter()
            .filter_map(|&(a, b, _)| {
                if a == n {
                    Some(b)
                } else if b == n {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Index of the link between two nodes, if present.
    #[must_use]
    pub fn link_between(&self, a: NodeIdx, b: NodeIdx) -> Option<usize> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.links.iter().position(|&(x, y, _)| x == lo && y == hi)
    }

    /// A copy with one link removed (link-failure scenarios).
    #[must_use]
    pub fn without_link(&self, a: NodeIdx, b: NodeIdx) -> Topology {
        let idx = self
            .link_between(a, b)
            .expect("cannot fail a non-existent link");
        let mut links = self.links.clone();
        links.remove(idx);
        Topology {
            names: self.names.clone(),
            links,
        }
    }

    /// The paper's hardware testbed: three fully connected switches
    /// (s1, s2 from Vendor #1 and s3 from Vendor #3).
    #[must_use]
    pub fn triangle() -> Topology {
        Topology::new(
            vec!["s1".into(), "s2".into(), "s3".into()],
            vec![(0, 1, 10.0), (0, 2, 10.0), (1, 2, 10.0)],
        )
    }

    /// Google's B4 inter-datacenter WAN as published in the B4 paper
    /// (SIGCOMM 2013, Fig 1): 12 sites, 19 inter-site links.
    #[must_use]
    pub fn b4() -> Topology {
        let names: Vec<String> = [
            "us-west-1",    // 0
            "us-west-2",    // 1
            "us-west-3",    // 2
            "us-central-1", // 3
            "us-central-2", // 4
            "us-east-1",    // 5
            "us-east-2",    // 6
            "europe-1",     // 7
            "europe-2",     // 8
            "asia-1",       // 9
            "asia-2",       // 10
            "asia-3",       // 11
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        let links = vec![
            (0, 1, 100.0),
            (0, 2, 100.0),
            (1, 2, 100.0),
            (1, 3, 100.0),
            (2, 4, 100.0),
            (3, 4, 100.0),
            (3, 5, 100.0),
            (4, 6, 100.0),
            (5, 6, 100.0),
            (5, 7, 100.0),
            (6, 8, 100.0),
            (7, 8, 100.0),
            (0, 9, 100.0),
            (2, 10, 100.0),
            (9, 10, 100.0),
            (9, 11, 100.0),
            (10, 11, 100.0),
            (7, 11, 100.0),
            (4, 5, 100.0),
        ];
        Topology::new(names, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_fully_connected() {
        let t = Topology::triangle();
        assert_eq!(t.len(), 3);
        assert_eq!(t.links.len(), 3);
        for n in 0..3 {
            assert_eq!(t.neighbors(n).len(), 2);
        }
    }

    #[test]
    fn b4_has_twelve_sites_nineteen_links() {
        let t = Topology::b4();
        assert_eq!(t.len(), 12);
        assert_eq!(t.links.len(), 19);
        // Connected: BFS reaches every node.
        let mut seen = vec![false; t.len()];
        let mut stack = vec![0];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for m in t.neighbors(n) {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "B4 must be connected");
    }

    #[test]
    fn link_removal() {
        let t = Topology::triangle();
        let broken = t.without_link(0, 1);
        assert_eq!(broken.links.len(), 2);
        assert!(broken.link_between(0, 1).is_none());
        assert!(broken.link_between(1, 0).is_none());
        assert!(broken.link_between(0, 2).is_some());
    }

    #[test]
    #[should_panic(expected = "non-existent link")]
    fn removing_missing_link_panics() {
        let mut t = Topology::triangle();
        t = t.without_link(0, 1);
        let _ = t.without_link(0, 1);
    }

    #[test]
    fn link_between_is_symmetric() {
        let t = Topology::b4();
        assert_eq!(t.link_between(1, 0), t.link_between(0, 1));
    }
}
