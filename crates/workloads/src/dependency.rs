//! Rule-dependency extraction.
//!
//! Two rules of an ACL are order-dependent iff their matches overlap —
//! some packet hits both — in which case the rule earlier in the list
//! must take precedence (get the higher priority and, during
//! installation, be protected from transient inversion). The resulting
//! edges `(hi, lo)` feed the priority-assignment algorithms in
//! `tango-sched` (Table 2's two columns).

use ofwire::flow_match::FlowMatch;

/// Extracts dependency edges `(earlier, later)` for every overlapping
/// pair, where the earlier (higher-precedence) rule is first. `O(n²)`
/// overlap tests — fine for ACLs of a few thousand rules.
#[must_use]
pub fn rule_dependencies(rules: &[FlowMatch]) -> Vec<(usize, usize)> {
    let mut deps = Vec::new();
    for i in 0..rules.len() {
        for j in i + 1..rules.len() {
            if rules[i].overlaps(&rules[j]) {
                deps.push((i, j));
            }
        }
    }
    deps
}

/// The length (in nodes) of the longest dependency chain — the number of
/// distinct priority levels a minimal assignment needs.
#[must_use]
pub fn chain_depth(n: usize, deps: &[(usize, usize)]) -> usize {
    if n == 0 {
        return 0;
    }
    // deps edges always point forward (i < j), so index order is a
    // topological order.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(hi, lo) in deps {
        debug_assert!(hi < lo, "ACL dependencies point forward");
        succs[hi].push(lo);
    }
    let mut depth = vec![1usize; n];
    for i in (0..n).rev() {
        for &s in &succs[i] {
            depth[i] = depth[i].max(depth[s] + 1);
        }
    }
    depth.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::flow_match::Ipv4Prefix;

    fn prefix_rule(addr: u32, len: u8) -> FlowMatch {
        FlowMatch {
            dl_type: Some(0x0800),
            nw_dst: Some(Ipv4Prefix::new(addr, len)),
            ..FlowMatch::default()
        }
    }

    #[test]
    fn nested_rules_depend() {
        let rules = vec![
            prefix_rule(0x0a000000, 24), // 10.0.0/24 (specific, first)
            prefix_rule(0x0a000000, 16), // 10.0/16
            prefix_rule(0x0b000000, 16), // 11.0/16 (disjoint)
        ];
        let deps = rule_dependencies(&rules);
        assert_eq!(deps, vec![(0, 1)]);
        assert_eq!(chain_depth(3, &deps), 2);
    }

    #[test]
    fn disjoint_rules_are_independent() {
        let rules: Vec<FlowMatch> = (0u32..10).map(|i| prefix_rule(i << 24, 8)).collect();
        assert!(rule_dependencies(&rules).is_empty());
        assert_eq!(chain_depth(10, &[]), 1);
    }

    #[test]
    fn chain_depth_of_full_chain() {
        let rules: Vec<FlowMatch> = (0..8)
            .map(|i| prefix_rule(0x0a000000, 32 - i as u8))
            .collect();
        let deps = rule_dependencies(&rules);
        // Every pair overlaps: 28 edges, depth 8.
        assert_eq!(deps.len(), 28);
        assert_eq!(chain_depth(8, &deps), 8);
    }

    #[test]
    fn empty_input() {
        assert!(rule_dependencies(&[]).is_empty());
        assert_eq!(chain_depth(0, &[]), 0);
    }
}
