//! Max-min fair bandwidth allocation — the TE algorithm B4 runs \[5\],
//! used to derive the Fig 12 traffic-engineering workload.
//!
//! Classic progressive filling over fixed paths: grow every flow's rate
//! uniformly; when a link saturates, freeze the flows crossing it and
//! continue with the rest.

use crate::routing::{path_links, Path};
use crate::topology::Topology;

/// One demand: a path and the rate it would like (Gb/s).
#[derive(Debug, Clone, PartialEq)]
pub struct Demand {
    /// The (precomputed) path the flow uses.
    pub path: Path,
    /// Requested rate; the allocation never exceeds it.
    pub demand: f64,
}

/// The allocation result: one rate per demand, in input order.
#[must_use]
pub fn max_min_fair(topo: &Topology, demands: &[Demand]) -> Vec<f64> {
    let n = demands.len();
    let mut alloc = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut remaining_cap: Vec<f64> = topo.links.iter().map(|&(_, _, c)| c).collect();
    let links_of: Vec<Vec<usize>> = demands.iter().map(|d| path_links(topo, &d.path)).collect();

    loop {
        // Active flows per link.
        let mut active_on_link = vec![0usize; topo.links.len()];
        for (i, links) in links_of.iter().enumerate() {
            if !frozen[i] {
                for &l in links {
                    active_on_link[l] += 1;
                }
            }
        }
        // The uniform increment each unfrozen flow could still take:
        // bounded by link fair shares and by each flow's own remaining
        // demand.
        let mut step = f64::INFINITY;
        for (i, d) in demands.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            step = step.min(d.demand - alloc[i]);
            for &l in &links_of[i] {
                step = step.min(remaining_cap[l] / active_on_link[l] as f64);
            }
        }
        if !step.is_finite() {
            break; // nothing unfrozen
        }
        let step = step.max(0.0);
        // Apply the increment.
        for (i, _) in demands.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            alloc[i] += step;
            for &l in &links_of[i] {
                remaining_cap[l] -= step;
            }
        }
        // Freeze satisfied flows and flows crossing saturated links.
        let mut progressed = false;
        for (i, d) in demands.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let satisfied = alloc[i] >= d.demand - 1e-12;
            let blocked = links_of[i].iter().any(|&l| remaining_cap[l] <= 1e-12);
            if satisfied || blocked {
                frozen[i] = true;
                progressed = true;
            }
        }
        if !progressed {
            break; // numerical guard; should not happen
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::shortest_path;

    fn line_topology(caps: &[f64]) -> Topology {
        let names = (0..=caps.len()).map(|i| format!("n{i}")).collect();
        let links = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| (i, i + 1, c))
            .collect();
        Topology::new(names, links)
    }

    #[test]
    fn equal_shares_on_one_bottleneck() {
        // Three flows over one 9-capacity link: 3 each.
        let t = line_topology(&[9.0]);
        let d = Demand {
            path: vec![0, 1],
            demand: 100.0,
        };
        let alloc = max_min_fair(&t, &[d.clone(), d.clone(), d]);
        for a in alloc {
            assert!((a - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn small_demand_is_capped_and_redistributed() {
        // Flow 0 wants only 1; flows 1,2 split the remaining 8 → 4 each.
        let t = line_topology(&[9.0]);
        let mk = |demand| Demand {
            path: vec![0, 1],
            demand,
        };
        let alloc = max_min_fair(&t, &[mk(1.0), mk(100.0), mk(100.0)]);
        assert!((alloc[0] - 1.0).abs() < 1e-9);
        assert!((alloc[1] - 4.0).abs() < 1e-9);
        assert!((alloc[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn classic_two_link_example() {
        // Links A(cap 10), B(cap 10). Flow 1 uses A+B, flow 2 uses A,
        // flow 3 uses B. Max-min: every flow gets 5.
        let t = line_topology(&[10.0, 10.0]);
        let f1 = Demand {
            path: vec![0, 1, 2],
            demand: 100.0,
        };
        let f2 = Demand {
            path: vec![0, 1],
            demand: 100.0,
        };
        let f3 = Demand {
            path: vec![1, 2],
            demand: 100.0,
        };
        let alloc = max_min_fair(&t, &[f1, f2, f3]);
        for a in &alloc {
            assert!((a - 5.0).abs() < 1e-9, "{alloc:?}");
        }
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // A(cap 2), B(cap 10). Long flow A+B limited to 1 by A's fair
        // share; short flow on B then takes 9.
        let t = line_topology(&[2.0, 10.0]);
        let long = Demand {
            path: vec![0, 1, 2],
            demand: 100.0,
        };
        let a_only = Demand {
            path: vec![0, 1],
            demand: 100.0,
        };
        let b_only = Demand {
            path: vec![1, 2],
            demand: 100.0,
        };
        let alloc = max_min_fair(&t, &[long, a_only, b_only]);
        assert!((alloc[0] - 1.0).abs() < 1e-9, "{alloc:?}");
        assert!((alloc[1] - 1.0).abs() < 1e-9, "{alloc:?}");
        assert!((alloc[2] - 9.0).abs() < 1e-9, "{alloc:?}");
    }

    #[test]
    fn capacity_never_exceeded_on_b4() {
        let t = Topology::b4();
        // Many random-ish demands over shortest paths.
        let mut demands = Vec::new();
        for a in 0..t.len() {
            for b in (a + 1)..t.len() {
                if (a + b) % 3 == 0 {
                    demands.push(Demand {
                        path: shortest_path(&t, a, b).unwrap(),
                        demand: 40.0,
                    });
                }
            }
        }
        let alloc = max_min_fair(&t, &demands);
        let mut used = vec![0.0f64; t.links.len()];
        for (d, &a) in demands.iter().zip(&alloc) {
            assert!(a >= 0.0);
            assert!(a <= d.demand + 1e-9);
            for l in path_links(&t, &d.path) {
                used[l] += a;
            }
        }
        for (l, &(_, _, cap)) in t.links.iter().enumerate() {
            assert!(used[l] <= cap + 1e-6, "link {l} used {}", used[l]);
        }
    }

    #[test]
    fn empty_demands() {
        let t = Topology::triangle();
        assert!(max_min_fair(&t, &[]).is_empty());
    }
}
