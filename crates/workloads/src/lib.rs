//! # workloads — workload and topology substrates for the Tango
//! reproduction
//!
//! Everything the evaluation needs that is not a switch or a scheduler:
//!
//! * [`classbench`] — ClassBench-like ACL generation calibrated to
//!   Table 2 (829/989/972 rules at 64/38/33 dependency levels).
//! * [`dependency`] — overlap-derived rule-dependency extraction.
//! * [`topology`] — the 3-switch hardware triangle and Google's B4
//!   backbone (12 sites, 19 links).
//! * [`routing`] — hop-count shortest paths and simple-path enumeration.
//! * [`maxmin`] — B4's max-min fair allocation (progressive filling).
//! * [`scenarios`] — link-failure and traffic-engineering request
//!   generators (the Fig 10–12 workloads).
//! * [`update_dag`] — ClassBench-style scaled update DAGs (100k+ ops)
//!   for the scheduler-portfolio sweep.

pub mod classbench;
pub mod dependency;
pub mod maxmin;
pub mod routing;
pub mod scenarios;
pub mod topology;
pub mod update_dag;

/// Glob-import of the commonly used types.
pub mod prelude {
    pub use crate::classbench::{generate, AclRule, ClassBenchConfig};
    pub use crate::dependency::{chain_depth, rule_dependencies};
    pub use crate::maxmin::{max_min_fair, Demand};
    pub use crate::routing::{path_links, shortest_path, simple_paths};
    pub use crate::scenarios::{
        b4_traffic_engineering, link_failure, traffic_engineering, ScenOp, Scenario,
        ScenarioRequest,
    };
    pub use crate::topology::{NodeIdx, Topology};
    pub use crate::update_dag::{scaled_update_dag, UpdateDagConfig};
}
