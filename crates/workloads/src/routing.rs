//! Path computation over [`Topology`]: hop-count shortest paths and
//! simple-path enumeration for rerouting choices.

use crate::topology::{NodeIdx, Topology};
use std::collections::VecDeque;

/// A path as a node sequence from source to destination.
pub type Path = Vec<NodeIdx>;

/// BFS shortest path by hop count, `None` if disconnected. Ties resolve
/// to the lexicographically smallest path (deterministic).
#[must_use]
pub fn shortest_path(topo: &Topology, src: NodeIdx, dst: NodeIdx) -> Option<Path> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<NodeIdx>> = vec![None; topo.len()];
    let mut seen = vec![false; topo.len()];
    let mut q = VecDeque::new();
    seen[src] = true;
    q.push_back(src);
    while let Some(n) = q.pop_front() {
        for m in topo.neighbors(n) {
            if !seen[m] {
                seen[m] = true;
                prev[m] = Some(n);
                if m == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while let Some(p) = prev[cur] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(m);
            }
        }
    }
    None
}

/// All simple paths from `src` to `dst` with at most `max_hops` edges,
/// in lexicographic order. Used to pick detours after link failures.
#[must_use]
pub fn simple_paths(topo: &Topology, src: NodeIdx, dst: NodeIdx, max_hops: usize) -> Vec<Path> {
    let mut out = Vec::new();
    let mut current = vec![src];
    let mut visited = vec![false; topo.len()];
    visited[src] = true;
    fn recur(
        topo: &Topology,
        dst: NodeIdx,
        max_hops: usize,
        current: &mut Vec<NodeIdx>,
        visited: &mut Vec<bool>,
        out: &mut Vec<Path>,
    ) {
        let last = *current.last().expect("non-empty");
        if last == dst {
            out.push(current.clone());
            return;
        }
        if current.len() > max_hops {
            return;
        }
        for m in topo.neighbors(last) {
            if !visited[m] {
                visited[m] = true;
                current.push(m);
                recur(topo, dst, max_hops, current, visited, out);
                current.pop();
                visited[m] = false;
            }
        }
    }
    recur(topo, dst, max_hops, &mut current, &mut visited, &mut out);
    out
}

/// The links (as topology link indices) a path traverses.
#[must_use]
pub fn path_links(topo: &Topology, path: &[NodeIdx]) -> Vec<usize> {
    path.windows(2)
        .map(|w| {
            topo.link_between(w[0], w[1])
                .expect("path uses existing links")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_paths() {
        let t = Topology::triangle();
        assert_eq!(shortest_path(&t, 0, 1), Some(vec![0, 1]));
        // After the s1–s2 link fails, the reroute goes via s3 — the
        // paper's LF scenario.
        let broken = t.without_link(0, 1);
        assert_eq!(shortest_path(&broken, 0, 1), Some(vec![0, 2, 1]));
    }

    #[test]
    fn b4_paths_exist_between_all_pairs() {
        let t = Topology::b4();
        for a in 0..t.len() {
            for b in 0..t.len() {
                let p = shortest_path(&t, a, b).expect("B4 is connected");
                assert_eq!(p[0], a);
                assert_eq!(*p.last().unwrap(), b);
            }
        }
    }

    #[test]
    fn self_path_is_singleton() {
        let t = Topology::triangle();
        assert_eq!(shortest_path(&t, 2, 2), Some(vec![2]));
    }

    #[test]
    fn disconnected_returns_none() {
        let t = Topology::new(vec!["a".into(), "b".into(), "c".into()], vec![(0, 1, 1.0)]);
        assert_eq!(shortest_path(&t, 0, 2), None);
    }

    #[test]
    fn simple_paths_enumeration() {
        let t = Topology::triangle();
        let paths = simple_paths(&t, 0, 1, 3);
        assert_eq!(paths, vec![vec![0, 1], vec![0, 2, 1]]);
        // Hop bound excludes the detour.
        let short_only = simple_paths(&t, 0, 1, 1);
        assert_eq!(short_only, vec![vec![0, 1]]);
    }

    #[test]
    fn path_links_resolve() {
        let t = Topology::triangle();
        let links = path_links(&t, &[0, 2, 1]);
        assert_eq!(links.len(), 2);
        assert_eq!(links[0], t.link_between(0, 2).unwrap());
        assert_eq!(links[1], t.link_between(2, 1).unwrap());
    }
}
