//! Offline drop-in replacement for the subset of the `bytes` crate this
//! workspace uses: a `Vec<u8>`-backed [`BytesMut`] plus the [`BufMut`]
//! write trait. Network-byte-order (big-endian) semantics match
//! upstream.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    #[must_use]
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    #[must_use]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn clear(&mut self) {
        self.vec.clear();
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest. Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.vec.len(), "split_to out of bounds");
        let rest = self.vec.split_off(at);
        BytesMut {
            vec: std::mem::replace(&mut self.vec, rest),
        }
    }

    /// Consumes the buffer, yielding its contents as a plain vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.vec.clone()
    }

    /// Freezes into an immutable buffer (here: the same Vec).
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { vec: self.vec }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { vec: s.to_vec() }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec.extend(iter);
    }
}

impl IntoIterator for BytesMut {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.vec.into_iter()
    }
}

/// An immutable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    vec: Vec<u8>,
}

impl Bytes {
    #[must_use]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.vec.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Bytes {
        Bytes { vec }
    }
}

/// Write-side trait: appends fixed-width integers in network byte order.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }
    fn put_slice(&mut self, src: &[u8]);
    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.vec.resize(self.vec.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_puts() {
        let mut b = BytesMut::new();
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        assert_eq!(
            &b[..],
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f]
        );
    }

    #[test]
    fn split_to_keeps_remainder() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4, 5][..]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn put_bytes_pads() {
        let mut b = BytesMut::new();
        b.put_bytes(0, 6);
        assert_eq!(b.len(), 6);
        assert!(b.iter().all(|&x| x == 0));
    }
}
