//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The container building this repo has no network access to crates.io,
//! so the workspace vendors the few trait surfaces it needs.  The engine
//! behind [`rngs::StdRng`] is xoshiro256++ seeded via SplitMix64 — not
//! the upstream ChaCha12, so streams differ from upstream `rand`, but
//! every property the simulator relies on holds: explicit seeding,
//! bit-identical replay for equal seeds, and high-quality equidistributed
//! output.

use std::fmt;

/// Error type for fallible RNG operations (never produced by the shim's
/// infallible engines; kept for signature compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core trait: a source of uniformly random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A type that can be sampled uniformly from an RNG's raw bits
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}
impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for i8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u8::sample_standard(rng) as i8
    }
}
impl StandardSample for i16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u16::sample_standard(rng) as i16
    }
}
impl StandardSample for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl StandardSample for isize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased bounded integer in `[0, n)` via Lemire's method with
/// rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry keeps the distribution exactly uniform.
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t>::sample_standard(rng);
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministic RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit state into a full seed with SplitMix64 (the same
    /// scheme upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic engine: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x853c_49e6_748f_ea9b, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_replay() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_is_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-3i32..4);
            assert!((-3..4).contains(&z));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn bounded_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
