//! Test-case driving: configuration and the per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of upstream's `ProptestConfig`: the number of cases to run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. Seeded from the test name and the case
/// index so every case is reproducible without a regression file.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}
