//! Offline mini property-testing harness.
//!
//! The build container cannot reach crates.io, so this crate reimplements
//! the narrow slice of the `proptest` API the workspace's test suites
//! use: `Strategy` + combinators (`prop_map`, tuples, ranges, `Just`,
//! `any`, `option::of`, `collection::vec`, `prop_oneof!`), the
//! `proptest!` / `prop_compose!` macros, and `prop_assert*` /
//! `prop_assume!`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs via the panic
//!   message (every generated value is `Debug`-printable at the point of
//!   assertion) but is not minimized.
//! * **Deterministic seeding** — each test derives its RNG seed from the
//!   test name and case index, so failures replay exactly without a
//!   regression file.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod bool {
    //! Strategies over `bool`.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    /// Uniform `bool` strategy.
    pub const ANY: Any = Any;
}

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Runs a closure once per test case with a per-case deterministic RNG.
/// The driver behind the `proptest!` macro.
pub fn run_cases(test_name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, i);
        case(&mut rng);
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its precondition does not hold. Expands
/// to a `return` out of the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks one of several strategies uniformly at random per case.
/// (Upstream weights arms; the workspace only uses the unweighted form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies.
#[macro_export]
macro_rules! proptest {
    // With a config block.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, __rng);)+
                    $body
                });
            }
        )*
    };
    // Without a config block.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Composes a named strategy function out of simpler strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($arg:ident in $strategy:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strategy,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}
