//! `any::<T>()`: strategies derived from a type's full value domain.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty : $from:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8: u64, u16: u64, u32: u64, u64: u64, usize: u64, i8: u64, i16: u64, i32: u64, i64: u64, isize: u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s whole value domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
