//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Uniform choice among several strategies with a common value type.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}
