//! Strategies over `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Upstream defaults to P(None) = 0.25; keep that shape so tests
        // exercising optional fields see both arms often.
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Option<T>` strategy: `None` a quarter of the time, `Some` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
