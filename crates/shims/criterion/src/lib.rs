//! Offline mini benchmark harness with a criterion-shaped API.
//!
//! Measures wall-clock time per iteration with `std::time::Instant` and
//! prints mean/min/max per benchmark — no statistics engine, plots, or
//! baseline storage. Enough to run the workspace's `harness = false`
//! benches without network access to crates.io.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.iters_per_sample {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim reports
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{id:<50} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        samples.len()
    );
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs and reports one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
