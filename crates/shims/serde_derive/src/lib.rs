//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace derives these traits purely as forward-looking
//! decoration (nothing serializes yet — there is no serde_json in the
//! tree), so the derives emit marker impls and otherwise accept any
//! input, including `#[serde(...)]` attributes.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the derived type's name from the item token stream: the
/// identifier following the first `struct` or `enum` keyword.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => {}
        }
    }
    None
}

/// Counts generic parameters so the marker impl can name them. Only
/// simple lifetime/type parameter lists are supported; types with
/// generics get a trivially-empty expansion instead.
fn has_generics(input: &TokenStream) -> bool {
    let mut iter = input.clone().into_iter();
    let mut saw_kw = false;
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if saw_kw {
                break;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    matches!(iter.next(), Some(TokenTree::Punct(p)) if p.as_char() == '<')
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    match type_name(&input) {
        Some(name) if !has_generics(&input) => format!("impl serde::{trait_name} for {name} {{}}")
            .parse()
            .unwrap(),
        _ => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
