//! Offline drop-in replacement for the sliver of `serde` this workspace
//! uses. The repo derives `Serialize`/`Deserialize` as forward-looking
//! decoration only (no serializer crate is in the tree), so the traits
//! are markers and the derives are no-ops that still validate as
//! attributes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
