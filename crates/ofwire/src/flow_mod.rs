//! The `flow_mod` message: add, modify, and delete flow-table entries.
//!
//! This is the workhorse of the whole system — Tango patterns are, per the
//! paper, "a sequence of standard OpenFlow flow mod commands and a
//! corresponding data traffic pattern".

use crate::action::Action;
use crate::codec::{be_u16, be_u32, be_u64, Decode, Encode};
use crate::error::{ensure, Result, WireError};
use crate::flow_match::FlowMatch;
use crate::types::{BufferId, PortNo};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Fixed-size portion of the flow_mod body (match + fields, no actions).
pub const FLOW_MOD_FIXED_LEN: usize = 64;

/// The flow-table operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum FlowModCommand {
    /// Insert a new entry.
    Add = 0,
    /// Modify the actions of all entries matched by `match`.
    Modify = 1,
    /// Modify the actions of the entry that *strictly* equals `match`
    /// (same wildcards and priority).
    ModifyStrict = 2,
    /// Delete all entries matched by `match`.
    Delete = 3,
    /// Delete the strictly-matching entry.
    DeleteStrict = 4,
}

impl FlowModCommand {
    /// Parses a raw command discriminant.
    pub fn from_u16(v: u16) -> Result<FlowModCommand> {
        Ok(match v {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            4 => FlowModCommand::DeleteStrict,
            other => {
                return Err(WireError::BadEnumValue {
                    what: "flow_mod command",
                    value: other as u32,
                })
            }
        })
    }

    /// True for the two delete variants.
    #[must_use]
    pub fn is_delete(self) -> bool {
        matches!(self, FlowModCommand::Delete | FlowModCommand::DeleteStrict)
    }

    /// True for the two modify variants.
    #[must_use]
    pub fn is_modify(self) -> bool {
        matches!(self, FlowModCommand::Modify | FlowModCommand::ModifyStrict)
    }
}

/// `flow_mod` flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FlowModFlags(pub u16);

impl FlowModFlags {
    /// Ask for a `flow_removed` message when the entry expires.
    pub const SEND_FLOW_REM: FlowModFlags = FlowModFlags(1 << 0);
    /// Refuse to add if the rule overlaps a conflicting entry.
    pub const CHECK_OVERLAP: FlowModFlags = FlowModFlags(1 << 1);
    /// Process via emergency flow table (unused here, kept for fidelity).
    pub const EMERG: FlowModFlags = FlowModFlags(1 << 2);

    /// Bitwise test.
    #[must_use]
    pub fn contains(self, other: FlowModFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

/// A flow-table modification request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowMod {
    /// Which packets the entry matches.
    pub flow_match: FlowMatch,
    /// Opaque controller cookie, echoed in stats and removals.
    pub cookie: u64,
    /// Operation.
    pub command: FlowModCommand,
    /// Seconds of inactivity before expiry (0 = never).
    pub idle_timeout: u16,
    /// Seconds before unconditional expiry (0 = never).
    pub hard_timeout: u16,
    /// Matching precedence: higher wins. Paper experiments sweep this.
    pub priority: u16,
    /// Buffered packet to apply the new actions to, if any.
    pub buffer_id: BufferId,
    /// For deletes: restrict to entries with this output port
    /// ([`PortNo::NONE`] = no restriction).
    pub out_port: PortNo,
    /// Option flags.
    pub flags: FlowModFlags,
    /// Actions for matching packets (empty = drop).
    pub actions: Vec<Action>,
}

impl FlowMod {
    /// An `Add` with the given match and priority, forwarding to port 1.
    ///
    /// The default single output action keeps probe rules realistic — a
    /// rule with no actions is a drop rule, which some switches place in
    /// a different table.
    #[must_use]
    pub fn add(flow_match: FlowMatch, priority: u16) -> FlowMod {
        FlowMod {
            flow_match,
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority,
            buffer_id: BufferId::NO_BUFFER,
            out_port: PortNo::NONE,
            flags: FlowModFlags::default(),
            actions: vec![Action::output(1)],
        }
    }

    /// A strict modify of the given match/priority, rewriting the action
    /// list.
    #[must_use]
    pub fn modify_strict(flow_match: FlowMatch, priority: u16, actions: Vec<Action>) -> FlowMod {
        FlowMod {
            command: FlowModCommand::ModifyStrict,
            actions,
            ..FlowMod::add(flow_match, priority)
        }
    }

    /// A strict delete of the given match/priority.
    #[must_use]
    pub fn delete_strict(flow_match: FlowMatch, priority: u16) -> FlowMod {
        FlowMod {
            command: FlowModCommand::DeleteStrict,
            actions: Vec::new(),
            ..FlowMod::add(flow_match, priority)
        }
    }

    /// A non-strict delete-everything-matching request.
    #[must_use]
    pub fn delete_all() -> FlowMod {
        FlowMod {
            command: FlowModCommand::Delete,
            actions: Vec::new(),
            priority: 0,
            ..FlowMod::add(FlowMatch::any(), 0)
        }
    }

    /// Builder-style: replace the action list with a single action.
    #[must_use]
    pub fn with_action(mut self, action: Action) -> FlowMod {
        self.actions = vec![action];
        self
    }

    /// Builder-style: set the cookie.
    #[must_use]
    pub fn with_cookie(mut self, cookie: u64) -> FlowMod {
        self.cookie = cookie;
        self
    }

    /// Builder-style: set flags.
    #[must_use]
    pub fn with_flags(mut self, flags: FlowModFlags) -> FlowMod {
        self.flags = flags;
        self
    }

    /// Encoded body length (header excluded).
    #[must_use]
    pub fn body_len(&self) -> usize {
        FLOW_MOD_FIXED_LEN + Action::list_len(&self.actions)
    }
}

impl Encode for FlowMod {
    fn encode(&self, buf: &mut BytesMut) {
        self.flow_match.encode(buf);
        buf.put_u64(self.cookie);
        buf.put_u16(self.command as u16);
        buf.put_u16(self.idle_timeout);
        buf.put_u16(self.hard_timeout);
        buf.put_u16(self.priority);
        buf.put_u32(self.buffer_id.0);
        buf.put_u16(self.out_port.0);
        buf.put_u16(self.flags.0);
        Action::encode_list(&self.actions, buf);
    }
}

impl Decode for FlowMod {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, FLOW_MOD_FIXED_LEN, "flow_mod")?;
        let (flow_match, m) = FlowMatch::decode(buf)?;
        debug_assert_eq!(m, 40);
        let cookie = be_u64(buf, 40);
        let command = FlowModCommand::from_u16(be_u16(buf, 48))?;
        let idle_timeout = be_u16(buf, 50);
        let hard_timeout = be_u16(buf, 52);
        let priority = be_u16(buf, 54);
        let buffer_id = BufferId(be_u32(buf, 56));
        let out_port = PortNo(be_u16(buf, 60));
        let flags = FlowModFlags(be_u16(buf, 62));
        let actions_len = buf.len() - FLOW_MOD_FIXED_LEN;
        let (actions, used) = Action::decode_list(&buf[FLOW_MOD_FIXED_LEN..], actions_len)?;
        Ok((
            FlowMod {
                flow_match,
                cookie,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                out_port,
                flags,
                actions,
            },
            FLOW_MOD_FIXED_LEN + used,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_roundtrip() {
        let fm = FlowMod::add(FlowMatch::l3_for_id(42), 500)
            .with_cookie(0xfeed)
            .with_flags(FlowModFlags::CHECK_OVERLAP);
        let bytes = fm.to_vec();
        assert_eq!(bytes.len(), fm.body_len());
        let (back, used) = FlowMod::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, fm);
    }

    #[test]
    fn delete_roundtrip_no_actions() {
        let fm = FlowMod::delete_all();
        let bytes = fm.to_vec();
        assert_eq!(bytes.len(), FLOW_MOD_FIXED_LEN);
        let (back, _) = FlowMod::decode(&bytes).unwrap();
        assert_eq!(back, fm);
    }

    #[test]
    fn modify_strict_roundtrip() {
        let fm = FlowMod::modify_strict(
            FlowMatch::l2_for_id(9),
            77,
            vec![Action::output(3), Action::SetNwTos(4)],
        );
        let (back, _) = FlowMod::decode(&fm.to_vec()).unwrap();
        assert_eq!(back, fm);
        assert!(back.command.is_modify());
    }

    #[test]
    fn command_parsing() {
        for c in [
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::ModifyStrict,
            FlowModCommand::Delete,
            FlowModCommand::DeleteStrict,
        ] {
            assert_eq!(FlowModCommand::from_u16(c as u16).unwrap(), c);
        }
        assert!(FlowModCommand::from_u16(9).is_err());
        assert!(FlowModCommand::Delete.is_delete());
        assert!(!FlowModCommand::Add.is_delete());
    }

    #[test]
    fn flags_contains() {
        let f = FlowModFlags(0b11);
        assert!(f.contains(FlowModFlags::SEND_FLOW_REM));
        assert!(f.contains(FlowModFlags::CHECK_OVERLAP));
        assert!(!f.contains(FlowModFlags::EMERG));
    }
}
