//! Barrier semantics helpers.
//!
//! `barrier_request`/`barrier_reply` carry no body; the message types live
//! in [`crate::message::Message`]. This module provides the small
//! bookkeeping structure controllers use to pair barrier replies with the
//! operations they fence — which is exactly how the probing engine
//! measures batched rule-installation time (paper §3, Figure 3).

use crate::types::Xid;
use std::collections::HashMap;

/// Tracks outstanding barriers and the operation batches they fence.
///
/// Typical use: send a batch of `flow_mod`s, then a `barrier_request`
/// registered here with a token describing the batch; when the
/// `barrier_reply` arrives, [`BarrierTracker::complete`] returns the
/// token so the caller can attribute the elapsed time.
#[derive(Debug, Default, Clone)]
pub struct BarrierTracker<T> {
    pending: HashMap<Xid, T>,
}

impl<T> BarrierTracker<T> {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> BarrierTracker<T> {
        BarrierTracker {
            pending: HashMap::new(),
        }
    }

    /// Registers an outstanding barrier with its batch token.
    /// Returns the token previously registered under the same xid, if
    /// any (which would indicate an xid-reuse bug in the caller).
    pub fn register(&mut self, xid: Xid, token: T) -> Option<T> {
        self.pending.insert(xid, token)
    }

    /// Completes a barrier, returning its token.
    pub fn complete(&mut self, xid: Xid) -> Option<T> {
        self.pending.remove(&xid)
    }

    /// Number of barriers still in flight.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// True if no barriers are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_complete() {
        let mut t = BarrierTracker::new();
        assert!(t.is_empty());
        assert!(t.register(Xid(1), "batch-a").is_none());
        assert!(t.register(Xid(2), "batch-b").is_none());
        assert_eq!(t.outstanding(), 2);
        assert_eq!(t.complete(Xid(1)), Some("batch-a"));
        assert_eq!(t.complete(Xid(1)), None);
        assert_eq!(t.complete(Xid(2)), Some("batch-b"));
        assert!(t.is_empty());
    }

    #[test]
    fn xid_reuse_is_reported() {
        let mut t = BarrierTracker::new();
        t.register(Xid(7), 1u32);
        assert_eq!(t.register(Xid(7), 2u32), Some(1));
        assert_eq!(t.complete(Xid(7)), Some(2));
    }
}
