//! The top-level [`Message`] enum unifying every OpenFlow message this
//! crate speaks, with whole-frame encode/decode.

use crate::codec::{Decode, Encode};
use crate::error::{Result, WireError};
use crate::error_msg::ErrorMsg;
use crate::features::FeaturesReply;
use crate::flow_mod::FlowMod;
use crate::flow_removed::FlowRemoved;
use crate::header::{Header, MessageType, OFP_HEADER_LEN};
use crate::packet::{PacketIn, PacketOut};
use crate::stats::{StatsBody, StatsRequestBody};
use crate::types::Xid;
use bytes::BytesMut;
use serde::{Deserialize, Serialize};

/// Any OpenFlow message (body only; the header is supplied/parsed at the
/// framing layer so that xids stay a transport concern).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Version negotiation.
    Hello,
    /// Switch-reported error.
    Error(ErrorMsg),
    /// Liveness/RTT probe.
    EchoRequest(Vec<u8>),
    /// Echo answer, payload mirrored.
    EchoReply(Vec<u8>),
    /// Vendor/experimenter extension: an opaque payload scoped by a
    /// 32-bit vendor id. Transports use this for side-band signalling
    /// (e.g. the virtual-time channel in `tango-net`) without leaving
    /// the OpenFlow 1.0 framing.
    Vendor {
        /// Vendor/experimenter id owning the payload format.
        vendor: u32,
        /// Opaque vendor-defined payload.
        data: Vec<u8>,
    },
    /// Ask for switch features.
    FeaturesRequest,
    /// Feature report.
    FeaturesReply(FeaturesReply),
    /// Data packet up to the controller.
    PacketIn(PacketIn),
    /// Data packet down from the controller.
    PacketOut(PacketOut),
    /// Flow-table modification.
    FlowMod(FlowMod),
    /// An entry expired or was deleted with notification requested.
    FlowRemoved(FlowRemoved),
    /// Statistics request.
    StatsRequest(StatsRequestBody),
    /// Statistics reply.
    StatsReply(StatsBody),
    /// Fence request.
    BarrierRequest,
    /// Fence acknowledgement.
    BarrierReply,
}

impl Message {
    /// The wire message type of this body.
    #[must_use]
    pub fn msg_type(&self) -> MessageType {
        match self {
            Message::Hello => MessageType::Hello,
            Message::Error(_) => MessageType::Error,
            Message::EchoRequest(_) => MessageType::EchoRequest,
            Message::EchoReply(_) => MessageType::EchoReply,
            Message::Vendor { .. } => MessageType::Vendor,
            Message::FeaturesRequest => MessageType::FeaturesRequest,
            Message::FeaturesReply(_) => MessageType::FeaturesReply,
            Message::PacketIn(_) => MessageType::PacketIn,
            Message::PacketOut(_) => MessageType::PacketOut,
            Message::FlowMod(_) => MessageType::FlowMod,
            Message::FlowRemoved(_) => MessageType::FlowRemoved,
            Message::StatsRequest(_) => MessageType::StatsRequest,
            Message::StatsReply(_) => MessageType::StatsReply,
            Message::BarrierRequest => MessageType::BarrierRequest,
            Message::BarrierReply => MessageType::BarrierReply,
        }
    }

    /// Encodes a complete frame (header + body) with the given xid.
    #[must_use]
    pub fn to_bytes(&self, xid: Xid) -> Vec<u8> {
        let mut out = Vec::with_capacity(OFP_HEADER_LEN);
        self.encode_frame_into(xid, &mut out);
        out
    }

    /// Appends a complete frame (header + body) to `out`, reusing its
    /// allocation. The header is written first with a placeholder
    /// length, the body is encoded in place behind it, and the length
    /// field is patched — one buffer, no intermediate body copy.
    pub fn encode_frame_into(&self, xid: Xid, out: &mut Vec<u8>) {
        let start = out.len();
        let mut buf = BytesMut::from(std::mem::take(out));
        Header::new(self.msg_type(), 0, xid).encode(&mut buf);
        self.encode_body(&mut buf);
        let total = (buf.len() - start) as u16;
        buf[start + 2..start + 4].copy_from_slice(&total.to_be_bytes());
        *out = buf.into();
    }

    fn encode_body(&self, buf: &mut BytesMut) {
        match self {
            Message::Hello
            | Message::FeaturesRequest
            | Message::BarrierRequest
            | Message::BarrierReply => {}
            Message::Error(e) => e.encode(buf),
            Message::EchoRequest(data) | Message::EchoReply(data) => {
                buf.extend_from_slice(data);
            }
            Message::Vendor { vendor, data } => {
                buf.extend_from_slice(&vendor.to_be_bytes());
                buf.extend_from_slice(data);
            }
            Message::FeaturesReply(f) => f.encode(buf),
            Message::PacketIn(p) => p.encode(buf),
            Message::PacketOut(p) => p.encode(buf),
            Message::FlowMod(f) => f.encode(buf),
            Message::FlowRemoved(f) => f.encode(buf),
            Message::StatsRequest(s) => s.encode(buf),
            Message::StatsReply(s) => s.encode(buf),
        }
    }

    /// Decodes a complete frame, returning its header and body.
    ///
    /// `frame` must contain exactly one message (as produced by
    /// [`Message::to_bytes`] or split out by [`crate::codec::Framer`]).
    pub fn from_bytes(frame: &[u8]) -> Result<(Header, Message)> {
        let header = Header::peek(frame)?;
        let total = header.length as usize;
        if frame.len() < total {
            return Err(WireError::Truncated {
                what: "message frame",
                needed: total,
                available: frame.len(),
            });
        }
        let body = &frame[OFP_HEADER_LEN..total];
        let msg = match header.msg_type {
            MessageType::Hello => Message::Hello,
            MessageType::Error => Message::Error(ErrorMsg::decode(body)?.0),
            MessageType::EchoRequest => Message::EchoRequest(body.to_vec()),
            MessageType::EchoReply => Message::EchoReply(body.to_vec()),
            MessageType::Vendor => {
                if body.len() < 4 {
                    return Err(WireError::Truncated {
                        what: "vendor id",
                        needed: 4,
                        available: body.len(),
                    });
                }
                Message::Vendor {
                    vendor: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                    data: body[4..].to_vec(),
                }
            }
            MessageType::FeaturesRequest => Message::FeaturesRequest,
            MessageType::FeaturesReply => Message::FeaturesReply(FeaturesReply::decode(body)?.0),
            MessageType::PacketIn => Message::PacketIn(PacketIn::decode(body)?.0),
            MessageType::PacketOut => Message::PacketOut(PacketOut::decode(body)?.0),
            MessageType::FlowMod => Message::FlowMod(FlowMod::decode(body)?.0),
            MessageType::StatsRequest => Message::StatsRequest(StatsRequestBody::decode(body)?.0),
            MessageType::StatsReply => Message::StatsReply(StatsBody::decode(body)?.0),
            MessageType::BarrierRequest => Message::BarrierRequest,
            MessageType::BarrierReply => Message::BarrierReply,
            MessageType::FlowRemoved => Message::FlowRemoved(FlowRemoved::decode(body)?.0),
        };
        Ok((header, msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_match::FlowMatch;
    use crate::types::{BufferId, Dpid, PortNo};

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello,
            Message::Error(ErrorMsg::table_full(vec![0; 64])),
            Message::EchoRequest(vec![1, 2, 3]),
            Message::EchoReply(vec![]),
            Message::Vendor {
                vendor: 0x00ca_fe42,
                data: vec![0xde, 0xad, 0xbe, 0xef],
            },
            Message::FeaturesRequest,
            Message::FeaturesReply(FeaturesReply {
                datapath_id: Dpid(7),
                n_buffers: 64,
                n_tables: 2,
                capabilities: 0,
                actions: 0xfff,
                ports: vec![crate::features::PhyPort::gigabit(1)],
            }),
            Message::PacketIn(PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                total_len: 60,
                in_port: PortNo(1),
                reason: crate::packet::PacketInReason::NoMatch,
                data: vec![0xaa; 60],
            }),
            Message::PacketOut(PacketOut::send(vec![0xbb; 60], PortNo(2))),
            Message::FlowMod(FlowMod::add(FlowMatch::l2l3_for_id(5), 10)),
            Message::FlowRemoved(crate::flow_removed::FlowRemoved {
                flow_match: FlowMatch::l3_for_id(3),
                cookie: 1,
                priority: 9,
                reason: crate::flow_removed::FlowRemovedReason::HardTimeout,
                duration_sec: 1,
                duration_nsec: 2,
                idle_timeout: 0,
                packet_count: 3,
                byte_count: 4,
            }),
            Message::StatsRequest(StatsRequestBody::all_flows()),
            Message::StatsReply(StatsBody::Flow(vec![])),
            Message::BarrierRequest,
            Message::BarrierReply,
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for (i, msg) in samples().into_iter().enumerate() {
            let xid = Xid(i as u32);
            let bytes = msg.to_bytes(xid);
            let (header, back) = Message::from_bytes(&bytes).unwrap();
            assert_eq!(header.xid, xid);
            assert_eq!(header.length as usize, bytes.len());
            assert_eq!(back, msg, "message #{i}");
        }
    }

    #[test]
    fn frame_into_appends_identically() {
        let mut batched = Vec::new();
        let mut concat = Vec::new();
        for (i, msg) in samples().into_iter().enumerate() {
            let xid = Xid(i as u32);
            msg.encode_frame_into(xid, &mut batched);
            concat.extend_from_slice(&msg.to_bytes(xid));
        }
        assert_eq!(batched, concat);
        // The combined stream still frames correctly.
        let mut framer = crate::codec::Framer::new();
        framer.push(&batched);
        assert_eq!(framer.drain().unwrap().len(), samples().len());
    }

    #[test]
    fn truncated_frame_rejected() {
        let bytes = Message::FlowMod(FlowMod::add(FlowMatch::any(), 1)).to_bytes(Xid(0));
        assert!(Message::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn msg_type_mapping_is_consistent() {
        for msg in samples() {
            let bytes = msg.to_bytes(Xid(0));
            let header = Header::peek(&bytes).unwrap();
            assert_eq!(header.msg_type, msg.msg_type());
        }
    }
}
