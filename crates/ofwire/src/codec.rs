//! Encoding/decoding traits and a stream framer.
//!
//! Every wire structure implements [`Encode`] (append to a `BytesMut`) and
//! [`Decode`] (parse from a byte slice, reporting how much was consumed).
//! The [`Framer`] accumulates an arbitrary byte stream — as delivered by a
//! TCP socket or the in-memory simulated channel — and yields complete
//! messages.

use crate::error::{Result, WireError};
use crate::header::{Header, OFP_HEADER_LEN};
use crate::message::Message;
use crate::types::Xid;
use bytes::{BufMut, BytesMut};

/// Serialize a structure by appending its wire form to `buf`.
pub trait Encode {
    /// Appends the wire encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Appends the wire encoding of `self` to a plain vector, reusing
    /// its allocation. The buffer round-trips through `BytesMut`
    /// zero-copy, so repeated encodes into one vector amortize to a
    /// single allocation — unlike [`Encode::to_vec`], which clones the
    /// bytes out of a fresh buffer every call.
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut buf = BytesMut::from(std::mem::take(out));
        self.encode(&mut buf);
        *out = buf.into();
    }

    /// Convenience: encode into a fresh buffer.
    fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Deserialize a structure from the front of a byte slice.
pub trait Decode: Sized {
    /// Parses one value from the front of `buf`, returning it together
    /// with the number of bytes consumed.
    fn decode(buf: &[u8]) -> Result<(Self, usize)>;
}

/// Reads a big-endian `u16` at `off` (caller must have length-checked).
pub(crate) fn be_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Reads a big-endian `u32` at `off` (caller must have length-checked).
pub(crate) fn be_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Reads a big-endian `u64` at `off` (caller must have length-checked).
pub(crate) fn be_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_be_bytes(b)
}

/// Appends `n` zero bytes of padding.
pub(crate) fn pad(buf: &mut BytesMut, n: usize) {
    buf.put_bytes(0, n);
}

/// Incremental frame splitter for a byte stream carrying OpenFlow
/// messages.
///
/// Feed arbitrarily-chunked bytes with [`Framer::push`]; pull complete
/// `(Header, Message)` pairs with [`Framer::next_message`]. Malformed
/// input surfaces as an error from `next_message` and poisons the framer
/// (stream framing cannot be resynchronized once lengths are wrong).
///
/// Internally the buffer is a plain `Vec<u8>` with a drain cursor:
/// consuming a frame advances the cursor instead of splitting the
/// allocation, so decoding k buffered frames costs O(bytes) total — the
/// earlier `split_to`-per-frame layout recopied the whole remainder per
/// message, which made a deep pipeline window quadratic to drain and
/// was the single largest per-op cost on the wire hot path.
#[derive(Debug, Default, Clone)]
pub struct Framer {
    buf: Vec<u8>,
    /// Bytes of `buf` before this offset are already consumed.
    cursor: usize,
    poisoned: bool,
}

impl Framer {
    /// Creates an empty framer.
    #[must_use]
    pub fn new() -> Framer {
        Framer::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.cursor
    }

    /// Reclaims consumed prefix space: free once fully drained, and
    /// amortized-O(1) memmove once the dead prefix dominates the buffer.
    fn compact(&mut self) {
        if self.cursor == self.buf.len() {
            self.buf.clear();
            self.cursor = 0;
        } else if self.cursor >= 4096 && self.cursor * 2 >= self.buf.len() {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
    }

    fn poison(&mut self, e: WireError) -> WireError {
        self.poisoned = true;
        e
    }

    /// Attempts to extract the next complete message.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(..))` for a
    /// complete message, and `Err` if the stream is unparseable.
    pub fn next_message(&mut self) -> Result<Option<(Header, Message)>> {
        if self.poisoned {
            return Err(WireError::BadLength {
                what: "poisoned framer",
                len: 0,
            });
        }
        let avail = &self.buf[self.cursor..];
        if avail.len() < OFP_HEADER_LEN {
            return Ok(None);
        }
        let header = match Header::peek(avail) {
            Ok(h) => h,
            Err(e) => return Err(self.poison(e)),
        };
        let total = header.length as usize;
        if avail.len() < total {
            return Ok(None);
        }
        match Message::from_bytes(&avail[..total]) {
            Ok((h, m)) => {
                self.cursor += total;
                self.compact();
                Ok(Some((h, m)))
            }
            Err(e) => Err(self.poison(e)),
        }
    }

    /// Takes whatever partial-frame bytes are buffered, leaving the
    /// framer empty. Transports use this to hand a stream over to a
    /// different consumer (e.g. from a handshake parser to the agent)
    /// without losing a torn frame at the switchover point.
    #[must_use]
    pub fn take_pending(&mut self) -> Vec<u8> {
        let out = self.buf[self.cursor..].to_vec();
        self.buf.clear();
        self.cursor = 0;
        out
    }

    /// Drains every complete message currently buffered.
    pub fn drain(&mut self) -> Result<Vec<(Header, Message)>> {
        let mut out = Vec::new();
        while let Some(pair) = self.next_message()? {
            out.push(pair);
        }
        Ok(out)
    }

    /// Attempts to extract the next complete message, consuming from
    /// `input` before touching the internal buffer.
    ///
    /// The buffer-reuse counterpart of [`Framer::push`] +
    /// [`Framer::next_message`]: while the internal buffer is empty —
    /// the steady state for a request/response control channel — whole
    /// frames decode straight from the borrowed slice and nothing is
    /// copied. A frame torn across reads is completed in the internal
    /// buffer from exactly as many of `input`'s bytes as it needs; the
    /// rest of `input` goes back through the zero-copy path, so only
    /// torn-frame bytes are ever copied no matter how the stream is
    /// chunked. `input` is advanced past whatever was consumed; call in
    /// a loop until it returns `Ok(None)` with `input` empty.
    pub fn next_message_from(&mut self, input: &mut &[u8]) -> Result<Option<(Header, Message)>> {
        if self.poisoned {
            return Err(WireError::BadLength {
                what: "poisoned framer",
                len: 0,
            });
        }
        if self.pending() > 0 {
            // Mid-frame: take only what completes the torn frame. First
            // finish the header (to learn the frame length), then the
            // body; if `input` runs out first, wait for the next read.
            if self.pending() < OFP_HEADER_LEN {
                let need = OFP_HEADER_LEN - self.pending();
                let take = need.min(input.len());
                self.buf.extend_from_slice(&input[..take]);
                *input = &input[take..];
                if self.pending() < OFP_HEADER_LEN {
                    return Ok(None);
                }
            }
            let header = match Header::peek(&self.buf[self.cursor..]) {
                Ok(h) => h,
                Err(e) => return Err(self.poison(e)),
            };
            let total = header.length as usize;
            if self.pending() < total {
                let need = total - self.pending();
                let take = need.min(input.len());
                self.buf.extend_from_slice(&input[..take]);
                *input = &input[take..];
                if self.pending() < total {
                    return Ok(None);
                }
            }
            return self.next_message();
        }
        if input.len() < OFP_HEADER_LEN {
            self.compact();
            self.buf.extend_from_slice(input);
            *input = &input[input.len()..];
            return Ok(None);
        }
        let header = match Header::peek(input) {
            Ok(h) => h,
            Err(e) => return Err(self.poison(e)),
        };
        let total = header.length as usize;
        if input.len() < total {
            self.compact();
            self.buf.extend_from_slice(input);
            *input = &input[input.len()..];
            return Ok(None);
        }
        let (frame, rest) = input.split_at(total);
        *input = rest;
        match Message::from_bytes(frame) {
            Ok((h, m)) => Ok(Some((h, m))),
            Err(e) => Err(self.poison(e)),
        }
    }
}

/// Encodes `msg` with transaction id `xid` into a standalone frame.
#[must_use]
pub fn encode_message(msg: &Message, xid: Xid) -> Vec<u8> {
    msg.to_bytes(xid)
}

/// Appends the frame for `msg` to `out`, reusing its allocation. The
/// buffer-reuse counterpart of [`encode_message`] for batched channels.
pub fn encode_message_into(msg: &Message, xid: Xid, out: &mut Vec<u8>) {
    msg.encode_frame_into(xid, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn framer_handles_split_delivery() {
        let mut framer = Framer::new();
        let m1 = Message::EchoRequest(vec![1, 2, 3]);
        let m2 = Message::BarrierRequest;
        let b1 = m1.to_bytes(Xid(1));
        let b2 = m2.to_bytes(Xid(2));

        // Deliver byte-by-byte across both messages.
        let all: Vec<u8> = b1.iter().chain(b2.iter()).copied().collect();
        let mut got = Vec::new();
        for byte in all {
            framer.push(&[byte]);
            while let Some(pair) = framer.next_message().unwrap() {
                got.push(pair);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.xid, Xid(1));
        assert_eq!(got[0].1, m1);
        assert_eq!(got[1].0.xid, Xid(2));
        assert_eq!(got[1].1, m2);
        assert_eq!(framer.pending(), 0);
    }

    #[test]
    fn framer_poisons_on_bad_version() {
        let mut framer = Framer::new();
        framer.push(&[0x09, 0, 0, 8, 0, 0, 0, 0]);
        assert!(framer.next_message().is_err());
        // Stays poisoned even with valid bytes afterwards.
        framer.push(&Message::BarrierRequest.to_bytes(Xid(0)));
        assert!(framer.next_message().is_err());
    }

    #[test]
    fn drain_returns_all_buffered() {
        let mut framer = Framer::new();
        for i in 0..5u32 {
            framer.push(&Message::BarrierReply.to_bytes(Xid(i)));
        }
        let msgs = framer.drain().unwrap();
        assert_eq!(msgs.len(), 5);
        for (i, (h, m)) in msgs.iter().enumerate() {
            assert_eq!(h.xid, Xid(i as u32));
            assert_eq!(*m, Message::BarrierReply);
        }
    }

    #[test]
    fn incomplete_header_returns_none() {
        let mut framer = Framer::new();
        framer.push(&[1, 2, 3]);
        assert_eq!(framer.next_message().unwrap(), None);
    }

    /// Drains `input` through `next_message_from` the way the agent does.
    fn drain_from(framer: &mut Framer, mut input: &[u8]) -> Vec<(Header, Message)> {
        let mut got = Vec::new();
        while let Some(pair) = framer.next_message_from(&mut input).unwrap() {
            got.push(pair);
        }
        assert!(input.is_empty(), "Ok(None) must mean input fully consumed");
        got
    }

    #[test]
    fn next_message_from_decodes_whole_frames_without_buffering() {
        let mut framer = Framer::new();
        let m1 = Message::EchoRequest(vec![9, 9]);
        let m2 = Message::BarrierRequest;
        let mut bytes = m1.to_bytes(Xid(7));
        bytes.extend_from_slice(&m2.to_bytes(Xid(8)));
        let got = drain_from(&mut framer, &bytes);
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].0.xid, &got[0].1), (Xid(7), &m1));
        assert_eq!((got[1].0.xid, &got[1].1), (Xid(8), &m2));
        // Whole frames never touched the internal buffer.
        assert_eq!(framer.pending(), 0);
    }

    #[test]
    fn next_message_from_stashes_and_resumes_partial_frames() {
        let mut framer = Framer::new();
        let m1 = Message::EchoRequest(vec![1, 2, 3, 4]);
        let m2 = Message::BarrierReply;
        let mut bytes = m1.to_bytes(Xid(1));
        bytes.extend_from_slice(&m2.to_bytes(Xid(2)));

        // Deliver in awkward chunk sizes spanning header and body splits.
        let mut got = Vec::new();
        for chunk in bytes.chunks(5) {
            got.extend(drain_from(&mut framer, chunk));
        }
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].0.xid, &got[0].1), (Xid(1), &m1));
        assert_eq!((got[1].0.xid, &got[1].1), (Xid(2), &m2));
        assert_eq!(framer.pending(), 0);
    }

    #[test]
    fn next_message_from_matches_push_path_bytewise() {
        let msgs = [
            Message::EchoRequest(vec![0xAB; 13]),
            Message::BarrierRequest,
            Message::EchoReply(vec![]),
            Message::BarrierReply,
        ];
        let mut bytes = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            bytes.extend_from_slice(&m.to_bytes(Xid(i as u32)));
        }
        for chunk in [1usize, 3, 8, 11, bytes.len()] {
            let mut fast = Framer::new();
            let mut slow = Framer::new();
            let mut from_fast = Vec::new();
            let mut from_slow = Vec::new();
            for piece in bytes.chunks(chunk) {
                from_fast.extend(drain_from(&mut fast, piece));
                slow.push(piece);
                while let Some(pair) = slow.next_message().unwrap() {
                    from_slow.push(pair);
                }
            }
            assert_eq!(from_fast, from_slow, "chunk size {chunk}");
        }
    }

    #[test]
    fn next_message_from_poisons_on_bad_version() {
        let mut framer = Framer::new();
        let mut input: &[u8] = &[0x09, 0, 0, 8, 0, 0, 0, 0];
        assert!(framer.next_message_from(&mut input).is_err());
        let good = Message::BarrierRequest.to_bytes(Xid(0));
        let mut input: &[u8] = &good;
        assert!(framer.next_message_from(&mut input).is_err());
    }
}
