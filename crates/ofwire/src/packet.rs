//! `packet_in` / `packet_out` messages and a real Ethernet/IPv4/UDP frame
//! builder used for probing traffic.
//!
//! Tango's probing engine needs to inject data-plane packets that match
//! specific flow rules. [`RawFrame`] constructs genuine Ethernet II frames
//! (optionally VLAN-tagged) carrying IPv4/UDP headers with a correct IPv4
//! checksum, and parses received frames back into a
//! [`FlowKey`] for table lookup.

use crate::action::Action;
use crate::codec::{be_u16, be_u32, Decode, Encode};
use crate::error::{ensure, Result, WireError};
use crate::flow_match::FlowKey;
use crate::types::{BufferId, MacAddr, PortNo};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Why a packet was sent to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PacketInReason {
    /// No flow entry matched the packet.
    NoMatch = 0,
    /// A flow entry's action explicitly sent it.
    Action = 1,
}

impl PacketInReason {
    /// Parses a raw reason byte.
    pub fn from_u8(v: u8) -> Result<PacketInReason> {
        match v {
            0 => Ok(PacketInReason::NoMatch),
            1 => Ok(PacketInReason::Action),
            other => Err(WireError::BadEnumValue {
                what: "packet_in reason",
                value: other as u32,
            }),
        }
    }
}

/// A data packet forwarded from the switch to the controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketIn {
    /// Switch-side buffer holding the full packet, if buffered.
    pub buffer_id: BufferId,
    /// Full length of the original frame.
    pub total_len: u16,
    /// Port the packet arrived on.
    pub in_port: PortNo,
    /// Why it was sent up.
    pub reason: PacketInReason,
    /// The (possibly truncated) frame bytes.
    pub data: Vec<u8>,
}

const PACKET_IN_FIXED: usize = 10;

impl Encode for PacketIn {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.buffer_id.0);
        buf.put_u16(self.total_len);
        buf.put_u16(self.in_port.0);
        buf.put_u8(self.reason as u8);
        buf.put_u8(0);
        buf.put_slice(&self.data);
    }
}

impl Decode for PacketIn {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, PACKET_IN_FIXED, "packet_in")?;
        Ok((
            PacketIn {
                buffer_id: BufferId(be_u32(buf, 0)),
                total_len: be_u16(buf, 4),
                in_port: PortNo(be_u16(buf, 6)),
                reason: PacketInReason::from_u8(buf[8])?,
                data: buf[PACKET_IN_FIXED..].to_vec(),
            },
            buf.len(),
        ))
    }
}

/// A controller-originated packet transmission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketOut {
    /// Buffer to release, or [`BufferId::NO_BUFFER`] if `data` is inline.
    pub buffer_id: BufferId,
    /// Nominal ingress port (for actions that reference it).
    pub in_port: PortNo,
    /// Actions applied to the packet (usually a single `Output`).
    pub actions: Vec<Action>,
    /// The frame to send when not buffered.
    pub data: Vec<u8>,
}

const PACKET_OUT_FIXED: usize = 8;

impl PacketOut {
    /// Sends `data` out of `port`.
    #[must_use]
    pub fn send(data: Vec<u8>, port: PortNo) -> PacketOut {
        PacketOut {
            buffer_id: BufferId::NO_BUFFER,
            in_port: PortNo::NONE,
            actions: vec![Action::Output { port, max_len: 0 }],
            data,
        }
    }

    /// Encoded body length (header excluded).
    #[must_use]
    pub fn body_len(&self) -> usize {
        PACKET_OUT_FIXED + Action::list_len(&self.actions) + self.data.len()
    }
}

impl Encode for PacketOut {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.buffer_id.0);
        buf.put_u16(self.in_port.0);
        buf.put_u16(Action::list_len(&self.actions) as u16);
        Action::encode_list(&self.actions, buf);
        buf.put_slice(&self.data);
    }
}

impl Decode for PacketOut {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, PACKET_OUT_FIXED, "packet_out")?;
        let buffer_id = BufferId(be_u32(buf, 0));
        let in_port = PortNo(be_u16(buf, 4));
        let actions_len = be_u16(buf, 6) as usize;
        let (actions, used) = Action::decode_list(&buf[PACKET_OUT_FIXED..], actions_len)?;
        let data = buf[PACKET_OUT_FIXED + used..].to_vec();
        Ok((
            PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            },
            buf.len(),
        ))
    }
}

/// Builder/parser for genuine Ethernet II + IPv4 + UDP probe frames.
///
/// The simulated data plane transports real frame bytes end to end, so the
/// whole encode→wire→parse→match pipeline is exercised exactly as it would
/// be against hardware.
#[derive(Debug, Clone, Copy)]
pub struct RawFrame;

const ETHERTYPE_IPV4: u16 = 0x0800;
const ETHERTYPE_VLAN: u16 = 0x8100;

impl RawFrame {
    /// Builds a frame whose headers carry exactly the fields of `key`.
    /// A VLAN tag is inserted iff `key.dl_vlan != 0xffff` (the OpenFlow
    /// "untagged" sentinel). `payload` bytes of zeros follow the UDP
    /// header.
    #[must_use]
    pub fn build(key: &FlowKey, payload: usize) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64 + payload);
        buf.put_slice(&key.dl_dst.0);
        buf.put_slice(&key.dl_src.0);
        if key.dl_vlan != 0xffff {
            buf.put_u16(ETHERTYPE_VLAN);
            let tci = (u16::from(key.dl_vlan_pcp) << 13) | (key.dl_vlan & 0x0fff);
            buf.put_u16(tci);
        }
        buf.put_u16(key.dl_type);
        if key.dl_type == ETHERTYPE_IPV4 {
            let total_len = (20 + 8 + payload) as u16;
            let mut ip = BytesMut::with_capacity(20);
            ip.put_u8(0x45); // version 4, IHL 5
            ip.put_u8(key.nw_tos);
            ip.put_u16(total_len);
            ip.put_u16(0); // identification
            ip.put_u16(0x4000); // DF, no fragment offset
            ip.put_u8(64); // ttl
            ip.put_u8(key.nw_proto);
            ip.put_u16(0); // checksum placeholder
            ip.put_u32(key.nw_src);
            ip.put_u32(key.nw_dst);
            let csum = ipv4_checksum(&ip);
            ip[10] = (csum >> 8) as u8;
            ip[11] = (csum & 0xff) as u8;
            buf.put_slice(&ip);
            // UDP (or generic 4-byte-port transport) header.
            buf.put_u16(key.tp_src);
            buf.put_u16(key.tp_dst);
            buf.put_u16((8 + payload) as u16);
            buf.put_u16(0); // UDP checksum optional over IPv4
        }
        buf.put_bytes(0, payload);
        buf.to_vec()
    }

    /// Parses a frame built by [`RawFrame::build`] (or any Ethernet
    /// II/IPv4/UDP frame) back into a [`FlowKey`]. `in_port` is supplied
    /// by the receiving port, not the frame.
    pub fn parse(frame: &[u8], in_port: PortNo) -> Result<FlowKey> {
        ensure(frame, 14, "ethernet header")?;
        let mut key = FlowKey {
            in_port: in_port.0,
            dl_vlan: 0xffff,
            ..FlowKey::default()
        };
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&frame[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&frame[6..12]);
        key.dl_dst = MacAddr(dst);
        key.dl_src = MacAddr(src);
        let mut off = 12;
        let mut ethertype = be_u16(frame, off);
        off += 2;
        if ethertype == ETHERTYPE_VLAN {
            ensure(frame, off + 4, "vlan tag")?;
            let tci = be_u16(frame, off);
            key.dl_vlan = tci & 0x0fff;
            key.dl_vlan_pcp = (tci >> 13) as u8;
            ethertype = be_u16(frame, off + 2);
            off += 4;
        }
        key.dl_type = ethertype;
        if ethertype == ETHERTYPE_IPV4 {
            ensure(frame, off + 20, "ipv4 header")?;
            let ihl = (frame[off] & 0x0f) as usize * 4;
            if ihl < 20 {
                return Err(WireError::BadLength {
                    what: "ipv4 ihl",
                    len: ihl,
                });
            }
            key.nw_tos = frame[off + 1];
            key.nw_proto = frame[off + 9];
            key.nw_src = be_u32(frame, off + 12);
            key.nw_dst = be_u32(frame, off + 16);
            let l4 = off + ihl;
            // TCP(6)/UDP(17) ports live in the first 4 bytes either way.
            if (key.nw_proto == 6 || key.nw_proto == 17) && frame.len() >= l4 + 4 {
                key.tp_src = be_u16(frame, l4);
                key.tp_dst = be_u16(frame, l4 + 2);
            }
        }
        Ok(key)
    }

    /// Verifies the IPv4 header checksum of a frame produced by
    /// [`RawFrame::build`]. Returns `false` for non-IP frames.
    #[must_use]
    pub fn verify_ipv4_checksum(frame: &[u8]) -> bool {
        if frame.len() < 14 {
            return false;
        }
        let mut off = 12;
        let mut ethertype = be_u16(frame, off);
        off += 2;
        if ethertype == ETHERTYPE_VLAN {
            if frame.len() < off + 4 {
                return false;
            }
            ethertype = be_u16(frame, off + 2);
            off += 4;
        }
        if ethertype != ETHERTYPE_IPV4 || frame.len() < off + 20 {
            return false;
        }
        ipv4_checksum(&frame[off..off + 20]) == 0
    }
}

/// One's-complement sum over 16-bit words, as used by the IPv4 header
/// checksum. When computed over a header whose checksum field is correct,
/// the result is zero.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut i = 0;
    while i + 1 < header.len() {
        sum += u32::from(be_u16(header, i));
        i += 2;
    }
    if i < header.len() {
        sum += u32::from(header[i]) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_match::FlowMatch;

    #[test]
    fn packet_in_roundtrip() {
        let pi = PacketIn {
            buffer_id: BufferId(55),
            total_len: 1500,
            in_port: PortNo(3),
            reason: PacketInReason::NoMatch,
            data: vec![1, 2, 3, 4],
        };
        let (back, _) = PacketIn::decode(&pi.to_vec()).unwrap();
        assert_eq!(back, pi);
    }

    #[test]
    fn packet_out_roundtrip() {
        let po = PacketOut::send(vec![9; 60], PortNo(2));
        let bytes = po.to_vec();
        assert_eq!(bytes.len(), po.body_len());
        let (back, _) = PacketOut::decode(&bytes).unwrap();
        assert_eq!(back, po);
    }

    #[test]
    fn frame_roundtrip_untagged() {
        let key = FlowMatch::key_for_id(1234);
        let frame = RawFrame::build(&key, 32);
        assert!(RawFrame::verify_ipv4_checksum(&frame));
        let parsed = RawFrame::parse(&frame, PortNo(key.in_port)).unwrap();
        assert_eq!(parsed, key);
    }

    #[test]
    fn frame_roundtrip_vlan_tagged() {
        let key = FlowKey {
            in_port: 7,
            dl_src: MacAddr::from_host_id(1),
            dl_dst: MacAddr::from_host_id(2),
            dl_vlan: 100,
            dl_vlan_pcp: 5,
            dl_type: ETHERTYPE_IPV4,
            nw_tos: 0x20,
            nw_proto: 6,
            nw_src: 0x0a000001,
            nw_dst: 0x0a000002,
            tp_src: 4321,
            tp_dst: 443,
        };
        let frame = RawFrame::build(&key, 0);
        assert!(RawFrame::verify_ipv4_checksum(&frame));
        let parsed = RawFrame::parse(&frame, PortNo(7)).unwrap();
        assert_eq!(parsed, key);
    }

    #[test]
    fn non_ip_frame_parses_l2_only() {
        let key = FlowKey {
            in_port: 1,
            dl_src: MacAddr::from_host_id(3),
            dl_dst: MacAddr::from_host_id(4),
            dl_vlan: 0xffff,
            dl_type: 0x0806, // ARP
            ..FlowKey::default()
        };
        let frame = RawFrame::build(&key, 16);
        let parsed = RawFrame::parse(&frame, PortNo(1)).unwrap();
        assert_eq!(parsed.dl_type, 0x0806);
        assert_eq!(parsed.nw_src, 0);
        assert!(!RawFrame::verify_ipv4_checksum(&frame));
    }

    #[test]
    fn corrupted_checksum_detected() {
        let key = FlowMatch::key_for_id(5);
        let mut frame = RawFrame::build(&key, 0);
        frame[14 + 12] ^= 0xff; // flip a source-address byte
        assert!(!RawFrame::verify_ipv4_checksum(&frame));
    }

    #[test]
    fn reason_parsing() {
        assert_eq!(PacketInReason::from_u8(0).unwrap(), PacketInReason::NoMatch);
        assert_eq!(PacketInReason::from_u8(1).unwrap(), PacketInReason::Action);
        assert!(PacketInReason::from_u8(2).is_err());
    }
}
