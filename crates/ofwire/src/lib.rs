//! # ofwire — an OpenFlow 1.0-flavoured wire protocol, from scratch
//!
//! This crate implements the controller↔switch protocol plumbing that the
//! Tango reproduction is built on: message types, flow matches, actions,
//! and a binary codec over [`bytes`].
//!
//! The subset follows the OpenFlow 1.0 specification closely (header
//! layout, wildcard bit encoding, action TLVs, `flow_mod` semantics) —
//! close enough that the encoded bytes for the implemented messages are
//! valid OpenFlow 1.0 — while omitting features the paper never exercises
//! (queues beyond `Enqueue`, port modification). Vendor/experimenter
//! messages are carried opaquely ([`message::Message::Vendor`]); the
//! `tango-net` transport uses them for its virtual-time side channel.
//!
//! ## Layout
//!
//! * [`header`] — the common 8-byte message header.
//! * [`types`] — small value types: [`types::MacAddr`], [`types::Dpid`],
//!   port numbers, buffer ids.
//! * [`flow_match`] — the 40-byte OpenFlow 1.0 match structure with its
//!   22-bit wildcard field, including CIDR-style IP prefix wildcards.
//! * [`action`] — action TLVs (`Output`, header rewrites, `Enqueue`, …).
//! * [`flow_mod`] — rule add/modify/delete commands.
//! * [`packet`] — `packet_in` / `packet_out` and a tiny raw-frame builder
//!   used by probing traffic.
//! * [`features`], [`stats`], [`error_msg`], [`barrier`] — the remaining
//!   control messages Tango's probing engine needs.
//! * [`message`] — the [`message::Message`] enum unifying everything.
//! * [`codec`] — [`codec::Encode`] / [`codec::Decode`] traits plus a
//!   stream [`codec::Framer`] that splits a byte stream into messages.
//!
//! ## Example
//!
//! ```
//! use ofwire::prelude::*;
//!
//! let fm = FlowMod::add(FlowMatch::exact_ip_pair([10, 0, 0, 1], [10, 0, 0, 2]), 100)
//!     .with_action(Action::Output { port: PortNo(2), max_len: 0 });
//! let msg = Message::FlowMod(fm);
//! let bytes = msg.to_bytes(Xid(7));
//! let (hdr, decoded) = Message::from_bytes(&bytes).unwrap();
//! assert_eq!(hdr.xid, Xid(7));
//! assert_eq!(decoded, msg);
//! ```

pub mod action;
pub mod barrier;
pub mod codec;
pub mod error;
pub mod error_msg;
pub mod features;
pub mod flow_match;
pub mod flow_mod;
pub mod flow_removed;
pub mod header;
pub mod message;
pub mod packet;
pub mod stats;
pub mod types;

/// Convenient glob-import of the types most callers need.
pub mod prelude {
    pub use crate::action::Action;
    pub use crate::codec::{Decode, Encode, Framer};
    pub use crate::error::{Result, WireError};
    pub use crate::error_msg::{ErrorCode, ErrorMsg, ErrorType};
    pub use crate::features::{FeaturesReply, PhyPort};
    pub use crate::flow_match::FlowMatch;
    pub use crate::flow_mod::{FlowMod, FlowModCommand, FlowModFlags};
    pub use crate::flow_removed::{FlowRemoved, FlowRemovedReason};
    pub use crate::header::{Header, MessageType, OFP_HEADER_LEN, OFP_VERSION};
    pub use crate::message::Message;
    pub use crate::packet::{PacketIn, PacketInReason, PacketOut, RawFrame};
    pub use crate::stats::{
        AggregateStats, FlowStatsEntry, StatsBody, StatsRequestBody, TableStatsEntry,
    };
    pub use crate::types::{BufferId, Dpid, MacAddr, PortNo, Xid};
}
