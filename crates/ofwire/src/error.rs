//! Wire-level error type shared by every decoder in the crate.

use std::fmt;

/// Result alias used throughout `ofwire`.
pub type Result<T> = std::result::Result<T, WireError>;

/// Errors that can occur while decoding (or framing) OpenFlow messages.
///
/// Encoding is infallible by construction: every representable value has a
/// wire form, and writers append to a growable [`bytes::BytesMut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the fixed-size structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The version byte in the header is not [`crate::header::OFP_VERSION`].
    BadVersion(u8),
    /// The message-type byte is not one this crate understands.
    UnknownMessageType(u8),
    /// A discriminant inside a message body had an unassigned value.
    BadEnumValue {
        /// Which field held the bad value.
        what: &'static str,
        /// The offending value, widened for display.
        value: u32,
    },
    /// The header length field is nonsensical (shorter than the header,
    /// or inconsistent with the body that follows).
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The length field observed on the wire.
        len: usize,
    },
    /// An action TLV declared a length that is not valid for its type.
    BadActionLength {
        /// Action type discriminant.
        action_type: u16,
        /// Declared TLV length.
        len: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, had {available}"
            ),
            WireError::BadVersion(v) => write!(f, "unsupported OpenFlow version {v:#04x}"),
            WireError::UnknownMessageType(t) => write!(f, "unknown message type {t}"),
            WireError::BadEnumValue { what, value } => {
                write!(f, "invalid value {value} for {what}")
            }
            WireError::BadLength { what, len } => {
                write!(f, "invalid length {len} while decoding {what}")
            }
            WireError::BadActionLength { action_type, len } => {
                write!(f, "invalid length {len} for action type {action_type}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Checks that `buf` holds at least `needed` bytes, returning a
/// [`WireError::Truncated`] that names `what` otherwise.
pub(crate) fn ensure(buf: &[u8], needed: usize, what: &'static str) -> Result<()> {
    if buf.len() < needed {
        Err(WireError::Truncated {
            what,
            needed,
            available: buf.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = WireError::Truncated {
            what: "header",
            needed: 8,
            available: 3,
        };
        assert_eq!(e.to_string(), "truncated header: needed 8 bytes, had 3");
        assert_eq!(
            WireError::BadVersion(9).to_string(),
            "unsupported OpenFlow version 0x09"
        );
        assert_eq!(
            WireError::UnknownMessageType(250).to_string(),
            "unknown message type 250"
        );
    }

    #[test]
    fn ensure_checks_length() {
        assert!(ensure(&[0u8; 4], 4, "x").is_ok());
        let err = ensure(&[0u8; 3], 4, "x").unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                what: "x",
                needed: 4,
                available: 3
            }
        );
    }
}
