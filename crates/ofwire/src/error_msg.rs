//! The `error` message a switch sends when it rejects a request.
//!
//! The size-probing algorithm (paper §5.2) relies on exactly one of these
//! behaviours: "We continue installing new flows until the OpenFlow API
//! rejects the call, which indicates that we have exceeded the total cache
//! size." The rejection arrives as `FlowModFailed/AllTablesFull`.

use crate::codec::{be_u16, Decode, Encode};
use crate::error::{ensure, Result, WireError};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// High-level error class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum ErrorType {
    /// Hello protocol failed.
    HelloFailed = 0,
    /// Request could not be parsed.
    BadRequest = 1,
    /// An action was invalid.
    BadAction = 2,
    /// A `flow_mod` could not be applied.
    FlowModFailed = 3,
    /// A port-mod failed (kept for wire completeness).
    PortModFailed = 4,
    /// A queue operation failed.
    QueueOpFailed = 5,
}

impl ErrorType {
    /// Parses a raw error-type discriminant.
    pub fn from_u16(v: u16) -> Result<ErrorType> {
        Ok(match v {
            0 => ErrorType::HelloFailed,
            1 => ErrorType::BadRequest,
            2 => ErrorType::BadAction,
            3 => ErrorType::FlowModFailed,
            4 => ErrorType::PortModFailed,
            5 => ErrorType::QueueOpFailed,
            other => {
                return Err(WireError::BadEnumValue {
                    what: "error type",
                    value: other as u32,
                })
            }
        })
    }
}

/// `FlowModFailed` error codes (OpenFlow 1.0 numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ErrorCode(pub u16);

impl ErrorCode {
    /// Flow not added because all tables are full — the signal Algorithm 1
    /// terminates its doubling phase on.
    pub const ALL_TABLES_FULL: ErrorCode = ErrorCode(0);
    /// Overlapping entry rejected because CHECK_OVERLAP was set.
    pub const OVERLAP: ErrorCode = ErrorCode(1);
    /// Permissions error.
    pub const EPERM: ErrorCode = ErrorCode(2);
    /// Unsupported timeout combination.
    pub const BAD_EMERG_TIMEOUT: ErrorCode = ErrorCode(3);
    /// Unsupported command.
    pub const BAD_COMMAND: ErrorCode = ErrorCode(4);
}

/// An error notification, echoing (a prefix of) the offending request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorMsg {
    /// Error class.
    pub err_type: ErrorType,
    /// Class-specific code.
    pub code: ErrorCode,
    /// At least 64 bytes of the request that triggered the error.
    pub data: Vec<u8>,
}

impl ErrorMsg {
    /// The table-full rejection for a flow-mod.
    #[must_use]
    pub fn table_full(request_prefix: Vec<u8>) -> ErrorMsg {
        ErrorMsg {
            err_type: ErrorType::FlowModFailed,
            code: ErrorCode::ALL_TABLES_FULL,
            data: request_prefix,
        }
    }

    /// True if this is the table-full rejection.
    #[must_use]
    pub fn is_table_full(&self) -> bool {
        self.err_type == ErrorType::FlowModFailed && self.code == ErrorCode::ALL_TABLES_FULL
    }
}

impl Encode for ErrorMsg {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.err_type as u16);
        buf.put_u16(self.code.0);
        buf.put_slice(&self.data);
    }
}

impl Decode for ErrorMsg {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, 4, "error message")?;
        Ok((
            ErrorMsg {
                err_type: ErrorType::from_u16(be_u16(buf, 0))?,
                code: ErrorCode(be_u16(buf, 2)),
                data: buf[4..].to_vec(),
            },
            buf.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = ErrorMsg::table_full(vec![1, 2, 3]);
        let (back, _) = ErrorMsg::decode(&e.to_vec()).unwrap();
        assert_eq!(back, e);
        assert!(back.is_table_full());
    }

    #[test]
    fn non_table_full() {
        let e = ErrorMsg {
            err_type: ErrorType::BadRequest,
            code: ErrorCode(1),
            data: vec![],
        };
        assert!(!e.is_table_full());
        let (back, _) = ErrorMsg::decode(&e.to_vec()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn all_types_parse() {
        for t in 0u16..=5 {
            assert!(ErrorType::from_u16(t).is_ok());
        }
        assert!(ErrorType::from_u16(6).is_err());
    }
}
