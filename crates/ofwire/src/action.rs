//! OpenFlow 1.0 action TLVs.
//!
//! Actions are carried in `flow_mod` and `packet_out` messages as a
//! sequence of type-length-value structures, each padded to a multiple of
//! 8 bytes.

use crate::codec::{be_u16, be_u32, pad, Decode, Encode};
use crate::error::{ensure, Result, WireError};
use crate::types::{MacAddr, PortNo};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

const OFPAT_OUTPUT: u16 = 0;
const OFPAT_SET_VLAN_VID: u16 = 1;
const OFPAT_SET_VLAN_PCP: u16 = 2;
const OFPAT_STRIP_VLAN: u16 = 3;
const OFPAT_SET_DL_SRC: u16 = 4;
const OFPAT_SET_DL_DST: u16 = 5;
const OFPAT_SET_NW_SRC: u16 = 6;
const OFPAT_SET_NW_DST: u16 = 7;
const OFPAT_SET_NW_TOS: u16 = 8;
const OFPAT_SET_TP_SRC: u16 = 9;
const OFPAT_SET_TP_DST: u16 = 10;
const OFPAT_ENQUEUE: u16 = 11;

/// One forwarding/rewrite action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Forward out of `port`; `max_len` limits bytes sent to the
    /// controller when `port` is [`PortNo::CONTROLLER`].
    Output {
        /// Egress port (physical or virtual).
        port: PortNo,
        /// Controller truncation length (0 = whole packet).
        max_len: u16,
    },
    /// Set the VLAN id.
    SetVlanVid(u16),
    /// Set the VLAN priority.
    SetVlanPcp(u8),
    /// Remove the VLAN tag.
    StripVlan,
    /// Rewrite the Ethernet source.
    SetDlSrc(MacAddr),
    /// Rewrite the Ethernet destination.
    SetDlDst(MacAddr),
    /// Rewrite the IPv4 source.
    SetNwSrc(u32),
    /// Rewrite the IPv4 destination.
    SetNwDst(u32),
    /// Rewrite the IP ToS byte.
    SetNwTos(u8),
    /// Rewrite the transport source port.
    SetTpSrc(u16),
    /// Rewrite the transport destination port.
    SetTpDst(u16),
    /// Forward out of `port` through queue `queue_id`.
    Enqueue {
        /// Egress port.
        port: PortNo,
        /// Queue on that port.
        queue_id: u32,
    },
}

impl Action {
    /// Shorthand for a plain output action.
    #[must_use]
    pub fn output(port: u16) -> Action {
        Action::Output {
            port: PortNo(port),
            max_len: 0,
        }
    }

    /// Shorthand for "send to controller".
    #[must_use]
    pub fn to_controller(max_len: u16) -> Action {
        Action::Output {
            port: PortNo::CONTROLLER,
            max_len,
        }
    }

    /// Encoded TLV length in bytes (always a multiple of 8).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        match self {
            Action::Output { .. }
            | Action::SetVlanVid(_)
            | Action::SetVlanPcp(_)
            | Action::StripVlan
            | Action::SetNwSrc(_)
            | Action::SetNwDst(_)
            | Action::SetNwTos(_)
            | Action::SetTpSrc(_)
            | Action::SetTpDst(_) => 8,
            Action::SetDlSrc(_) | Action::SetDlDst(_) => 16,
            Action::Enqueue { .. } => 16,
        }
    }

    /// Total encoded length of an action list.
    #[must_use]
    pub fn list_len(actions: &[Action]) -> usize {
        actions.iter().map(Action::wire_len).sum()
    }

    /// Encodes a whole action list.
    pub fn encode_list(actions: &[Action], buf: &mut BytesMut) {
        for a in actions {
            a.encode(buf);
        }
    }

    /// Decodes exactly `len` bytes of action TLVs.
    pub fn decode_list(buf: &[u8], len: usize) -> Result<(Vec<Action>, usize)> {
        ensure(buf, len, "action list")?;
        let mut actions = Vec::new();
        let mut off = 0;
        while off < len {
            let (a, used) = Action::decode(&buf[off..len])?;
            actions.push(a);
            off += used;
        }
        Ok((actions, off))
    }
}

impl Encode for Action {
    fn encode(&self, buf: &mut BytesMut) {
        match *self {
            Action::Output { port, max_len } => {
                buf.put_u16(OFPAT_OUTPUT);
                buf.put_u16(8);
                buf.put_u16(port.0);
                buf.put_u16(max_len);
            }
            Action::SetVlanVid(vid) => {
                buf.put_u16(OFPAT_SET_VLAN_VID);
                buf.put_u16(8);
                buf.put_u16(vid);
                pad(buf, 2);
            }
            Action::SetVlanPcp(pcp) => {
                buf.put_u16(OFPAT_SET_VLAN_PCP);
                buf.put_u16(8);
                buf.put_u8(pcp);
                pad(buf, 3);
            }
            Action::StripVlan => {
                buf.put_u16(OFPAT_STRIP_VLAN);
                buf.put_u16(8);
                pad(buf, 4);
            }
            Action::SetDlSrc(mac) => {
                buf.put_u16(OFPAT_SET_DL_SRC);
                buf.put_u16(16);
                buf.put_slice(&mac.0);
                pad(buf, 6);
            }
            Action::SetDlDst(mac) => {
                buf.put_u16(OFPAT_SET_DL_DST);
                buf.put_u16(16);
                buf.put_slice(&mac.0);
                pad(buf, 6);
            }
            Action::SetNwSrc(ip) => {
                buf.put_u16(OFPAT_SET_NW_SRC);
                buf.put_u16(8);
                buf.put_u32(ip);
            }
            Action::SetNwDst(ip) => {
                buf.put_u16(OFPAT_SET_NW_DST);
                buf.put_u16(8);
                buf.put_u32(ip);
            }
            Action::SetNwTos(tos) => {
                buf.put_u16(OFPAT_SET_NW_TOS);
                buf.put_u16(8);
                buf.put_u8(tos);
                pad(buf, 3);
            }
            Action::SetTpSrc(p) => {
                buf.put_u16(OFPAT_SET_TP_SRC);
                buf.put_u16(8);
                buf.put_u16(p);
                pad(buf, 2);
            }
            Action::SetTpDst(p) => {
                buf.put_u16(OFPAT_SET_TP_DST);
                buf.put_u16(8);
                buf.put_u16(p);
                pad(buf, 2);
            }
            Action::Enqueue { port, queue_id } => {
                buf.put_u16(OFPAT_ENQUEUE);
                buf.put_u16(16);
                buf.put_u16(port.0);
                pad(buf, 6);
                buf.put_u32(queue_id);
            }
        }
    }
}

impl Decode for Action {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, 4, "action header")?;
        let ty = be_u16(buf, 0);
        let len = be_u16(buf, 2) as usize;
        if len < 8 || !len.is_multiple_of(8) {
            return Err(WireError::BadActionLength {
                action_type: ty,
                len,
            });
        }
        ensure(buf, len, "action body")?;
        let expect = |want: usize| -> Result<()> {
            if len != want {
                Err(WireError::BadActionLength {
                    action_type: ty,
                    len,
                })
            } else {
                Ok(())
            }
        };
        let action = match ty {
            OFPAT_OUTPUT => {
                expect(8)?;
                Action::Output {
                    port: PortNo(be_u16(buf, 4)),
                    max_len: be_u16(buf, 6),
                }
            }
            OFPAT_SET_VLAN_VID => {
                expect(8)?;
                Action::SetVlanVid(be_u16(buf, 4))
            }
            OFPAT_SET_VLAN_PCP => {
                expect(8)?;
                Action::SetVlanPcp(buf[4])
            }
            OFPAT_STRIP_VLAN => {
                expect(8)?;
                Action::StripVlan
            }
            OFPAT_SET_DL_SRC | OFPAT_SET_DL_DST => {
                expect(16)?;
                let mut mac = [0u8; 6];
                mac.copy_from_slice(&buf[4..10]);
                if ty == OFPAT_SET_DL_SRC {
                    Action::SetDlSrc(MacAddr(mac))
                } else {
                    Action::SetDlDst(MacAddr(mac))
                }
            }
            OFPAT_SET_NW_SRC => {
                expect(8)?;
                Action::SetNwSrc(be_u32(buf, 4))
            }
            OFPAT_SET_NW_DST => {
                expect(8)?;
                Action::SetNwDst(be_u32(buf, 4))
            }
            OFPAT_SET_NW_TOS => {
                expect(8)?;
                Action::SetNwTos(buf[4])
            }
            OFPAT_SET_TP_SRC => {
                expect(8)?;
                Action::SetTpSrc(be_u16(buf, 4))
            }
            OFPAT_SET_TP_DST => {
                expect(8)?;
                Action::SetTpDst(be_u16(buf, 4))
            }
            OFPAT_ENQUEUE => {
                expect(16)?;
                Action::Enqueue {
                    port: PortNo(be_u16(buf, 4)),
                    queue_id: be_u32(buf, 12),
                }
            }
            other => {
                return Err(WireError::BadEnumValue {
                    what: "action type",
                    value: other as u32,
                })
            }
        };
        Ok((action, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_actions() -> Vec<Action> {
        vec![
            Action::output(4),
            Action::to_controller(128),
            Action::SetVlanVid(100),
            Action::SetVlanPcp(6),
            Action::StripVlan,
            Action::SetDlSrc(MacAddr::from_host_id(1)),
            Action::SetDlDst(MacAddr::from_host_id(2)),
            Action::SetNwSrc(0x0a000001),
            Action::SetNwDst(0x0a000002),
            Action::SetNwTos(0x20),
            Action::SetTpSrc(1000),
            Action::SetTpDst(2000),
            Action::Enqueue {
                port: PortNo(2),
                queue_id: 7,
            },
        ]
    }

    #[test]
    fn every_action_roundtrips() {
        for a in all_actions() {
            let bytes = a.to_vec();
            assert_eq!(bytes.len(), a.wire_len(), "{a:?}");
            let (back, used) = Action::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back, a);
        }
    }

    #[test]
    fn action_list_roundtrips() {
        let actions = all_actions();
        let mut buf = BytesMut::new();
        Action::encode_list(&actions, &mut buf);
        assert_eq!(buf.len(), Action::list_len(&actions));
        let (back, used) = Action::decode_list(&buf, buf.len()).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, actions);
    }

    #[test]
    fn rejects_unknown_type() {
        let mut buf = BytesMut::new();
        buf.put_u16(0xfff0);
        buf.put_u16(8);
        buf.put_u32(0);
        assert!(matches!(
            Action::decode(&buf).unwrap_err(),
            WireError::BadEnumValue { .. }
        ));
    }

    #[test]
    fn rejects_bad_lengths() {
        // Length not multiple of 8.
        let mut buf = BytesMut::new();
        buf.put_u16(OFPAT_OUTPUT);
        buf.put_u16(9);
        buf.put_bytes(0, 12);
        assert!(matches!(
            Action::decode(&buf).unwrap_err(),
            WireError::BadActionLength { .. }
        ));
        // Wrong length for type.
        let mut buf = BytesMut::new();
        buf.put_u16(OFPAT_OUTPUT);
        buf.put_u16(16);
        buf.put_bytes(0, 12);
        assert!(Action::decode(&buf).is_err());
    }
}
