//! Small value types shared across the protocol: datapath ids, ports,
//! transaction ids, buffer ids, and MAC addresses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A datapath identifier — the 64-bit unique id of a switch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Dpid(pub u64);

impl fmt::Display for Dpid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpid:{:016x}", self.0)
    }
}

/// An OpenFlow transaction id carried in every message header. Replies
/// echo the xid of the request they answer, which is how the probing
/// engine pairs barriers and echoes with their round-trip times.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Xid(pub u32);

impl Xid {
    /// Returns the next xid, wrapping on overflow.
    #[must_use]
    pub fn next(self) -> Xid {
        Xid(self.0.wrapping_add(1))
    }
}

/// A switch port number (OpenFlow 1.0 uses 16 bits).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Wildcard port used in `flow_mod` delete filters and stats requests:
    /// matches any port.
    pub const NONE: PortNo = PortNo(0xffff);
    /// Virtual port: send the packet to the controller.
    pub const CONTROLLER: PortNo = PortNo(0xfffd);
    /// Virtual port: process in the local networking stack.
    pub const LOCAL: PortNo = PortNo(0xfffe);
    /// Virtual port: flood to all physical ports except the ingress port.
    pub const FLOOD: PortNo = PortNo(0xfffb);
    /// Virtual port: packet came in on this port (used in actions).
    pub const IN_PORT: PortNo = PortNo(0xfff8);

    /// True if this is a real physical port rather than a virtual one.
    #[must_use]
    pub fn is_physical(self) -> bool {
        self.0 < 0xff00
    }
}

/// A buffered-packet id. [`BufferId::NO_BUFFER`] means the full packet is
/// carried inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferId(pub u32);

impl BufferId {
    /// Sentinel: no packet is buffered on the switch.
    pub const NO_BUFFER: BufferId = BufferId(0xffff_ffff);
}

impl Default for BufferId {
    fn default() -> Self {
        BufferId::NO_BUFFER
    }
}

/// A 48-bit Ethernet MAC address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a locally-administered unicast MAC from a 32-bit host id.
    /// Useful for generating large families of distinct addresses in
    /// probing workloads.
    #[must_use]
    pub fn from_host_id(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Recovers the host id from an address built by [`MacAddr::from_host_id`].
    #[must_use]
    pub fn host_id(self) -> u32 {
        u32::from_be_bytes([self.0[2], self.0[3], self.0[4], self.0[5]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xid_wraps() {
        assert_eq!(Xid(0).next(), Xid(1));
        assert_eq!(Xid(u32::MAX).next(), Xid(0));
    }

    #[test]
    fn port_classification() {
        assert!(PortNo(1).is_physical());
        assert!(PortNo(0xfeff).is_physical());
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::NONE.is_physical());
    }

    #[test]
    fn mac_host_id_roundtrip() {
        for id in [0u32, 1, 4096, u32::MAX] {
            assert_eq!(MacAddr::from_host_id(id).host_id(), id);
        }
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
        assert_eq!(
            MacAddr::from_host_id(0x01020304).to_string(),
            "02:00:01:02:03:04"
        );
    }

    #[test]
    fn default_buffer_id_is_no_buffer() {
        assert_eq!(BufferId::default(), BufferId::NO_BUFFER);
    }

    #[test]
    fn dpid_display() {
        assert_eq!(Dpid(0xabc).to_string(), "dpid:0000000000000abc");
    }
}
