//! Statistics request/reply messages: description, per-flow, aggregate,
//! and per-table statistics.
//!
//! Tango's probing engine reads flow statistics (traffic counters, and
//! durations, i.e. the attributes of the paper's cache-policy model §5.1)
//! and table statistics (`active_count`, `max_entries` — the inaccurate
//! self-reports that motivate measurement-based inference).

use crate::action::Action;
use crate::codec::{be_u16, be_u32, be_u64, pad, Decode, Encode};
use crate::error::{ensure, Result, WireError};
use crate::flow_match::FlowMatch;
use crate::types::PortNo;
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

const OFPST_DESC: u16 = 0;
const OFPST_FLOW: u16 = 1;
const OFPST_AGGREGATE: u16 = 2;
const OFPST_TABLE: u16 = 3;

/// Writes a NUL-padded fixed-width string field.
fn put_fixed_str(buf: &mut BytesMut, s: &str, width: usize) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(width - 1);
    buf.put_slice(&bytes[..n]);
    pad(buf, width - n);
}

/// Reads a NUL-terminated fixed-width string field.
fn get_fixed_str(buf: &[u8], off: usize, width: usize) -> String {
    let field = &buf[off..off + width];
    let end = field.iter().position(|&b| b == 0).unwrap_or(width);
    String::from_utf8_lossy(&field[..end]).into_owned()
}

/// A statistics request body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsRequestBody {
    /// Switch description.
    Desc,
    /// Per-flow statistics for entries covered by the filter.
    Flow {
        /// Match filter (use [`FlowMatch::any`] for all flows).
        filter: FlowMatch,
        /// Table to read, 0xff for all.
        table_id: u8,
        /// Restrict to flows outputting to this port.
        out_port: PortNo,
    },
    /// Aggregate over entries covered by the filter.
    Aggregate {
        /// Match filter.
        filter: FlowMatch,
        /// Table to read, 0xff for all.
        table_id: u8,
        /// Output-port restriction.
        out_port: PortNo,
    },
    /// Per-table statistics.
    Table,
}

impl StatsRequestBody {
    /// Request statistics for every flow in every table.
    #[must_use]
    pub fn all_flows() -> StatsRequestBody {
        StatsRequestBody::Flow {
            filter: FlowMatch::any(),
            table_id: 0xff,
            out_port: PortNo::NONE,
        }
    }

    fn stats_type(&self) -> u16 {
        match self {
            StatsRequestBody::Desc => OFPST_DESC,
            StatsRequestBody::Flow { .. } => OFPST_FLOW,
            StatsRequestBody::Aggregate { .. } => OFPST_AGGREGATE,
            StatsRequestBody::Table => OFPST_TABLE,
        }
    }
}

impl Encode for StatsRequestBody {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.stats_type());
        buf.put_u16(0); // flags
        match self {
            StatsRequestBody::Desc | StatsRequestBody::Table => {}
            StatsRequestBody::Flow {
                filter,
                table_id,
                out_port,
            }
            | StatsRequestBody::Aggregate {
                filter,
                table_id,
                out_port,
            } => {
                filter.encode(buf);
                buf.put_u8(*table_id);
                pad(buf, 1);
                buf.put_u16(out_port.0);
            }
        }
    }
}

impl Decode for StatsRequestBody {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, 4, "stats_request")?;
        let ty = be_u16(buf, 0);
        match ty {
            OFPST_DESC => Ok((StatsRequestBody::Desc, 4)),
            OFPST_TABLE => Ok((StatsRequestBody::Table, 4)),
            OFPST_FLOW | OFPST_AGGREGATE => {
                ensure(buf, 4 + 44, "flow stats request")?;
                let (filter, _) = FlowMatch::decode(&buf[4..])?;
                let table_id = buf[44];
                let out_port = PortNo(be_u16(buf, 46));
                let body = if ty == OFPST_FLOW {
                    StatsRequestBody::Flow {
                        filter,
                        table_id,
                        out_port,
                    }
                } else {
                    StatsRequestBody::Aggregate {
                        filter,
                        table_id,
                        out_port,
                    }
                };
                Ok((body, 48))
            }
            other => Err(WireError::BadEnumValue {
                what: "stats type",
                value: other as u32,
            }),
        }
    }
}

/// Statistics for a single flow entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStatsEntry {
    /// Table holding the entry.
    pub table_id: u8,
    /// The entry's match.
    pub flow_match: FlowMatch,
    /// Seconds the entry has been installed.
    pub duration_sec: u32,
    /// Sub-second remainder, nanoseconds.
    pub duration_nsec: u32,
    /// Entry priority.
    pub priority: u16,
    /// Idle timeout configured on the entry.
    pub idle_timeout: u16,
    /// Hard timeout configured on the entry.
    pub hard_timeout: u16,
    /// Controller cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// The entry's actions.
    pub actions: Vec<Action>,
}

const FLOW_STATS_FIXED: usize = 88;

impl FlowStatsEntry {
    /// Encoded length including the length-prefix field.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        FLOW_STATS_FIXED + Action::list_len(&self.actions)
    }
}

impl Encode for FlowStatsEntry {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.wire_len() as u16);
        buf.put_u8(self.table_id);
        pad(buf, 1);
        self.flow_match.encode(buf);
        buf.put_u32(self.duration_sec);
        buf.put_u32(self.duration_nsec);
        buf.put_u16(self.priority);
        buf.put_u16(self.idle_timeout);
        buf.put_u16(self.hard_timeout);
        pad(buf, 6);
        buf.put_u64(self.cookie);
        buf.put_u64(self.packet_count);
        buf.put_u64(self.byte_count);
        Action::encode_list(&self.actions, buf);
    }
}

impl Decode for FlowStatsEntry {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, FLOW_STATS_FIXED, "flow_stats entry")?;
        let length = be_u16(buf, 0) as usize;
        if length < FLOW_STATS_FIXED || length > buf.len() {
            return Err(WireError::BadLength {
                what: "flow_stats.length",
                len: length,
            });
        }
        let table_id = buf[2];
        let (flow_match, _) = FlowMatch::decode(&buf[4..])?;
        let duration_sec = be_u32(buf, 44);
        let duration_nsec = be_u32(buf, 48);
        let priority = be_u16(buf, 52);
        let idle_timeout = be_u16(buf, 54);
        let hard_timeout = be_u16(buf, 56);
        let cookie = be_u64(buf, 64);
        let packet_count = be_u64(buf, 72);
        let byte_count = be_u64(buf, 80);
        let (actions, _) =
            Action::decode_list(&buf[FLOW_STATS_FIXED..], length - FLOW_STATS_FIXED)?;
        Ok((
            FlowStatsEntry {
                table_id,
                flow_match,
                duration_sec,
                duration_nsec,
                priority,
                idle_timeout,
                hard_timeout,
                cookie,
                packet_count,
                byte_count,
                actions,
            },
            length,
        ))
    }
}

/// Aggregate statistics over a set of flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AggregateStats {
    /// Total packets matched.
    pub packet_count: u64,
    /// Total bytes matched.
    pub byte_count: u64,
    /// Number of flows aggregated.
    pub flow_count: u32,
}

impl Encode for AggregateStats {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.packet_count);
        buf.put_u64(self.byte_count);
        buf.put_u32(self.flow_count);
        pad(buf, 4);
    }
}

impl Decode for AggregateStats {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, 24, "aggregate_stats")?;
        Ok((
            AggregateStats {
                packet_count: be_u64(buf, 0),
                byte_count: be_u64(buf, 8),
                flow_count: be_u32(buf, 16),
            },
            24,
        ))
    }
}

/// Statistics for one flow table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStatsEntry {
    /// Table id.
    pub table_id: u8,
    /// Table name (e.g. "tcam", "userspace").
    pub name: String,
    /// Wildcard bits the table supports.
    pub wildcards: u32,
    /// Self-reported capacity. The paper stresses this can be wrong.
    pub max_entries: u32,
    /// Entries currently installed.
    pub active_count: u32,
    /// Packets looked up.
    pub lookup_count: u64,
    /// Packets that matched.
    pub matched_count: u64,
}

const TABLE_STATS_LEN: usize = 64;

impl Encode for TableStatsEntry {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.table_id);
        pad(buf, 3);
        put_fixed_str(buf, &self.name, 32);
        buf.put_u32(self.wildcards);
        buf.put_u32(self.max_entries);
        buf.put_u32(self.active_count);
        buf.put_u64(self.lookup_count);
        buf.put_u64(self.matched_count);
    }
}

impl Decode for TableStatsEntry {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, TABLE_STATS_LEN, "table_stats entry")?;
        Ok((
            TableStatsEntry {
                table_id: buf[0],
                name: get_fixed_str(buf, 4, 32),
                wildcards: be_u32(buf, 36),
                max_entries: be_u32(buf, 40),
                active_count: be_u32(buf, 44),
                lookup_count: be_u64(buf, 48),
                matched_count: be_u64(buf, 56),
            },
            TABLE_STATS_LEN,
        ))
    }
}

/// Switch description strings.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DescStats {
    /// Manufacturer.
    pub mfr_desc: String,
    /// Hardware revision.
    pub hw_desc: String,
    /// Software revision.
    pub sw_desc: String,
    /// Serial number.
    pub serial_num: String,
    /// Human-readable datapath description.
    pub dp_desc: String,
}

const DESC_STATS_LEN: usize = 256 + 256 + 256 + 32 + 256;

impl Encode for DescStats {
    fn encode(&self, buf: &mut BytesMut) {
        put_fixed_str(buf, &self.mfr_desc, 256);
        put_fixed_str(buf, &self.hw_desc, 256);
        put_fixed_str(buf, &self.sw_desc, 256);
        put_fixed_str(buf, &self.serial_num, 32);
        put_fixed_str(buf, &self.dp_desc, 256);
    }
}

impl Decode for DescStats {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, DESC_STATS_LEN, "desc_stats")?;
        Ok((
            DescStats {
                mfr_desc: get_fixed_str(buf, 0, 256),
                hw_desc: get_fixed_str(buf, 256, 256),
                sw_desc: get_fixed_str(buf, 512, 256),
                serial_num: get_fixed_str(buf, 768, 32),
                dp_desc: get_fixed_str(buf, 800, 256),
            },
            DESC_STATS_LEN,
        ))
    }
}

/// A statistics reply body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsBody {
    /// Switch description.
    Desc(DescStats),
    /// Per-flow entries.
    Flow(Vec<FlowStatsEntry>),
    /// Aggregate counters.
    Aggregate(AggregateStats),
    /// Per-table entries.
    Table(Vec<TableStatsEntry>),
}

impl StatsBody {
    fn stats_type(&self) -> u16 {
        match self {
            StatsBody::Desc(_) => OFPST_DESC,
            StatsBody::Flow(_) => OFPST_FLOW,
            StatsBody::Aggregate(_) => OFPST_AGGREGATE,
            StatsBody::Table(_) => OFPST_TABLE,
        }
    }
}

impl Encode for StatsBody {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.stats_type());
        buf.put_u16(0); // flags: no more replies follow
        match self {
            StatsBody::Desc(d) => d.encode(buf),
            StatsBody::Flow(entries) => {
                for e in entries {
                    e.encode(buf);
                }
            }
            StatsBody::Aggregate(a) => a.encode(buf),
            StatsBody::Table(entries) => {
                for e in entries {
                    e.encode(buf);
                }
            }
        }
    }
}

impl Decode for StatsBody {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, 4, "stats_reply")?;
        let ty = be_u16(buf, 0);
        let mut off = 4;
        let body = match ty {
            OFPST_DESC => {
                let (d, used) = DescStats::decode(&buf[off..])?;
                off += used;
                StatsBody::Desc(d)
            }
            OFPST_FLOW => {
                let mut entries = Vec::new();
                while off < buf.len() {
                    let (e, used) = FlowStatsEntry::decode(&buf[off..])?;
                    entries.push(e);
                    off += used;
                }
                StatsBody::Flow(entries)
            }
            OFPST_AGGREGATE => {
                let (a, used) = AggregateStats::decode(&buf[off..])?;
                off += used;
                StatsBody::Aggregate(a)
            }
            OFPST_TABLE => {
                let mut entries = Vec::new();
                while off < buf.len() {
                    let (e, used) = TableStatsEntry::decode(&buf[off..])?;
                    entries.push(e);
                    off += used;
                }
                StatsBody::Table(entries)
            }
            other => {
                return Err(WireError::BadEnumValue {
                    what: "stats type",
                    value: other as u32,
                })
            }
        };
        Ok((body, off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_flow_entry(id: u32) -> FlowStatsEntry {
        FlowStatsEntry {
            table_id: 0,
            flow_match: FlowMatch::l3_for_id(id),
            duration_sec: 10,
            duration_nsec: 500,
            priority: 100,
            idle_timeout: 0,
            hard_timeout: 0,
            cookie: u64::from(id),
            packet_count: 42,
            byte_count: 4200,
            actions: vec![Action::output(2)],
        }
    }

    #[test]
    fn flow_request_roundtrip() {
        let req = StatsRequestBody::all_flows();
        let (back, _) = StatsRequestBody::decode(&req.to_vec()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn desc_and_table_requests_roundtrip() {
        for req in [StatsRequestBody::Desc, StatsRequestBody::Table] {
            let (back, used) = StatsRequestBody::decode(&req.to_vec()).unwrap();
            assert_eq!(used, 4);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn aggregate_request_roundtrip() {
        let req = StatsRequestBody::Aggregate {
            filter: FlowMatch::l2_for_id(7),
            table_id: 0,
            out_port: PortNo(4),
        };
        let (back, _) = StatsRequestBody::decode(&req.to_vec()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn flow_stats_reply_roundtrip() {
        let body = StatsBody::Flow(vec![sample_flow_entry(1), sample_flow_entry(2)]);
        let (back, _) = StatsBody::decode(&body.to_vec()).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn empty_flow_stats_reply() {
        let body = StatsBody::Flow(vec![]);
        let (back, _) = StatsBody::decode(&body.to_vec()).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn aggregate_reply_roundtrip() {
        let body = StatsBody::Aggregate(AggregateStats {
            packet_count: 1,
            byte_count: 2,
            flow_count: 3,
        });
        let (back, _) = StatsBody::decode(&body.to_vec()).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn table_stats_reply_roundtrip() {
        let body = StatsBody::Table(vec![
            TableStatsEntry {
                table_id: 0,
                name: "tcam".into(),
                wildcards: 0x3fffff,
                max_entries: 2048,
                active_count: 100,
                lookup_count: 999,
                matched_count: 900,
            },
            TableStatsEntry {
                table_id: 1,
                name: "userspace".into(),
                wildcards: 0x3fffff,
                max_entries: u32::MAX,
                active_count: 5,
                lookup_count: 10,
                matched_count: 1,
            },
        ]);
        let (back, _) = StatsBody::decode(&body.to_vec()).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn desc_reply_roundtrip() {
        let body = StatsBody::Desc(DescStats {
            mfr_desc: "Tango Labs".into(),
            hw_desc: "simulated".into(),
            sw_desc: "switchsim 0.1".into(),
            serial_num: "0001".into(),
            dp_desc: "vendor profile #1".into(),
        });
        let (back, _) = StatsBody::decode(&body.to_vec()).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn bad_stats_type_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(99);
        buf.put_u16(0);
        assert!(StatsBody::decode(&buf).is_err());
        assert!(StatsRequestBody::decode(&buf).is_err());
    }
}
