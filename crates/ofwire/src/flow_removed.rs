//! The `flow_removed` notification: sent when an entry expires (idle or
//! hard timeout) or is deleted with `SEND_FLOW_REM` set.

use crate::codec::{be_u16, be_u32, be_u64, pad, Decode, Encode};
use crate::error::{ensure, Result, WireError};
use crate::flow_match::FlowMatch;
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Why the switch removed the entry (OpenFlow 1.0 numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FlowRemovedReason {
    /// Idle timeout elapsed.
    IdleTimeout = 0,
    /// Hard timeout elapsed.
    HardTimeout = 1,
    /// Deleted by a controller `flow_mod`.
    Delete = 2,
}

impl FlowRemovedReason {
    /// Parses a raw reason byte.
    pub fn from_u8(v: u8) -> Result<FlowRemovedReason> {
        Ok(match v {
            0 => FlowRemovedReason::IdleTimeout,
            1 => FlowRemovedReason::HardTimeout,
            2 => FlowRemovedReason::Delete,
            other => {
                return Err(WireError::BadEnumValue {
                    what: "flow_removed reason",
                    value: other as u32,
                })
            }
        })
    }
}

/// A flow-removed notification body (80 bytes on the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRemoved {
    /// The removed entry's match.
    pub flow_match: FlowMatch,
    /// Controller cookie.
    pub cookie: u64,
    /// Entry priority.
    pub priority: u16,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
    /// Seconds the entry lived.
    pub duration_sec: u32,
    /// Sub-second remainder, nanoseconds.
    pub duration_nsec: u32,
    /// The idle timeout that was configured.
    pub idle_timeout: u16,
    /// Packets matched over the entry's lifetime.
    pub packet_count: u64,
    /// Bytes matched over the entry's lifetime.
    pub byte_count: u64,
}

/// Encoded size of the body.
pub const FLOW_REMOVED_LEN: usize = 80;

impl Encode for FlowRemoved {
    fn encode(&self, buf: &mut BytesMut) {
        self.flow_match.encode(buf);
        buf.put_u64(self.cookie);
        buf.put_u16(self.priority);
        buf.put_u8(self.reason as u8);
        pad(buf, 1);
        buf.put_u32(self.duration_sec);
        buf.put_u32(self.duration_nsec);
        buf.put_u16(self.idle_timeout);
        pad(buf, 2);
        buf.put_u64(self.packet_count);
        buf.put_u64(self.byte_count);
    }
}

impl Decode for FlowRemoved {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, FLOW_REMOVED_LEN, "flow_removed")?;
        let (flow_match, _) = FlowMatch::decode(buf)?;
        Ok((
            FlowRemoved {
                flow_match,
                cookie: be_u64(buf, 40),
                priority: be_u16(buf, 48),
                reason: FlowRemovedReason::from_u8(buf[50])?,
                duration_sec: be_u32(buf, 52),
                duration_nsec: be_u32(buf, 56),
                idle_timeout: be_u16(buf, 60),
                packet_count: be_u64(buf, 64),
                byte_count: be_u64(buf, 72),
            },
            FLOW_REMOVED_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let fr = FlowRemoved {
            flow_match: FlowMatch::l3_for_id(9),
            cookie: 0xdead,
            priority: 77,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: 12,
            duration_nsec: 345,
            idle_timeout: 10,
            packet_count: 42,
            byte_count: 4200,
        };
        let bytes = fr.to_vec();
        assert_eq!(bytes.len(), FLOW_REMOVED_LEN);
        let (back, used) = FlowRemoved::decode(&bytes).unwrap();
        assert_eq!(used, FLOW_REMOVED_LEN);
        assert_eq!(back, fr);
    }

    #[test]
    fn all_reasons_roundtrip() {
        for r in [
            FlowRemovedReason::IdleTimeout,
            FlowRemovedReason::HardTimeout,
            FlowRemovedReason::Delete,
        ] {
            assert_eq!(FlowRemovedReason::from_u8(r as u8).unwrap(), r);
        }
        assert!(FlowRemovedReason::from_u8(3).is_err());
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(FlowRemoved::decode(&[0u8; 79]).is_err());
    }
}
