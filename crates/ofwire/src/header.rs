//! The common OpenFlow message header: version, type, length, xid.

use crate::codec::{be_u16, be_u32, Encode};
use crate::error::{ensure, Result, WireError};
use crate::types::Xid;
use bytes::{BufMut, BytesMut};

/// Wire protocol version implemented by this crate (OpenFlow 1.0).
pub const OFP_VERSION: u8 = 0x01;

/// Size of the fixed message header in bytes.
pub const OFP_HEADER_LEN: usize = 8;

/// OpenFlow message type discriminants (OpenFlow 1.0 numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageType {
    /// Version negotiation; sent by both sides on connect.
    Hello = 0,
    /// Error notification from the switch.
    Error = 1,
    /// Liveness / RTT probe request.
    EchoRequest = 2,
    /// Liveness / RTT probe reply.
    EchoReply = 3,
    /// Vendor/experimenter extension message.
    Vendor = 4,
    /// Ask the switch for its datapath features.
    FeaturesRequest = 5,
    /// Switch feature report.
    FeaturesReply = 6,
    /// Data packet delivered to the controller.
    PacketIn = 10,
    /// A flow entry expired or was deleted.
    FlowRemoved = 11,
    /// Controller-originated packet transmission.
    PacketOut = 13,
    /// Install / modify / remove flow table entries.
    FlowMod = 14,
    /// Statistics request.
    StatsRequest = 16,
    /// Statistics reply.
    StatsReply = 17,
    /// Fence: reply is sent once all earlier messages are processed.
    BarrierRequest = 18,
    /// Barrier acknowledgement.
    BarrierReply = 19,
}

impl MessageType {
    /// Parses a raw type byte.
    pub fn from_u8(v: u8) -> Result<MessageType> {
        Ok(match v {
            0 => MessageType::Hello,
            1 => MessageType::Error,
            2 => MessageType::EchoRequest,
            3 => MessageType::EchoReply,
            4 => MessageType::Vendor,
            5 => MessageType::FeaturesRequest,
            6 => MessageType::FeaturesReply,
            10 => MessageType::PacketIn,
            11 => MessageType::FlowRemoved,
            13 => MessageType::PacketOut,
            14 => MessageType::FlowMod,
            16 => MessageType::StatsRequest,
            17 => MessageType::StatsReply,
            18 => MessageType::BarrierRequest,
            19 => MessageType::BarrierReply,
            other => return Err(WireError::UnknownMessageType(other)),
        })
    }
}

/// The 8-byte header that precedes every OpenFlow message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Protocol version ([`OFP_VERSION`]).
    pub version: u8,
    /// Message type.
    pub msg_type: MessageType,
    /// Total frame length, header included.
    pub length: u16,
    /// Transaction id; replies echo the request's xid.
    pub xid: Xid,
}

impl Header {
    /// Builds a header for a message of type `msg_type` whose body (after
    /// the header) is `body_len` bytes.
    #[must_use]
    pub fn new(msg_type: MessageType, body_len: usize, xid: Xid) -> Header {
        let length = (OFP_HEADER_LEN + body_len) as u16;
        Header {
            version: OFP_VERSION,
            msg_type,
            length,
            xid,
        }
    }

    /// Parses the header at the front of `buf` without consuming it.
    pub fn peek(buf: &[u8]) -> Result<Header> {
        ensure(buf, OFP_HEADER_LEN, "header")?;
        let version = buf[0];
        if version != OFP_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let msg_type = MessageType::from_u8(buf[1])?;
        let length = be_u16(buf, 2);
        if (length as usize) < OFP_HEADER_LEN {
            return Err(WireError::BadLength {
                what: "header.length",
                len: length as usize,
            });
        }
        let xid = Xid(be_u32(buf, 4));
        Ok(Header {
            version,
            msg_type,
            length,
            xid,
        })
    }
}

impl Encode for Header {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.version);
        buf.put_u8(self.msg_type as u8);
        buf.put_u16(self.length);
        buf.put_u32(self.xid.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header::new(MessageType::FlowMod, 64, Xid(0xdead_beef));
        let bytes = h.to_vec();
        assert_eq!(bytes.len(), OFP_HEADER_LEN);
        let parsed = Header::peek(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.length as usize, OFP_HEADER_LEN + 64);
    }

    #[test]
    fn rejects_bad_version() {
        let mut h = Header::new(MessageType::Hello, 0, Xid(0)).to_vec();
        h[0] = 4; // OpenFlow 1.3 version byte; we only speak 1.0.
        assert_eq!(Header::peek(&h).unwrap_err(), WireError::BadVersion(4));
    }

    #[test]
    fn rejects_unknown_type() {
        let mut h = Header::new(MessageType::Hello, 0, Xid(0)).to_vec();
        h[1] = 99;
        assert_eq!(
            Header::peek(&h).unwrap_err(),
            WireError::UnknownMessageType(99)
        );
    }

    #[test]
    fn rejects_short_length_field() {
        let mut h = Header::new(MessageType::Hello, 0, Xid(0)).to_vec();
        h[2] = 0;
        h[3] = 4; // length 4 < 8
        assert!(matches!(
            Header::peek(&h).unwrap_err(),
            WireError::BadLength { .. }
        ));
    }

    #[test]
    fn all_message_types_roundtrip() {
        for t in [
            MessageType::Hello,
            MessageType::Error,
            MessageType::EchoRequest,
            MessageType::EchoReply,
            MessageType::Vendor,
            MessageType::FeaturesRequest,
            MessageType::FeaturesReply,
            MessageType::PacketIn,
            MessageType::FlowRemoved,
            MessageType::PacketOut,
            MessageType::FlowMod,
            MessageType::StatsRequest,
            MessageType::StatsReply,
            MessageType::BarrierRequest,
            MessageType::BarrierReply,
        ] {
            assert_eq!(MessageType::from_u8(t as u8).unwrap(), t);
        }
    }
}
