//! The OpenFlow 1.0 flow match structure (`ofp_match`).
//!
//! A match is a set of per-field constraints; unconstrained fields are
//! *wildcarded* via a 22-bit wildcard word in which the IPv4 source and
//! destination get 6-bit prefix-wildcard counters (CIDR semantics) and
//! every other field a single all-or-nothing bit.
//!
//! Besides wire encoding, this module supplies the matching semantics the
//! switch simulator and the dependency analysis are built on:
//! [`FlowMatch::covers`] (does a concrete packet hit this match),
//! [`FlowMatch::overlaps`] (do two matches share any packet), and
//! [`FlowMatch::entry_kind`] (L2-only / L3-only / combined — which
//! determines TCAM slot width, cf. Table 1 of the paper).

use crate::codec::{be_u16, be_u32, pad, Decode, Encode};
use crate::error::{ensure, Result};
use crate::types::{MacAddr, PortNo};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Encoded size of `ofp_match` on the wire.
pub const OFP_MATCH_LEN: usize = 40;

const OFPFW_IN_PORT: u32 = 1 << 0;
const OFPFW_DL_VLAN: u32 = 1 << 1;
const OFPFW_DL_SRC: u32 = 1 << 2;
const OFPFW_DL_DST: u32 = 1 << 3;
const OFPFW_DL_TYPE: u32 = 1 << 4;
const OFPFW_NW_PROTO: u32 = 1 << 5;
const OFPFW_TP_SRC: u32 = 1 << 6;
const OFPFW_TP_DST: u32 = 1 << 7;
const OFPFW_NW_SRC_SHIFT: u32 = 8;
const OFPFW_NW_DST_SHIFT: u32 = 14;
const OFPFW_DL_VLAN_PCP: u32 = 1 << 20;
const OFPFW_NW_TOS: u32 = 1 << 21;

/// An IPv4 prefix constraint: `addr` with the top `prefix_len` bits
/// significant (0 = match anything, 32 = exact host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    /// Address bits (host-order u32 of the dotted quad).
    pub addr: u32,
    /// Number of significant leading bits, 0..=32.
    pub prefix_len: u8,
}

impl Ipv4Prefix {
    /// Exact-host prefix.
    #[must_use]
    pub fn host(addr: u32) -> Ipv4Prefix {
        Ipv4Prefix {
            addr,
            prefix_len: 32,
        }
    }

    /// Builds a prefix, masking off insignificant bits.
    #[must_use]
    pub fn new(addr: u32, prefix_len: u8) -> Ipv4Prefix {
        let prefix_len = prefix_len.min(32);
        Ipv4Prefix {
            addr: addr & Self::mask(prefix_len),
            prefix_len,
        }
    }

    /// The netmask for a prefix length.
    #[must_use]
    pub fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }

    /// Does the concrete address fall inside this prefix?
    #[must_use]
    pub fn contains(self, addr: u32) -> bool {
        (addr ^ self.addr) & Self::mask(self.prefix_len) == 0
    }

    /// Do two prefixes share any address? True iff the shorter prefix
    /// contains the longer one's network address.
    #[must_use]
    pub fn overlaps(self, other: Ipv4Prefix) -> bool {
        let common = self.prefix_len.min(other.prefix_len);
        (self.addr ^ other.addr) & Self::mask(common) == 0
    }
}

/// The concrete header fields of one packet, used when evaluating matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FlowKey {
    /// Ingress port.
    pub in_port: u16,
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// VLAN id (0xffff = untagged, as in OpenFlow 1.0).
    pub dl_vlan: u16,
    /// VLAN priority bits.
    pub dl_vlan_pcp: u8,
    /// EtherType.
    pub dl_type: u16,
    /// IP ToS (DSCP).
    pub nw_tos: u8,
    /// IP protocol.
    pub nw_proto: u8,
    /// IPv4 source.
    pub nw_src: u32,
    /// IPv4 destination.
    pub nw_dst: u32,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

/// Classification of a match by which header layers it constrains.
/// Determines how many TCAM slots an entry consumes (single- vs
/// double-wide; cf. §3 "Diverse flow tables and table sizes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryKind {
    /// Constrains only Ethernet-layer fields (or nothing).
    L2Only,
    /// Constrains only IP/transport-layer fields.
    L3Only,
    /// Constrains both layers.
    L2L3,
}

/// A flow-table match: per-field constraints with wildcard semantics.
///
/// `None` means the field is wildcarded. IPv4 source/destination use
/// prefix constraints. The default value matches every packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FlowMatch {
    /// Ingress port constraint.
    pub in_port: Option<u16>,
    /// Ethernet source constraint.
    pub dl_src: Option<MacAddr>,
    /// Ethernet destination constraint.
    pub dl_dst: Option<MacAddr>,
    /// VLAN id constraint.
    pub dl_vlan: Option<u16>,
    /// VLAN priority constraint.
    pub dl_vlan_pcp: Option<u8>,
    /// EtherType constraint.
    pub dl_type: Option<u16>,
    /// IP ToS constraint.
    pub nw_tos: Option<u8>,
    /// IP protocol constraint.
    pub nw_proto: Option<u8>,
    /// IPv4 source prefix constraint. A `/0` prefix constrains nothing
    /// and is wire-identical to `None`; decoding canonicalizes it away.
    pub nw_src: Option<Ipv4Prefix>,
    /// IPv4 destination prefix constraint (same `/0` canonicalization).
    pub nw_dst: Option<Ipv4Prefix>,
    /// Transport source port constraint.
    pub tp_src: Option<u16>,
    /// Transport destination port constraint.
    pub tp_dst: Option<u16>,
}

impl FlowMatch {
    /// The match that matches every packet (all fields wildcarded).
    #[must_use]
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// Exact match on an IPv4 source/destination pair (IP ethertype set).
    #[must_use]
    pub fn exact_ip_pair(src: [u8; 4], dst: [u8; 4]) -> FlowMatch {
        FlowMatch {
            dl_type: Some(0x0800),
            nw_src: Some(Ipv4Prefix::host(u32::from_be_bytes(src))),
            nw_dst: Some(Ipv4Prefix::host(u32::from_be_bytes(dst))),
            ..FlowMatch::default()
        }
    }

    /// An L2-only match on a destination MAC derived from `id`.
    #[must_use]
    pub fn l2_for_id(id: u32) -> FlowMatch {
        FlowMatch {
            dl_dst: Some(MacAddr::from_host_id(id)),
            ..FlowMatch::default()
        }
    }

    /// An L3-only match on a destination host derived from `id`.
    #[must_use]
    pub fn l3_for_id(id: u32) -> FlowMatch {
        FlowMatch {
            dl_type: Some(0x0800),
            nw_dst: Some(Ipv4Prefix::host(0x0a00_0000 | (id & 0x00ff_ffff))),
            ..FlowMatch::default()
        }
    }

    /// A combined L2+L3 match derived from `id` (consumes a double-wide
    /// TCAM slot on width-sensitive switches).
    #[must_use]
    pub fn l2l3_for_id(id: u32) -> FlowMatch {
        FlowMatch {
            dl_dst: Some(MacAddr::from_host_id(id)),
            dl_type: Some(0x0800),
            nw_dst: Some(Ipv4Prefix::host(0x0a00_0000 | (id & 0x00ff_ffff))),
            ..FlowMatch::default()
        }
    }

    /// A probe packet key guaranteed to hit the match produced by the
    /// `*_for_id` constructors for the same `id`.
    #[must_use]
    pub fn key_for_id(id: u32) -> FlowKey {
        FlowKey {
            in_port: 1,
            dl_src: MacAddr::from_host_id(0xffff_0000 | (id & 0xffff)),
            dl_dst: MacAddr::from_host_id(id),
            dl_vlan: 0xffff,
            dl_type: 0x0800,
            nw_proto: 17,
            nw_src: 0x0a80_0000 | (id & 0x00ff_ffff),
            nw_dst: 0x0a00_0000 | (id & 0x00ff_ffff),
            tp_src: 10_000 + (id % 50_000) as u16,
            tp_dst: 80,
            ..FlowKey::default()
        }
    }

    /// True if every constraint accepts the corresponding field of `key`.
    #[must_use]
    pub fn covers(&self, key: &FlowKey) -> bool {
        fn field<T: PartialEq>(c: Option<T>, v: T) -> bool {
            match c {
                None => true,
                Some(want) => want == v,
            }
        }
        field(self.in_port, key.in_port)
            && field(self.dl_src, key.dl_src)
            && field(self.dl_dst, key.dl_dst)
            && field(self.dl_vlan, key.dl_vlan)
            && field(self.dl_vlan_pcp, key.dl_vlan_pcp)
            && field(self.dl_type, key.dl_type)
            && field(self.nw_tos, key.nw_tos)
            && field(self.nw_proto, key.nw_proto)
            && self.nw_src.is_none_or(|p| p.contains(key.nw_src))
            && self.nw_dst.is_none_or(|p| p.contains(key.nw_dst))
            && field(self.tp_src, key.tp_src)
            && field(self.tp_dst, key.tp_dst)
    }

    /// True if some packet is covered by both matches. Used to derive
    /// rule-dependency DAGs (overlapping rules with different priorities
    /// are order-dependent).
    #[must_use]
    pub fn overlaps(&self, other: &FlowMatch) -> bool {
        fn field<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> bool {
            match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            }
        }
        fn prefix(a: Option<Ipv4Prefix>, b: Option<Ipv4Prefix>) -> bool {
            match (a, b) {
                (Some(x), Some(y)) => x.overlaps(y),
                _ => true,
            }
        }
        field(self.in_port, other.in_port)
            && field(self.dl_src, other.dl_src)
            && field(self.dl_dst, other.dl_dst)
            && field(self.dl_vlan, other.dl_vlan)
            && field(self.dl_vlan_pcp, other.dl_vlan_pcp)
            && field(self.dl_type, other.dl_type)
            && field(self.nw_tos, other.nw_tos)
            && field(self.nw_proto, other.nw_proto)
            && prefix(self.nw_src, other.nw_src)
            && prefix(self.nw_dst, other.nw_dst)
            && field(self.tp_src, other.tp_src)
            && field(self.tp_dst, other.tp_dst)
    }

    /// True if this match constrains a strict superset of packets of
    /// `other` — i.e. every packet `other` covers, `self` covers too.
    #[must_use]
    pub fn subsumes(&self, other: &FlowMatch) -> bool {
        fn field<T: PartialEq + Copy>(gen: Option<T>, spec: Option<T>) -> bool {
            match (gen, spec) {
                (None, _) => true,
                (Some(x), Some(y)) => x == y,
                (Some(_), None) => false,
            }
        }
        fn prefix(gen: Option<Ipv4Prefix>, spec: Option<Ipv4Prefix>) -> bool {
            match (gen, spec) {
                (None, _) => true,
                (Some(g), Some(s)) => g.prefix_len <= s.prefix_len && g.overlaps(s),
                (Some(_), None) => false,
            }
        }
        field(self.in_port, other.in_port)
            && field(self.dl_src, other.dl_src)
            && field(self.dl_dst, other.dl_dst)
            && field(self.dl_vlan, other.dl_vlan)
            && field(self.dl_vlan_pcp, other.dl_vlan_pcp)
            && field(self.dl_type, other.dl_type)
            && field(self.nw_tos, other.nw_tos)
            && field(self.nw_proto, other.nw_proto)
            && prefix(self.nw_src, other.nw_src)
            && prefix(self.nw_dst, other.nw_dst)
            && field(self.tp_src, other.tp_src)
            && field(self.tp_dst, other.tp_dst)
    }

    /// Classifies the match by constrained layer, for TCAM slot-width
    /// accounting. A match constraining nothing counts as L2-only (it
    /// fits the narrowest slot).
    #[must_use]
    pub fn entry_kind(&self) -> EntryKind {
        let l2 = self.dl_src.is_some()
            || self.dl_dst.is_some()
            || self.dl_vlan.is_some()
            || self.dl_vlan_pcp.is_some();
        // `dl_type` is the L2 field that *enables* L3 matching; we follow
        // the paper's usage where "L3-only" rules still set dl_type=IP.
        let l3 = self.nw_src.is_some()
            || self.nw_dst.is_some()
            || self.nw_proto.is_some()
            || self.nw_tos.is_some()
            || self.tp_src.is_some()
            || self.tp_dst.is_some();
        match (l2, l3) {
            (true, true) => EntryKind::L2L3,
            (false, true) => EntryKind::L3Only,
            _ => EntryKind::L2Only,
        }
    }

    /// The canonical form of this match: IPv4 prefixes have their host
    /// bits masked off and `/0` prefixes (wire-identical to a full
    /// wildcard) are dropped. Two matches cover exactly the same packet
    /// set under per-field comparison iff their canonical forms are
    /// equal, which is what makes canonical matches usable as hash keys
    /// in tuple-space lookup indexes.
    #[must_use]
    pub fn canonical(&self) -> FlowMatch {
        fn canon(p: Option<Ipv4Prefix>) -> Option<Ipv4Prefix> {
            p.and_then(|p| (p.prefix_len > 0).then(|| Ipv4Prefix::new(p.addr, p.prefix_len)))
        }
        FlowMatch {
            nw_src: canon(self.nw_src),
            nw_dst: canon(self.nw_dst),
            ..*self
        }
    }

    /// Projects a concrete packet key onto the match shape described by
    /// a wildcard word: every non-wildcarded field is constrained to the
    /// key's value, IPv4 fields masked to the word's prefix lengths.
    ///
    /// The defining property (the tuple-space lookup invariant): for any
    /// match `m` and key `k`,
    /// `m.covers(&k) == (m.canonical() == FlowMatch::project(&k, m.wildcards()))`.
    #[must_use]
    pub fn project(key: &FlowKey, wildcards: u32) -> FlowMatch {
        fn keep<T>(wildcards: u32, bit: u32, v: T) -> Option<T> {
            (wildcards & bit == 0).then_some(v)
        }
        let src_len = 32 - ((wildcards >> OFPFW_NW_SRC_SHIFT) & 0x3f).min(32) as u8;
        let dst_len = 32 - ((wildcards >> OFPFW_NW_DST_SHIFT) & 0x3f).min(32) as u8;
        FlowMatch {
            in_port: keep(wildcards, OFPFW_IN_PORT, key.in_port),
            dl_src: keep(wildcards, OFPFW_DL_SRC, key.dl_src),
            dl_dst: keep(wildcards, OFPFW_DL_DST, key.dl_dst),
            dl_vlan: keep(wildcards, OFPFW_DL_VLAN, key.dl_vlan),
            dl_vlan_pcp: keep(wildcards, OFPFW_DL_VLAN_PCP, key.dl_vlan_pcp),
            dl_type: keep(wildcards, OFPFW_DL_TYPE, key.dl_type),
            nw_tos: keep(wildcards, OFPFW_NW_TOS, key.nw_tos),
            nw_proto: keep(wildcards, OFPFW_NW_PROTO, key.nw_proto),
            nw_src: (src_len > 0).then(|| Ipv4Prefix::new(key.nw_src, src_len)),
            nw_dst: (dst_len > 0).then(|| Ipv4Prefix::new(key.nw_dst, dst_len)),
            tp_src: keep(wildcards, OFPFW_TP_SRC, key.tp_src),
            tp_dst: keep(wildcards, OFPFW_TP_DST, key.tp_dst),
        }
    }

    /// The OpenFlow 1.0 wildcard word for this match.
    #[must_use]
    pub fn wildcards(&self) -> u32 {
        let mut w = 0u32;
        if self.in_port.is_none() {
            w |= OFPFW_IN_PORT;
        }
        if self.dl_vlan.is_none() {
            w |= OFPFW_DL_VLAN;
        }
        if self.dl_src.is_none() {
            w |= OFPFW_DL_SRC;
        }
        if self.dl_dst.is_none() {
            w |= OFPFW_DL_DST;
        }
        if self.dl_type.is_none() {
            w |= OFPFW_DL_TYPE;
        }
        if self.nw_proto.is_none() {
            w |= OFPFW_NW_PROTO;
        }
        if self.tp_src.is_none() {
            w |= OFPFW_TP_SRC;
        }
        if self.tp_dst.is_none() {
            w |= OFPFW_TP_DST;
        }
        let src_wild = 32 - self.nw_src.map_or(0, |p| p.prefix_len) as u32;
        let dst_wild = 32 - self.nw_dst.map_or(0, |p| p.prefix_len) as u32;
        w |= src_wild.min(63) << OFPFW_NW_SRC_SHIFT;
        w |= dst_wild.min(63) << OFPFW_NW_DST_SHIFT;
        if self.dl_vlan_pcp.is_none() {
            w |= OFPFW_DL_VLAN_PCP;
        }
        if self.nw_tos.is_none() {
            w |= OFPFW_NW_TOS;
        }
        w
    }
}

impl Encode for FlowMatch {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.wildcards());
        buf.put_u16(self.in_port.unwrap_or(0));
        buf.put_slice(&self.dl_src.unwrap_or(MacAddr::ZERO).0);
        buf.put_slice(&self.dl_dst.unwrap_or(MacAddr::ZERO).0);
        buf.put_u16(self.dl_vlan.unwrap_or(0));
        buf.put_u8(self.dl_vlan_pcp.unwrap_or(0));
        pad(buf, 1);
        buf.put_u16(self.dl_type.unwrap_or(0));
        buf.put_u8(self.nw_tos.unwrap_or(0));
        buf.put_u8(self.nw_proto.unwrap_or(0));
        pad(buf, 2);
        buf.put_u32(self.nw_src.map_or(0, |p| p.addr));
        buf.put_u32(self.nw_dst.map_or(0, |p| p.addr));
        buf.put_u16(self.tp_src.unwrap_or(0));
        buf.put_u16(self.tp_dst.unwrap_or(0));
    }
}

impl Decode for FlowMatch {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, OFP_MATCH_LEN, "ofp_match")?;
        let w = be_u32(buf, 0);
        let get = |bit: u32| w & bit == 0;
        let src_wild = ((w >> OFPFW_NW_SRC_SHIFT) & 0x3f).min(32);
        let dst_wild = ((w >> OFPFW_NW_DST_SHIFT) & 0x3f).min(32);

        let mut dl_src = [0u8; 6];
        dl_src.copy_from_slice(&buf[6..12]);
        let mut dl_dst = [0u8; 6];
        dl_dst.copy_from_slice(&buf[12..18]);

        let m = FlowMatch {
            in_port: get(OFPFW_IN_PORT).then(|| be_u16(buf, 4)),
            dl_src: get(OFPFW_DL_SRC).then_some(MacAddr(dl_src)),
            dl_dst: get(OFPFW_DL_DST).then_some(MacAddr(dl_dst)),
            dl_vlan: get(OFPFW_DL_VLAN).then(|| be_u16(buf, 18)),
            dl_vlan_pcp: get(OFPFW_DL_VLAN_PCP).then(|| buf[20]),
            dl_type: get(OFPFW_DL_TYPE).then(|| be_u16(buf, 22)),
            nw_tos: get(OFPFW_NW_TOS).then(|| buf[24]),
            nw_proto: get(OFPFW_NW_PROTO).then(|| buf[25]),
            nw_src: (src_wild < 32)
                .then(|| Ipv4Prefix::new(be_u32(buf, 28), (32 - src_wild) as u8)),
            nw_dst: (dst_wild < 32)
                .then(|| Ipv4Prefix::new(be_u32(buf, 32), (32 - dst_wild) as u8)),
            tp_src: get(OFPFW_TP_SRC).then(|| be_u16(buf, 36)),
            tp_dst: get(OFPFW_TP_DST).then(|| be_u16(buf, 38)),
        };
        Ok((m, OFP_MATCH_LEN))
    }
}

/// Port number helper: matches OpenFlow's use of `PortNo` for in-port
/// constraints expressed as `u16` in the match structure.
impl From<PortNo> for FlowMatch {
    fn from(p: PortNo) -> FlowMatch {
        FlowMatch {
            in_port: Some(p.0),
            ..FlowMatch::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_matches_everything() {
        let m = FlowMatch::any();
        assert!(m.covers(&FlowKey::default()));
        assert!(m.covers(&FlowMatch::key_for_id(42)));
        assert_eq!(m.wildcards() & 0xff, 0xff);
    }

    #[test]
    fn exact_ip_pair_covers_only_that_pair() {
        let m = FlowMatch::exact_ip_pair([10, 0, 0, 1], [10, 0, 0, 2]);
        let mut key = FlowKey {
            dl_type: 0x0800,
            nw_src: u32::from_be_bytes([10, 0, 0, 1]),
            nw_dst: u32::from_be_bytes([10, 0, 0, 2]),
            ..FlowKey::default()
        };
        assert!(m.covers(&key));
        key.nw_dst += 1;
        assert!(!m.covers(&key));
    }

    #[test]
    fn id_constructors_are_hit_by_their_keys() {
        for id in [0u32, 1, 100, 65_535] {
            let key = FlowMatch::key_for_id(id);
            assert!(FlowMatch::l2_for_id(id).covers(&key), "l2 id={id}");
            assert!(FlowMatch::l3_for_id(id).covers(&key), "l3 id={id}");
            assert!(FlowMatch::l2l3_for_id(id).covers(&key), "l2l3 id={id}");
            // And not by a different id's key.
            let other = FlowMatch::key_for_id(id + 1);
            assert!(!FlowMatch::l2_for_id(id).covers(&other));
            assert!(!FlowMatch::l3_for_id(id).covers(&other));
        }
    }

    #[test]
    fn entry_kinds() {
        assert_eq!(FlowMatch::l2_for_id(1).entry_kind(), EntryKind::L2Only);
        assert_eq!(FlowMatch::l3_for_id(1).entry_kind(), EntryKind::L3Only);
        assert_eq!(FlowMatch::l2l3_for_id(1).entry_kind(), EntryKind::L2L3);
        assert_eq!(FlowMatch::any().entry_kind(), EntryKind::L2Only);
    }

    #[test]
    fn prefix_overlap_and_containment() {
        let wide = Ipv4Prefix::new(0x0a00_0000, 8); // 10/8
        let narrow = Ipv4Prefix::new(0x0a01_0000, 16); // 10.1/16
        let other = Ipv4Prefix::new(0x0b00_0000, 8); // 11/8
        assert!(wide.overlaps(narrow));
        assert!(narrow.overlaps(wide));
        assert!(!wide.overlaps(other));
        assert!(wide.contains(0x0aff_ffff));
        assert!(!wide.contains(0x0b00_0000));
    }

    #[test]
    fn overlap_semantics() {
        let a = FlowMatch {
            nw_dst: Some(Ipv4Prefix::new(0x0a00_0000, 8)),
            ..FlowMatch::default()
        };
        let b = FlowMatch {
            nw_dst: Some(Ipv4Prefix::new(0x0a01_0000, 16)),
            tp_dst: Some(80),
            ..FlowMatch::default()
        };
        assert!(a.overlaps(&b));
        assert!(a.subsumes(&b));
        assert!(!b.subsumes(&a));

        let c = FlowMatch {
            nw_dst: Some(Ipv4Prefix::new(0x0b00_0000, 8)),
            ..FlowMatch::default()
        };
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn wire_roundtrip_preserves_all_fields() {
        let m = FlowMatch {
            in_port: Some(3),
            dl_src: Some(MacAddr::from_host_id(7)),
            dl_dst: Some(MacAddr::from_host_id(9)),
            dl_vlan: Some(100),
            dl_vlan_pcp: Some(5),
            dl_type: Some(0x0800),
            nw_tos: Some(0x10),
            nw_proto: Some(6),
            nw_src: Some(Ipv4Prefix::new(0x0a00_0000, 8)),
            nw_dst: Some(Ipv4Prefix::host(0x0a00_0001)),
            tp_src: Some(1234),
            tp_dst: Some(80),
        };
        let bytes = m.to_vec();
        assert_eq!(bytes.len(), OFP_MATCH_LEN);
        let (back, used) = FlowMatch::decode(&bytes).unwrap();
        assert_eq!(used, OFP_MATCH_LEN);
        assert_eq!(back, m);
    }

    #[test]
    fn wire_roundtrip_wildcard_match() {
        let bytes = FlowMatch::any().to_vec();
        let (back, _) = FlowMatch::decode(&bytes).unwrap();
        assert_eq!(back, FlowMatch::any());
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(FlowMatch::decode(&[0u8; 10]).is_err());
    }

    /// The tuple-space lookup invariant: a match covers a key iff the
    /// key's projection onto the match's wildcard shape equals the
    /// canonical match.
    #[test]
    fn projection_agrees_with_covers() {
        let matches = [
            FlowMatch::any(),
            FlowMatch::l2_for_id(7),
            FlowMatch::l3_for_id(7),
            FlowMatch::l2l3_for_id(7),
            FlowMatch::exact_ip_pair([10, 0, 0, 1], [10, 0, 0, 7]),
            FlowMatch {
                // Non-canonical: host bits set past the prefix length.
                nw_dst: Some(Ipv4Prefix {
                    addr: 0x0a00_0007,
                    prefix_len: 8,
                }),
                tp_dst: Some(80),
                ..FlowMatch::default()
            },
            FlowMatch {
                // A /0 prefix constrains nothing.
                nw_src: Some(Ipv4Prefix {
                    addr: 0x0a00_0007,
                    prefix_len: 0,
                }),
                ..FlowMatch::default()
            },
        ];
        let keys = [
            FlowMatch::key_for_id(7),
            FlowMatch::key_for_id(8),
            FlowKey::default(),
            FlowKey {
                nw_src: 0x0a00_0001,
                nw_dst: 0x0a12_3456,
                dl_type: 0x0800,
                tp_dst: 80,
                ..FlowKey::default()
            },
        ];
        for m in &matches {
            for k in &keys {
                assert_eq!(
                    m.covers(k),
                    m.canonical() == FlowMatch::project(k, m.wildcards()),
                    "projection invariant broken for {m:?} vs {k:?}"
                );
            }
        }
    }

    /// `canonical()` is idempotent and wildcard-word preserving, so the
    /// word of a stored (possibly non-canonical) match indexes the same
    /// tuple group as its canonical form.
    #[test]
    fn canonical_preserves_wildcard_word() {
        let m = FlowMatch {
            nw_src: Some(Ipv4Prefix {
                addr: 0x0a00_00ff,
                prefix_len: 0,
            }),
            nw_dst: Some(Ipv4Prefix {
                addr: 0x0a00_00ff,
                prefix_len: 24,
            }),
            dl_type: Some(0x0800),
            ..FlowMatch::default()
        };
        let c = m.canonical();
        assert_eq!(c.wildcards(), m.wildcards());
        assert_eq!(c.canonical(), c);
        assert_eq!(c.nw_src, None);
        assert_eq!(
            c.nw_dst,
            Some(Ipv4Prefix {
                addr: 0x0a00_0000,
                prefix_len: 24
            })
        );
    }
}
