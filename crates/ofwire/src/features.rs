//! `features_request` / `features_reply`: the switch's self-reported
//! capabilities.
//!
//! The paper's central observation is that these reports are incomplete
//! and sometimes wrong — e.g. `n_tables` says nothing about software vs
//! TCAM tables, and no field reports cache policy. Tango therefore
//! measures instead of trusting this message; we implement it faithfully
//! so the contrast can be reproduced (the simulated switches may report
//! inaccurate numbers here, mirroring §1).

use crate::codec::{be_u16, be_u32, be_u64, pad, Decode, Encode};
use crate::error::{ensure, Result};
use crate::types::{Dpid, MacAddr, PortNo};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Size of one encoded physical-port description.
pub const PHY_PORT_LEN: usize = 48;
/// Size of the fixed part of a features reply.
pub const FEATURES_REPLY_FIXED: usize = 24;

/// Description of one switch port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhyPort {
    /// Port number.
    pub port_no: PortNo,
    /// MAC address of the port.
    pub hw_addr: MacAddr,
    /// Human-readable name (at most 15 bytes + NUL on the wire).
    pub name: String,
    /// Administrative configuration bits.
    pub config: u32,
    /// Link state bits.
    pub state: u32,
    /// Current features bitmap.
    pub curr: u32,
    /// Advertised features bitmap.
    pub advertised: u32,
    /// Supported features bitmap.
    pub supported: u32,
    /// Peer-advertised features bitmap.
    pub peer: u32,
}

impl PhyPort {
    /// A simple 1 Gb/s copper port with the given number.
    #[must_use]
    pub fn gigabit(port_no: u16) -> PhyPort {
        PhyPort {
            port_no: PortNo(port_no),
            hw_addr: MacAddr::from_host_id(0x00ee_0000 | u32::from(port_no)),
            name: format!("eth{port_no}"),
            config: 0,
            state: 0,
            curr: 1 << 5, // OFPPF_1GB_FD
            advertised: 1 << 5,
            supported: 1 << 5,
            peer: 0,
        }
    }
}

impl Encode for PhyPort {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.port_no.0);
        buf.put_slice(&self.hw_addr.0);
        let mut name = [0u8; 16];
        let n = self.name.len().min(15);
        name[..n].copy_from_slice(&self.name.as_bytes()[..n]);
        buf.put_slice(&name);
        buf.put_u32(self.config);
        buf.put_u32(self.state);
        buf.put_u32(self.curr);
        buf.put_u32(self.advertised);
        buf.put_u32(self.supported);
        buf.put_u32(self.peer);
    }
}

impl Decode for PhyPort {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, PHY_PORT_LEN, "phy_port")?;
        let mut mac = [0u8; 6];
        mac.copy_from_slice(&buf[2..8]);
        let name_bytes = &buf[8..24];
        let end = name_bytes.iter().position(|&b| b == 0).unwrap_or(16);
        let name = String::from_utf8_lossy(&name_bytes[..end]).into_owned();
        Ok((
            PhyPort {
                port_no: PortNo(be_u16(buf, 0)),
                hw_addr: MacAddr(mac),
                name,
                config: be_u32(buf, 24),
                state: be_u32(buf, 28),
                curr: be_u32(buf, 32),
                advertised: be_u32(buf, 36),
                supported: be_u32(buf, 40),
                peer: be_u32(buf, 44),
            },
            PHY_PORT_LEN,
        ))
    }
}

/// The switch's feature report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeaturesReply {
    /// Datapath id.
    pub datapath_id: Dpid,
    /// Number of packet buffers.
    pub n_buffers: u32,
    /// Number of flow tables the switch *claims* to have. Per the paper,
    /// this number is not a reliable guide to actual table structure.
    pub n_tables: u8,
    /// Capability bits.
    pub capabilities: u32,
    /// Supported-action bitmap.
    pub actions: u32,
    /// Physical ports.
    pub ports: Vec<PhyPort>,
}

impl FeaturesReply {
    /// Encoded body length.
    #[must_use]
    pub fn body_len(&self) -> usize {
        FEATURES_REPLY_FIXED + self.ports.len() * PHY_PORT_LEN
    }
}

impl Encode for FeaturesReply {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.datapath_id.0);
        buf.put_u32(self.n_buffers);
        buf.put_u8(self.n_tables);
        pad(buf, 3);
        buf.put_u32(self.capabilities);
        buf.put_u32(self.actions);
        for p in &self.ports {
            p.encode(buf);
        }
    }
}

impl Decode for FeaturesReply {
    fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        ensure(buf, FEATURES_REPLY_FIXED, "features_reply")?;
        let datapath_id = Dpid(be_u64(buf, 0));
        let n_buffers = be_u32(buf, 8);
        let n_tables = buf[12];
        let capabilities = be_u32(buf, 16);
        let actions = be_u32(buf, 20);
        let mut ports = Vec::new();
        let mut off = FEATURES_REPLY_FIXED;
        while off < buf.len() {
            let (p, used) = PhyPort::decode(&buf[off..])?;
            ports.push(p);
            off += used;
        }
        Ok((
            FeaturesReply {
                datapath_id,
                n_buffers,
                n_tables,
                capabilities,
                actions,
                ports,
            },
            off,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phy_port_roundtrip() {
        let p = PhyPort::gigabit(3);
        let bytes = p.to_vec();
        assert_eq!(bytes.len(), PHY_PORT_LEN);
        let (back, _) = PhyPort::decode(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn long_port_names_truncate() {
        let mut p = PhyPort::gigabit(1);
        p.name = "a-very-long-interface-name".into();
        let (back, _) = PhyPort::decode(&p.to_vec()).unwrap();
        assert_eq!(back.name, "a-very-long-int");
        assert_eq!(back.name.len(), 15);
    }

    #[test]
    fn features_reply_roundtrip() {
        let fr = FeaturesReply {
            datapath_id: Dpid(42),
            n_buffers: 256,
            n_tables: 2,
            capabilities: 0x87,
            actions: 0xfff,
            ports: vec![PhyPort::gigabit(1), PhyPort::gigabit(2)],
        };
        let bytes = fr.to_vec();
        assert_eq!(bytes.len(), fr.body_len());
        let (back, _) = FeaturesReply::decode(&bytes).unwrap();
        assert_eq!(back, fr);
    }

    #[test]
    fn features_reply_no_ports() {
        let fr = FeaturesReply {
            datapath_id: Dpid(1),
            n_buffers: 0,
            n_tables: 1,
            capabilities: 0,
            actions: 0,
            ports: vec![],
        };
        let (back, _) = FeaturesReply::decode(&fr.to_vec()).unwrap();
        assert_eq!(back, fr);
    }
}
