//! Property test for the zero-copy streaming decoder: a valid message
//! stream, split at *arbitrary* byte boundaries — torn headers, torn
//! bodies, multi-message reads, empty reads — must reassemble through
//! [`Framer::next_message_from`] into exactly the sequence that
//! whole-frame decoding produces.
//!
//! This is the transport crate's load-bearing invariant: `tango-net`
//! feeds raw socket reads (whatever sizes TCP hands it) straight into
//! this path, so every tear a real socket can produce must be
//! equivalent to no tear at all.

use ofwire::prelude::*;
use proptest::prelude::*;

/// Length-diverse messages: framing only cares about byte counts, so
/// the strategy stresses bodies from 0 bytes (hello, barrier) through
/// variable-length payloads (echo, vendor) to structured ones
/// (flow-mod with an action).
fn arb_msg() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u32>().prop_map(|id| {
            Message::FlowMod(FlowMod::add(FlowMatch::l3_for_id(id), 7).with_action(
                Action::Output {
                    port: PortNo(1),
                    max_len: 0,
                },
            ))
        }),
        Just(Message::Hello),
        Just(Message::BarrierRequest),
        Just(Message::BarrierReply),
        proptest::collection::vec(any::<u8>(), 0..80).prop_map(Message::EchoRequest),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(vendor, data)| Message::Vendor { vendor, data }),
    ]
}

proptest! {
    #[test]
    fn next_message_from_reassembles_arbitrary_splits(
        msgs in proptest::collection::vec(arb_msg(), 1..8),
        sizes in proptest::collection::vec(1usize..200, 1..48),
    ) {
        // Encode the stream, remembering each frame's byte range for
        // the whole-frame baseline.
        let mut stream = Vec::new();
        let mut frames = Vec::new();
        for (i, msg) in msgs.iter().enumerate() {
            let start = stream.len();
            msg.encode_frame_into(Xid(i as u32), &mut stream);
            frames.push(start..stream.len());
        }
        let expected: Vec<(Xid, Message)> = frames
            .iter()
            .map(|r| {
                let (h, m) = Message::from_bytes(&stream[r.clone()]).unwrap();
                (h.xid, m)
            })
            .collect();

        // Replay the stream in chunks cut by the arbitrary size list
        // (cycled until the stream is exhausted).
        let mut framer = Framer::new();
        let mut got = Vec::new();
        let mut off = 0;
        let mut cut = sizes.iter().cycle();
        while off < stream.len() {
            let k = (*cut.next().unwrap()).min(stream.len() - off);
            let mut input = &stream[off..off + k];
            off += k;
            while let Some((h, m)) = framer.next_message_from(&mut input).unwrap() {
                got.push((h.xid, m));
            }
            // A `None` return means everything handed in was consumed:
            // whole frames decoded in place, any tail buffered.
            prop_assert!(input.is_empty());
        }
        prop_assert_eq!(got, expected);
    }
}
