//! Property-based tests: every structurally-valid message must survive an
//! encode→decode roundtrip byte-for-byte, and the framer must reassemble
//! arbitrary chunkings of a message stream.

use ofwire::flow_match::Ipv4Prefix;
use ofwire::prelude::*;
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

// Prefix lengths start at 1: a /0 constraint is wire-identical to "no
// constraint", and the decoder canonicalizes it to `None`.
fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 1u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len))
}

prop_compose! {
    fn arb_match()(
        in_port in proptest::option::of(any::<u16>()),
        dl_src in proptest::option::of(arb_mac()),
        dl_dst in proptest::option::of(arb_mac()),
        dl_vlan in proptest::option::of(any::<u16>()),
        dl_vlan_pcp in proptest::option::of(0u8..8),
        dl_type in proptest::option::of(any::<u16>()),
        nw_tos in proptest::option::of(any::<u8>()),
        nw_proto in proptest::option::of(any::<u8>()),
        nw_src in proptest::option::of(arb_prefix()),
        nw_dst in proptest::option::of(arb_prefix()),
        tp_src in proptest::option::of(any::<u16>()),
        tp_dst in proptest::option::of(any::<u16>()),
    ) -> FlowMatch {
        FlowMatch {
            in_port, dl_src, dl_dst, dl_vlan, dl_vlan_pcp, dl_type,
            nw_tos, nw_proto, nw_src, nw_dst, tp_src, tp_dst,
        }
    }
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(p, m)| Action::Output {
            port: PortNo(p),
            max_len: m
        }),
        any::<u16>().prop_map(Action::SetVlanVid),
        (0u8..8).prop_map(Action::SetVlanPcp),
        Just(Action::StripVlan),
        arb_mac().prop_map(Action::SetDlSrc),
        arb_mac().prop_map(Action::SetDlDst),
        any::<u32>().prop_map(Action::SetNwSrc),
        any::<u32>().prop_map(Action::SetNwDst),
        any::<u8>().prop_map(Action::SetNwTos),
        any::<u16>().prop_map(Action::SetTpSrc),
        any::<u16>().prop_map(Action::SetTpDst),
        (any::<u16>(), any::<u32>()).prop_map(|(p, q)| Action::Enqueue {
            port: PortNo(p),
            queue_id: q
        }),
    ]
}

prop_compose! {
    fn arb_flow_mod()(
        m in arb_match(),
        cookie in any::<u64>(),
        command in prop_oneof![
            Just(FlowModCommand::Add),
            Just(FlowModCommand::Modify),
            Just(FlowModCommand::ModifyStrict),
            Just(FlowModCommand::Delete),
            Just(FlowModCommand::DeleteStrict),
        ],
        idle in any::<u16>(),
        hard in any::<u16>(),
        priority in any::<u16>(),
        buffer in any::<u32>(),
        out_port in any::<u16>(),
        flags in 0u16..8,
        actions in proptest::collection::vec(arb_action(), 0..6),
    ) -> FlowMod {
        FlowMod {
            flow_match: m,
            cookie,
            command,
            idle_timeout: idle,
            hard_timeout: hard,
            priority,
            buffer_id: BufferId(buffer),
            out_port: PortNo(out_port),
            flags: FlowModFlags(flags),
            actions,
        }
    }
}

proptest! {
    #[test]
    fn flow_mod_roundtrips(fm in arb_flow_mod(), xid in any::<u32>()) {
        let msg = Message::FlowMod(fm);
        let bytes = msg.to_bytes(Xid(xid));
        let (header, back) = Message::from_bytes(&bytes).unwrap();
        prop_assert_eq!(header.xid, Xid(xid));
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn match_covers_is_consistent_with_overlap(a in arb_match(), b in arb_match()) {
        // If both matches cover the same concrete key, they must overlap.
        let key = FlowMatch::key_for_id(77);
        if a.covers(&key) && b.covers(&key) {
            prop_assert!(a.overlaps(&b));
        }
        // Overlap is symmetric.
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        // Subsumption implies overlap (a match can't subsume a disjoint one).
        if a.subsumes(&b) {
            prop_assert!(a.overlaps(&b));
        }
    }

    #[test]
    fn subsumption_is_reflexive_and_transitive_with_self(a in arb_match()) {
        prop_assert!(a.subsumes(&a));
        prop_assert!(FlowMatch::any().subsumes(&a));
    }

    #[test]
    fn framer_reassembles_arbitrary_chunking(
        fms in proptest::collection::vec(arb_flow_mod(), 1..5),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for (i, fm) in fms.iter().enumerate() {
            stream.extend_from_slice(&Message::FlowMod(fm.clone()).to_bytes(Xid(i as u32)));
        }
        let mut framer = Framer::new();
        let mut out = Vec::new();
        for piece in stream.chunks(chunk) {
            framer.push(piece);
            while let Some((h, m)) = framer.next_message().unwrap() {
                out.push((h, m));
            }
        }
        prop_assert_eq!(out.len(), fms.len());
        for (i, ((h, m), fm)) in out.into_iter().zip(fms).enumerate() {
            prop_assert_eq!(h.xid, Xid(i as u32));
            prop_assert_eq!(m, Message::FlowMod(fm));
        }
    }

    #[test]
    fn raw_frame_roundtrips_key(id in any::<u32>(), payload in 0usize..256) {
        let key = FlowMatch::key_for_id(id);
        let frame = RawFrame::build(&key, payload);
        prop_assert!(RawFrame::verify_ipv4_checksum(&frame));
        let parsed = RawFrame::parse(&frame, PortNo(key.in_port)).unwrap();
        prop_assert_eq!(parsed, key);
    }

    #[test]
    fn decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Arbitrary bytes must produce Ok or Err, never a panic.
        let _ = Message::from_bytes(&noise);
        let mut framer = Framer::new();
        framer.push(&noise);
        let _ = framer.drain();
    }
}
