//! Property-based invariants of the scheduling layer.
//!
//! * Any random acyclic request DAG drains completely under every
//!   scheduler, with every request issued exactly once.
//! * Every registry scheduler's dispatch order respects the DAG's
//!   dependency edges, with [`satisfies`] as the oracle.
//! * Batched and online execution reach identical final switch states.
//! * Pattern application is always a permutation of the independent
//!   set.
//! * Priority assignments always satisfy their constraint sets.

use ofwire::flow_match::FlowMatch;
use ofwire::types::Dpid;
use proptest::prelude::*;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::db::TangoDb;
use tango_sched::dag::{NodeId, RequestDag};
use tango_sched::executor::{execute_online, execute_with, Discipline, Release};
use tango_sched::extensions::execute_batched_greedy;
use tango_sched::patterns::{ordering_tango_oracle, SchedPattern};
use tango_sched::priority::{r_priorities, satisfies, topological_priorities};
use tango_sched::request::{ReqElem, ReqOp};
use tango_sched::schedulers::registry;

/// A random DAG: `n` requests over up to 3 switches; forward edges only
/// (guaranteed acyclic). Mods/deletes are avoided so any execution
/// order succeeds without preinstalled state.
fn arb_dag() -> impl Strategy<Value = RequestDag> {
    (
        2usize..40,
        proptest::collection::vec((any::<u16>(), 0u8..3), 2..40),
        any::<u64>(),
    )
        .prop_map(|(_n, specs, seed)| {
            let mut dag = RequestDag::new();
            let ids: Vec<NodeId> = specs
                .iter()
                .enumerate()
                .map(|(i, &(prio, sw))| {
                    dag.add_node(ReqElem::add(
                        Dpid(u64::from(sw) + 1),
                        FlowMatch::l3_for_id(i as u32),
                        prio,
                        1,
                    ))
                })
                .collect();
            let mut rng = simnet::rng::DetRng::new(seed);
            for j in 1..ids.len() {
                if rng.chance(0.4) {
                    let i = rng.index(j);
                    dag.add_dep(ids[i], ids[j]);
                }
            }
            dag
        })
}

/// A boxed execution closure (keeps the proptest body readable).
type RunFn = Box<dyn FnMut(&mut Testbed, &mut RequestDag)>;

fn testbed(seed: u64) -> Testbed {
    let mut tb = Testbed::new(seed);
    tb.attach_default(Dpid(1), SwitchProfile::vendor1());
    tb.attach_default(Dpid(2), SwitchProfile::vendor2());
    tb.attach_default(Dpid(3), SwitchProfile::ovs());
    tb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_discipline_drains_random_dags(dag in arb_dag()) {
        for discipline in [
            Discipline::CriticalPath,
            Discipline::TangoTypeOnly,
            Discipline::TangoTypePriority,
        ] {
            let mut tb = testbed(1);
            let mut d = dag.clone();
            let n = d.len();
            let report = execute_online(&mut tb, &mut d, discipline, Release::Ack).unwrap();
            prop_assert!(d.all_done());
            prop_assert_eq!(report.completed + report.failed, n);
            prop_assert_eq!(report.failed, 0);
        }
    }

    #[test]
    fn registered_schedulers_respect_dependencies(dag in arb_dag()) {
        // Every portfolio entry must emit a dependency-respecting
        // dispatch order. Reuse the priority checker as the oracle: give
        // earlier-issued requests higher "priority" and demand every DAG
        // edge (pred, succ) is satisfied — i.e. pred issued first.
        let deps: Vec<(usize, usize)> = dag.edges().map(|(a, b)| (a.0, b.0)).collect();
        for entry in registry() {
            let mut tb = testbed(4);
            let mut d = dag.clone();
            let n = d.len();
            let mut sched = entry.build();
            let report =
                execute_with(&mut tb, &mut d, &TangoDb::new(), sched.as_mut(), entry.release)
                    .unwrap();
            prop_assert!(d.all_done(), "{}", entry.name);
            prop_assert_eq!(report.issued.len(), n, "{}", entry.name);
            let mut prio = vec![0u16; n];
            for (pos, id) in report.issued.iter().enumerate() {
                prop_assert!(prio[id.0] == 0, "{} issued {:?} twice", entry.name, id);
                prio[id.0] = (n - pos) as u16;
            }
            prop_assert!(
                satisfies(&prio, &deps),
                "{} violated a dependency edge in {:?}",
                entry.name,
                report.issued
            );
        }
    }

    #[test]
    fn batched_and_online_agree_on_final_state(dag in arb_dag()) {
        let count_after = |mut run: RunFn| {
            let mut tb = testbed(2);
            let mut d = dag.clone();
            run(&mut tb, &mut d);
            tb.dpids()
                .iter()
                .map(|&dp| tb.switch(dp).rule_count())
                .collect::<Vec<_>>()
        };
        let db = TangoDb::new();
        let batched = count_after(Box::new(move |tb, d| {
            execute_batched_greedy(tb, d, &db).unwrap();
        }));
        let online = count_after(Box::new(|tb, d| {
            execute_online(tb, d, Discipline::TangoTypePriority, Release::Ack).unwrap();
        }));
        prop_assert_eq!(batched, online);
    }

    #[test]
    fn patterns_permute_the_set(dag in arb_dag()) {
        let set = dag.independent_set();
        for p in SchedPattern::standard_set() {
            let mut ordered = p.apply(&dag, &set);
            prop_assert_eq!(ordered.len(), set.len(), "{}", p.name);
            ordered.sort_unstable();
            let mut expect = set.clone();
            expect.sort_unstable();
            prop_assert_eq!(&ordered, &expect, "{}", p.name);
        }
        let db = TangoDb::new();
        let (oracle_order, _) = ordering_tango_oracle(&db, &dag, &set);
        prop_assert_eq!(oracle_order.len(), set.len());
    }

    #[test]
    fn priority_assignments_satisfy_random_constraints(
        n in 2usize..60,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..80),
    ) {
        // Forward-orient random pairs to guarantee acyclicity.
        let deps: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| ((a as usize) % n, (b as usize) % n))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        let topo = topological_priorities(n, &deps).unwrap();
        let r = r_priorities(n, &deps).unwrap();
        prop_assert!(satisfies(&topo.priorities, &deps));
        prop_assert!(satisfies(&r.priorities, &deps));
        prop_assert!(topo.distinct <= r.distinct);
        prop_assert_eq!(r.distinct, n);
    }

    #[test]
    fn tango_type_phases_are_ordered_per_switch(
        specs in proptest::collection::vec((0u8..3, any::<u16>()), 1..30),
    ) {
        // Build a flat DAG of mixed ops (mods/dels target preinstalled
        // rules so nothing fails), execute with TangoTypeOnly, and check
        // the per-switch completion order never has an add before a del.
        let mut tb = testbed(3);
        // Preinstall targets.
        let mut fms = Vec::new();
        for (i, &(op, _)) in specs.iter().enumerate() {
            if op != 0 {
                fms.push(ofwire::flow_mod::FlowMod::add(
                    FlowMatch::l3_for_id(i as u32),
                    500,
                ));
            }
        }
        if !fms.is_empty() {
            tb.batch(Dpid(1), fms);
        }
        let mut dag = RequestDag::new();
        for (i, &(op, prio)) in specs.iter().enumerate() {
            let m = FlowMatch::l3_for_id(i as u32);
            let req = match op {
                0 => ReqElem::add(Dpid(1), m, prio, 1),
                1 => ReqElem::modify(Dpid(1), m, 500, 2),
                _ => ReqElem::delete(Dpid(1), m, 500),
            };
            dag.add_node(req);
        }
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypeOnly,
            Release::Ack,
        )
        .unwrap();
        prop_assert_eq!(report.failed, 0);
        // Final state: preinstalled mods stay, dels gone, adds present.
        let adds = specs.iter().filter(|&&(op, _)| op == 0).count();
        let mods = specs.iter().filter(|&&(op, _)| op == 1).count();
        prop_assert_eq!(tb.switch(Dpid(1)).rule_count(), adds + mods);
        let _ = ReqOp::Add;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn execution_is_deterministic(dag in arb_dag(), seed in any::<u64>()) {
        let run = || {
            let mut tb = testbed(seed);
            let mut d = dag.clone();
            let report = execute_online(
                &mut tb,
                &mut d,
                Discipline::TangoTypePriority,
                Release::Guard(simnet::time::SimDuration::from_micros(50)),
            )
            .unwrap();
            (report.makespan, report.completed, tb.now())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn guard_release_never_slower_than_ack(dag in arb_dag()) {
        let makespan = |release| {
            let mut tb = testbed(9);
            let mut d = dag.clone();
            execute_online(&mut tb, &mut d, Discipline::TangoTypePriority, release)
                .unwrap()
                .makespan
        };
        let ack = makespan(Release::Ack);
        let guard = makespan(Release::Guard(simnet::time::SimDuration::from_micros(50)));
        // Guarded release strictly dominates ack-waiting (same order,
        // earlier releases); allow a whisker for link-jitter stream
        // divergence between the two runs.
        prop_assert!(
            guard.as_millis_f64() <= ack.as_millis_f64() * 1.05,
            "guard {} vs ack {}",
            guard,
            ack
        );
    }
}
