//! The unified dispatcher is deterministic and the legacy entry points
//! are exactly its thin wrappers.
//!
//! Same RNG seed, same workload ⇒ bit-identical `ExecReport`, whether
//! the DAG goes through `execute_batched` / `execute_online` or directly
//! through `execute` with the equivalent `ReleasePolicy` — and across
//! repeated runs.

use ofwire::flow_match::FlowMatch;
use ofwire::types::Dpid;
use simnet::rng::DetRng;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::db::TangoDb;
use tango_sched::dag::{NodeId, RequestDag};
use tango_sched::executor::{
    execute, execute_batched, execute_online, Discipline, ExecReport, Release, ReleasePolicy,
};
use tango_sched::patterns::ordering_tango_oracle;
use tango_sched::request::ReqElem;

const SEED: u64 = 0x5eed;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(SEED);
    tb.attach_default(Dpid(1), SwitchProfile::vendor1());
    tb.attach_default(Dpid(2), SwitchProfile::vendor2());
    tb
}

/// A mixed workload: shuffled-priority adds over two switches with a
/// sprinkling of chain dependencies.
fn workload() -> RequestDag {
    let mut dag = RequestDag::new();
    let mut rng = DetRng::new(SEED);
    let ids: Vec<NodeId> = (0..120u32)
        .map(|i| {
            let dpid = if rng.chance(0.5) { Dpid(1) } else { Dpid(2) };
            dag.add_node(ReqElem::add(
                dpid,
                FlowMatch::l3_for_id(i),
                1000 + rng.index(500) as u16,
                1,
            ))
        })
        .collect();
    for j in 1..ids.len() {
        if rng.chance(0.3) {
            let i = rng.index(j);
            dag.add_dep(ids[i], ids[j]);
        }
    }
    dag
}

#[test]
fn batched_wrapper_equals_unified_dispatcher() {
    let db = TangoDb::new();
    let via_wrapper = {
        let mut tb = testbed();
        let mut dag = workload();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        execute_batched(&mut tb, &mut dag, &db, &mut oracle).unwrap()
    };
    let via_policy = {
        let mut tb = testbed();
        let mut dag = workload();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        execute(
            &mut tb,
            &mut dag,
            ReleasePolicy::RoundBarrier {
                db: &db,
                order: &mut oracle,
                partial: false,
            },
        )
        .unwrap()
    };
    assert_eq!(via_wrapper, via_policy);
    assert_eq!(via_wrapper.completed, 120);
}

#[test]
fn online_wrapper_equals_unified_dispatcher() {
    let run_wrapper = || {
        let mut tb = testbed();
        let mut dag = workload();
        execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypePriority,
            Release::Ack,
        )
        .unwrap()
    };
    let run_policy = || {
        let mut tb = testbed();
        let mut dag = workload();
        execute(
            &mut tb,
            &mut dag,
            ReleasePolicy::PerEdge {
                discipline: Discipline::TangoTypePriority,
                release: Release::Ack,
            },
        )
        .unwrap()
    };
    let a: ExecReport = run_wrapper();
    let b: ExecReport = run_policy();
    assert_eq!(a, b);
    // And the whole pipeline is replayable: run it again, bit-identical.
    assert_eq!(a, run_wrapper());
    assert_eq!(b, run_policy());
}
