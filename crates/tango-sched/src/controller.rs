//! The Tango controller facade — the one-stop public API tying the
//! whole system together (Fig 4's component diagram): the probing
//! engine feeds the Tango Score and Pattern Databases, and the network
//! scheduler and application hints consume them.

use crate::basic::{run_dionysus, run_tango_online, TangoMode};
use crate::dag::RequestDag;
use crate::executor::ExecReport;
use ofwire::types::Dpid;
use simnet::time::SimDuration;
use switchsim::harness::Testbed;
use tango::curves::measure_latency_profile;
use tango::db::TangoDb;
use tango::driver::ProbeError;
use tango::fleet::{run_inference, FleetJob};
use tango::hints::{advise_placement, AppHint};
use tango::infer_geometry::{probe_geometry, GeometryEstimate};
use tango::infer_policy::{probe_policy, PolicyProbeConfig};
use tango::infer_size::{probe_sizes, SizeProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;

/// What [`TangoController::understand_switch`] should probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnderstandOptions {
    /// Cap on installed rules for the size probe.
    pub max_flows: usize,
    /// Sampling trials per layer (Algorithm 1 stage 3).
    pub trials_per_level: usize,
    /// Also run the cache-policy probe (needs a bounded fast layer).
    pub probe_policy: bool,
    /// Also measure latency curves at this batch size (0 = skip).
    pub latency_batch: usize,
}

impl Default for UnderstandOptions {
    fn default() -> UnderstandOptions {
        UnderstandOptions {
            max_flows: 4096,
            trials_per_level: 600,
            probe_policy: true,
            latency_batch: 300,
        }
    }
}

/// The assembled Tango controller: a testbed of (possibly diverse,
/// possibly unknown) switches plus the knowledge Tango accumulates
/// about them.
pub struct TangoController {
    testbed: Testbed,
    db: TangoDb,
}

impl TangoController {
    /// Wraps a testbed.
    #[must_use]
    pub fn new(testbed: Testbed) -> TangoController {
        TangoController {
            testbed,
            db: TangoDb::new(),
        }
    }

    /// The accumulated knowledge base.
    #[must_use]
    pub fn db(&self) -> &TangoDb {
        &self.db
    }

    /// The underlying testbed.
    #[must_use]
    pub fn testbed(&self) -> &Testbed {
        &self.testbed
    }

    /// Mutable testbed access (e.g. to preinstall application state).
    pub fn testbed_mut(&mut self) -> &mut Testbed {
        &mut self.testbed
    }

    /// Runs the full understanding pass on one switch: layer sizes,
    /// cache policy (if a bounded fast layer exists), and latency
    /// curves. Clears the switch's rules before and after (offline
    /// probing, §4).
    ///
    /// # Errors
    /// Propagates any [`ProbeError`] from the probes.
    pub fn understand_switch(
        &mut self,
        dpid: Dpid,
        opts: &UnderstandOptions,
    ) -> Result<(), ProbeError> {
        let size = {
            let mut engine = ProbingEngine::new(&mut self.testbed, dpid, RuleKind::L3);
            engine.clear_rules();
            let cfg = SizeProbeConfig {
                max_flows: opts.max_flows,
                trials_per_level: opts.trials_per_level,
                ..SizeProbeConfig::default()
            };
            probe_sizes(&mut engine, &cfg)?
        };
        let fast = size.fast_layer_size();
        let bounded = size.hit_rejection || size.levels.len() >= 2;

        let policy = if opts.probe_policy && bounded {
            let n = fast.unwrap_or(0.0).round() as usize;
            let mut engine = ProbingEngine::new(&mut self.testbed, dpid, RuleKind::L3);
            Some(probe_policy(&mut engine, n, &PolicyProbeConfig::default())?)
        } else {
            None
        };

        let latency = if opts.latency_batch > 0 {
            let mut engine = ProbingEngine::new(&mut self.testbed, dpid, RuleKind::L3);
            engine.clear_rules();
            let lp = measure_latency_profile(&mut engine, opts.latency_batch)?;
            engine.clear_rules();
            Some(lp)
        } else {
            None
        };

        let label = self.testbed.switch(dpid).profile_name.clone();
        let k = self.db.switch_mut(dpid);
        k.label = label;
        k.size = Some(size);
        k.policy = policy;
        k.latency = latency;
        Ok(())
    }

    /// Runs the understanding pass on many switches at once, probing
    /// them concurrently over the shared control path: all size probes
    /// interleave in one fleet phase, then all policy probes (sized by
    /// the phase-one results). Per-switch knowledge is bit-identical to
    /// calling [`understand_switch`](TangoController::understand_switch)
    /// on each switch — fleet probing only compresses wall-clock time.
    ///
    /// Latency curves (when `opts.latency_batch > 0`) are still measured
    /// switch-by-switch: their per-arm clears make them stateful in a
    /// way the interleaved phases deliberately are not.
    ///
    /// # Errors
    /// Propagates any [`ProbeError`]; knowledge from completed phases is
    /// kept.
    pub fn understand_fleet(
        &mut self,
        dpids: &[Dpid],
        opts: &UnderstandOptions,
    ) -> Result<(), ProbeError> {
        // Phase 1: all size probes, interleaved.
        let cfg = SizeProbeConfig {
            max_flows: opts.max_flows,
            trials_per_level: opts.trials_per_level,
            ..SizeProbeConfig::default()
        };
        for &dpid in dpids {
            ProbingEngine::new(&mut self.testbed, dpid, RuleKind::L3).clear_rules();
        }
        let size_jobs: Vec<FleetJob> = dpids
            .iter()
            .map(|&d| FleetJob::size(d, RuleKind::L3, cfg))
            .collect();
        let size_outcomes = run_inference(&mut self.testbed, &size_jobs)?;
        self.db.ingest_fleet(&size_jobs, &size_outcomes);

        // Phase 2: policy probes for every switch phase 1 found bounded.
        if opts.probe_policy {
            let policy_jobs: Vec<FleetJob> = size_outcomes
                .iter()
                .zip(dpids)
                .filter_map(|(outcome, &dpid)| {
                    let size = outcome.as_size()?;
                    let bounded = size.hit_rejection || size.levels.len() >= 2;
                    if !bounded {
                        return None;
                    }
                    let n = size.fast_layer_size().unwrap_or(0.0).round() as usize;
                    Some(FleetJob::policy(
                        dpid,
                        RuleKind::L3,
                        n,
                        PolicyProbeConfig::default(),
                    ))
                })
                .collect();
            let policy_outcomes = run_inference(&mut self.testbed, &policy_jobs)?;
            self.db.ingest_fleet(&policy_jobs, &policy_outcomes);
        }

        // Phase 3: latency curves, per switch (see the doc comment).
        for &dpid in dpids {
            let latency = if opts.latency_batch > 0 {
                let mut engine = ProbingEngine::new(&mut self.testbed, dpid, RuleKind::L3);
                engine.clear_rules();
                let lp = measure_latency_profile(&mut engine, opts.latency_batch)?;
                engine.clear_rules();
                Some(lp)
            } else {
                None
            };
            let label = self.testbed.switch(dpid).profile_name.clone();
            let k = self.db.switch_mut(dpid);
            k.label = label;
            k.latency = latency;
        }
        Ok(())
    }

    /// Probes a switch's TCAM geometry (the future-work width-mode
    /// pattern).
    ///
    /// # Errors
    /// Propagates any [`ProbeError`] from the sub-probes.
    pub fn probe_geometry(
        &mut self,
        dpid: Dpid,
        cap: usize,
    ) -> Result<GeometryEstimate, ProbeError> {
        probe_geometry(&mut self.testbed, dpid, cap, 128)
    }

    /// Executes a request DAG with Tango's online scheduler (pattern
    /// ordering + guard-time release).
    pub fn execute(&mut self, dag: &mut RequestDag, mode: TangoMode) -> ExecReport {
        run_tango_online(&mut self.testbed, dag, mode)
    }

    /// Executes a request DAG with the Dionysus baseline (for
    /// comparison).
    pub fn execute_dionysus(&mut self, dag: &mut RequestDag) -> ExecReport {
        run_dionysus(&mut self.testbed, dag)
    }

    /// Picks the best switch for a hinted flow, using the knowledge
    /// base (the intro's software-vs-hardware placement example).
    #[must_use]
    pub fn place(&self, candidates: &[Dpid], hint: &AppHint) -> Option<Dpid> {
        advise_placement(&self.db, candidates, hint)
    }

    /// Predicted time to install `adds` rules on `dpid` (ascending
    /// order), from the measured latency curves.
    #[must_use]
    pub fn predict_install_ms(&self, dpid: Dpid, adds: usize) -> f64 {
        self.db
            .latency_or_default(dpid)
            .predict_batch_ms(adds, 0, 0)
    }

    /// Convenience: a controller-side makespan comparison for the same
    /// DAG-building closure under Tango and Dionysus (fresh state is
    /// the caller's responsibility).
    pub fn compare<F>(&mut self, mut build: F) -> (SimDuration, SimDuration)
    where
        F: FnMut() -> RequestDag,
    {
        let mut dag = build();
        let tango = self.execute(&mut dag, TangoMode::TypeAndPriority).makespan;
        let mut dag = build();
        let dionysus = self.execute_dionysus(&mut dag).makespan;
        (tango, dionysus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;
    use switchsim::cache::CachePolicy;
    use switchsim::profiles::SwitchProfile;
    use tango::hints::FlowGoal;

    fn controller() -> TangoController {
        let mut tb = Testbed::new(0xc0);
        tb.attach_default(
            Dpid(1),
            SwitchProfile::generic_cached(200, CachePolicy::fifo()),
        );
        tb.attach_default(Dpid(2), SwitchProfile::ovs());
        TangoController::new(tb)
    }

    #[test]
    fn understand_populates_db() {
        let mut c = controller();
        c.understand_switch(
            Dpid(1),
            &UnderstandOptions {
                max_flows: 400,
                trials_per_level: 300,
                ..UnderstandOptions::default()
            },
        )
        .expect("understanding pass completes");
        let k = c.db().switch(Dpid(1)).unwrap();
        let fast = k.fast_layer_size().unwrap();
        assert!((fast - 200.0).abs() / 200.0 < 0.06, "fast {fast}");
        assert_eq!(
            k.policy.as_ref().unwrap().as_policy().describe(),
            "insertion_time↓"
        );
        assert!(k.latency.unwrap().priority_sensitive());
        // The probe cleaned up after itself.
        assert_eq!(c.testbed().switch(Dpid(1)).rule_count(), 0);
    }

    #[test]
    fn understanding_drives_placement() {
        let mut c = controller();
        for d in [Dpid(1), Dpid(2)] {
            c.understand_switch(
                d,
                &UnderstandOptions {
                    max_flows: 400,
                    trials_per_level: 64,
                    probe_policy: false,
                    latency_batch: 100,
                },
            )
            .expect("understanding pass completes");
        }
        assert_eq!(
            c.place(&[Dpid(1), Dpid(2)], &AppHint::fast_setup()),
            Some(Dpid(2)),
            "OVS installs faster"
        );
        assert_eq!(
            c.place(
                &[Dpid(1), Dpid(2)],
                &AppHint {
                    goal: FlowGoal::FastForwarding,
                    install_by_ms: None
                }
            ),
            Some(Dpid(1)),
            "hardware forwards faster"
        );
        // Predictions come from measured curves, not defaults.
        let hw = c.predict_install_ms(Dpid(1), 100);
        let sw = c.predict_install_ms(Dpid(2), 100);
        assert!(sw < hw);
    }

    #[test]
    fn understand_fleet_matches_per_switch_understanding() {
        let opts = UnderstandOptions {
            max_flows: 400,
            trials_per_level: 64,
            ..UnderstandOptions::default()
        };
        let mut seq = controller();
        for d in [Dpid(1), Dpid(2)] {
            seq.understand_switch(d, &opts).expect("sequential pass");
        }
        let mut fleet = controller();
        fleet
            .understand_fleet(&[Dpid(1), Dpid(2)], &opts)
            .expect("fleet pass");
        for d in [Dpid(1), Dpid(2)] {
            assert_eq!(
                fleet.db().switch(d),
                seq.db().switch(d),
                "fleet and sequential knowledge diverge for {d}"
            );
        }
    }

    #[test]
    fn execute_and_compare() {
        let mut c = controller();
        let build = || {
            let mut dag = RequestDag::new();
            let mut prios: Vec<u16> = (0..100u16).map(|i| 1000 + i).collect();
            simnet::rng::DetRng::new(4).shuffle(&mut prios);
            for (i, p) in prios.iter().enumerate() {
                dag.add_node(ReqElem::add(
                    Dpid(1),
                    FlowMatch::l3_for_id(5000 + i as u32),
                    *p,
                    1,
                ));
            }
            dag
        };
        let (tango, dionysus) = c.compare(build);
        assert!(
            tango.as_millis_f64() < dionysus.as_millis_f64(),
            "tango {tango} vs dionysus {dionysus}"
        );
    }
}
