//! Scheduling patterns and the ordering oracle (§6, Algorithm 3).
//!
//! A scheduling pattern prescribes how an independent set of requests is
//! ordered on the wire: which operation class goes first and in which
//! priority order adds are issued. The oracle scores each pattern with
//! the measured per-op costs from the TangoDB — the paper's
//! `score = −(w_del·|DEL| + w_mod·|MOD| + w_add·|ADD|²)` form, with
//! weights taken from real measurements instead of constants — and picks
//! the cheapest (max score).

use crate::dag::{NodeId, RequestDag};
use crate::request::ReqOp;
use ofwire::types::Dpid;
use serde::{Deserialize, Serialize};
use tango::db::TangoDb;

/// How adds within the batch are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddOrder {
    /// Ascending rule priority (no TCAM shifting).
    Ascending,
    /// Descending rule priority (maximal shifting — the straw man).
    Descending,
    /// Leave adds in submission order.
    AsGiven,
}

/// One scheduling pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedPattern {
    /// Pattern name (e.g. `"DEL_MOD_ASCEND_ADD"`).
    pub name: String,
    /// Operation-class phases, first issued first.
    pub phases: [ReqOp; 3],
    /// Ordering of the add phase.
    pub add_order: AddOrder,
}

impl SchedPattern {
    /// The standard pattern set Algorithm 3 scores: deletes first frees
    /// table space before adds; the add order arms differ.
    #[must_use]
    pub fn standard_set() -> Vec<SchedPattern> {
        let mut out = Vec::new();
        let phase_perms: [[ReqOp; 3]; 6] = [
            [ReqOp::Del, ReqOp::Mod, ReqOp::Add],
            [ReqOp::Del, ReqOp::Add, ReqOp::Mod],
            [ReqOp::Mod, ReqOp::Del, ReqOp::Add],
            [ReqOp::Mod, ReqOp::Add, ReqOp::Del],
            [ReqOp::Add, ReqOp::Del, ReqOp::Mod],
            [ReqOp::Add, ReqOp::Mod, ReqOp::Del],
        ];
        for phases in phase_perms {
            for add_order in [AddOrder::Ascending, AddOrder::Descending] {
                let order_name = match add_order {
                    AddOrder::Ascending => "ASCEND",
                    AddOrder::Descending => "DESCEND",
                    AddOrder::AsGiven => "GIVEN",
                };
                let name = format!(
                    "{}_{}_{}_ADD",
                    phases[0].label().to_uppercase(),
                    phases[1].label().to_uppercase(),
                    order_name
                );
                out.push(SchedPattern {
                    name,
                    phases,
                    add_order,
                });
            }
        }
        out
    }

    /// Reorders an independent set according to the pattern, grouping
    /// per switch so each switch receives its ops in pattern order.
    #[must_use]
    pub fn apply(&self, dag: &RequestDag, set: &[NodeId]) -> Vec<NodeId> {
        let mut ordered: Vec<NodeId> = Vec::with_capacity(set.len());
        for phase in self.phases {
            let mut phase_nodes: Vec<NodeId> = set
                .iter()
                .copied()
                .filter(|&id| dag.node(id).op == phase)
                .collect();
            if phase == ReqOp::Add {
                match self.add_order {
                    AddOrder::Ascending => {
                        phase_nodes.sort_by_key(|&id| (dag.node(id).effective_priority(), id))
                    }
                    AddOrder::Descending => phase_nodes
                        .sort_by_key(|&id| (u16::MAX - dag.node(id).effective_priority(), id)),
                    AddOrder::AsGiven => {}
                }
            }
            ordered.extend(phase_nodes);
        }
        ordered
    }
}

/// Per-switch operation counts of an independent set.
fn op_counts(dag: &RequestDag, set: &[NodeId]) -> Vec<(Dpid, [usize; 3])> {
    let mut map: std::collections::BTreeMap<u64, [usize; 3]> = std::collections::BTreeMap::new();
    for &id in set {
        let r = dag.node(id);
        let slot = match r.op {
            ReqOp::Add => 0,
            ReqOp::Mod => 1,
            ReqOp::Del => 2,
        };
        map.entry(r.location.0).or_default()[slot] += 1;
    }
    map.into_iter().map(|(d, c)| (Dpid(d), c)).collect()
}

/// Scores a pattern for an independent set (higher = cheaper). The cost
/// model uses each switch's measured latency profile: deletes and mods
/// are linear; adds are linear for ascending order and quadratic (TCAM
/// shifting) for descending.
#[must_use]
pub fn pattern_score(db: &TangoDb, dag: &RequestDag, set: &[NodeId], p: &SchedPattern) -> f64 {
    let mut cost_ms = 0.0;
    for (dpid, [adds, mods, dels]) in op_counts(dag, set) {
        let lp = db.latency_or_default(dpid);
        cost_ms += lp.del_ms * dels as f64 + lp.mod_ms * mods as f64;
        let a = adds as f64;
        cost_ms += match p.add_order {
            AddOrder::Ascending => lp.add_asc_ms * a,
            AddOrder::Descending => lp.add_asc_ms * a + lp.shift_us / 1000.0 * a * a / 2.0,
            AddOrder::AsGiven => lp.add_rand_ms * a,
        };
        // Adds issued before deletes at a near-full table shift against
        // more resident entries; penalize add-before-del on
        // shift-sensitive switches.
        let add_pos = p.phases.iter().position(|&x| x == ReqOp::Add).expect("add");
        let del_pos = p.phases.iter().position(|&x| x == ReqOp::Del).expect("del");
        if add_pos < del_pos {
            cost_ms += lp.shift_us / 1000.0 * a * dels as f64;
        }
    }
    -cost_ms
}

/// Algorithm 3's *printed* pattern scores, with the paper's literal
/// weights: `−(10·|DEL| + 1·|MOD| + w·|ADD|²)` where `w = 20` for the
/// ascending-add pattern and `w = 40` for descending. Reproduces the §6
/// worked example exactly (Fig 7's independent set {A, E, H, I} scores
/// −91 under pattern 1 and −171 under pattern 2); the measured-weights
/// [`pattern_score`] is what the production oracle uses.
#[must_use]
pub fn pattern_score_paper_weights(dag: &RequestDag, set: &[NodeId], add_order: AddOrder) -> f64 {
    let mut dels = 0.0;
    let mut mods = 0.0;
    let mut adds = 0.0;
    for &id in set {
        match dag.node(id).op {
            ReqOp::Del => dels += 1.0,
            ReqOp::Mod => mods += 1.0,
            ReqOp::Add => adds += 1.0,
        }
    }
    let w_add = match add_order {
        AddOrder::Ascending => 20.0,
        AddOrder::Descending => 40.0,
        AddOrder::AsGiven => 30.0,
    };
    -(10.0 * dels + 1.0 * mods + w_add * adds * adds)
}

/// The ordering oracle of Algorithm 3: scores every pattern and returns
/// the independent set reordered by the best one (plus its name for
/// diagnostics).
#[must_use]
pub fn ordering_tango_oracle(
    db: &TangoDb,
    dag: &RequestDag,
    set: &[NodeId],
) -> (Vec<NodeId>, String) {
    let mut best: Option<(f64, SchedPattern)> = None;
    for p in SchedPattern::standard_set() {
        let score = pattern_score(db, dag, set, &p);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, p));
        }
    }
    let (_, pattern) = best.expect("standard set is non-empty");
    (pattern.apply(dag, set), pattern.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;

    fn mixed_dag() -> (RequestDag, Vec<NodeId>) {
        let mut dag = RequestDag::new();
        let d = Dpid(1);
        let ids = vec![
            dag.add_node(ReqElem::add(d, FlowMatch::l3_for_id(1), 30, 1)),
            dag.add_node(ReqElem::add(d, FlowMatch::l3_for_id(2), 10, 1)),
            dag.add_node(ReqElem::modify(d, FlowMatch::l3_for_id(3), 5, 2)),
            dag.add_node(ReqElem::delete(d, FlowMatch::l3_for_id(4), 5)),
            dag.add_node(ReqElem::add(d, FlowMatch::l3_for_id(5), 20, 1)),
        ];
        (dag, ids)
    }

    #[test]
    fn standard_set_has_twelve_distinct_patterns() {
        let set = SchedPattern::standard_set();
        assert_eq!(set.len(), 12);
        let mut names: Vec<&str> = set.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn apply_orders_phases_and_add_priorities() {
        let (dag, ids) = mixed_dag();
        let p = SchedPattern {
            name: "DEL_MOD_ASCEND_ADD".into(),
            phases: [ReqOp::Del, ReqOp::Mod, ReqOp::Add],
            add_order: AddOrder::Ascending,
        };
        let ordered = p.apply(&dag, &ids);
        // del (id 3), mod (id 2), adds ascending priority: 10, 20, 30.
        assert_eq!(ordered, vec![ids[3], ids[2], ids[1], ids[4], ids[0]]);
        let desc = SchedPattern {
            add_order: AddOrder::Descending,
            ..p
        };
        let ordered = desc.apply(&dag, &ids);
        assert_eq!(&ordered[2..], &[ids[0], ids[4], ids[1]]);
    }

    #[test]
    fn oracle_picks_del_first_ascending_for_hardware() {
        // The default (conservative, shift-sensitive) latency profile
        // must steer the oracle to deletes-before-adds with ascending
        // add order.
        let db = TangoDb::new();
        let (dag, ids) = mixed_dag();
        let (ordered, name) = ordering_tango_oracle(&db, &dag, &ids);
        assert!(name.contains("ASCEND"), "chose {name}");
        // The delete comes before every add.
        let del_pos = ordered.iter().position(|&i| i == ids[3]).unwrap();
        for add in [ids[0], ids[1], ids[4]] {
            let add_pos = ordered.iter().position(|&i| i == add).unwrap();
            assert!(del_pos < add_pos, "delete must precede adds ({name})");
        }
    }

    #[test]
    fn scores_penalize_descending_adds() {
        let db = TangoDb::new();
        let (dag, ids) = mixed_dag();
        let asc = SchedPattern {
            name: "a".into(),
            phases: [ReqOp::Del, ReqOp::Mod, ReqOp::Add],
            add_order: AddOrder::Ascending,
        };
        let desc = SchedPattern {
            name: "d".into(),
            add_order: AddOrder::Descending,
            ..asc.clone()
        };
        assert!(pattern_score(&db, &dag, &ids, &asc) > pattern_score(&db, &dag, &ids, &desc));
    }

    #[test]
    fn empty_set_scores_zero_and_orders_empty() {
        let db = TangoDb::new();
        let dag = RequestDag::new();
        let (ordered, _) = ordering_tango_oracle(&db, &dag, &[]);
        assert!(ordered.is_empty());
        let p = &SchedPattern::standard_set()[0];
        assert_eq!(pattern_score(&db, &dag, &[], p), 0.0);
    }
}

#[cfg(test)]
mod paper_example_tests {
    use super::*;
    use crate::dag::RequestDag;
    use crate::request::ReqOp;

    /// The §6 worked example, end to end: Fig 7's first independent set
    /// is {A, E, H, I}; pattern 1 (ascending adds) scores −91, pattern 2
    /// (descending adds) −171, so the oracle picks pattern 1.
    #[test]
    fn fig7_worked_example_scores() {
        let (dag, ids) = RequestDag::fig7_example();
        let indep = dag.independent_set();
        // A, E, H, I in label order [A,B,C,E,F,G,H,I,J].
        assert_eq!(indep, vec![ids[0], ids[3], ids[6], ids[7]]);
        // One DEL (H), one MOD (E), two ADDs (A, I).
        let ops: Vec<ReqOp> = indep.iter().map(|&i| dag.node(i).op).collect();
        assert_eq!(ops.iter().filter(|&&o| o == ReqOp::Del).count(), 1);
        assert_eq!(ops.iter().filter(|&&o| o == ReqOp::Mod).count(), 1);
        assert_eq!(ops.iter().filter(|&&o| o == ReqOp::Add).count(), 2);
        let p1 = pattern_score_paper_weights(&dag, &indep, AddOrder::Ascending);
        let p2 = pattern_score_paper_weights(&dag, &indep, AddOrder::Descending);
        assert_eq!(p1, -91.0);
        assert_eq!(p2, -171.0);
        assert!(p1 > p2, "the scheduler picks the first pattern");
    }

    #[test]
    fn fig7_longest_paths_match_the_figure() {
        let (dag, ids) = RequestDag::fig7_example();
        let lp = dag.longest_path_lengths();
        // A, E, H, I all sit on paths of the same longest length — the
        // situation §6 says the Tango patterns disambiguate.
        assert_eq!(lp[ids[0].0], 2); // A→B→C
        assert_eq!(lp[ids[3].0], 2); // E→F→G
        assert_eq!(lp[ids[6].0], 2); // H→F→G
                                     // I→G is one hop, but I also precedes J: the figure draws I in
                                     // the same frontier.
        assert_eq!(lp[ids[7].0], 1);
    }
}
