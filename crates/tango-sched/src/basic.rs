//! The Basic Tango Scheduler (Algorithm 3) and the evaluation arms of
//! Figs 10–12.
//!
//! * **Dionysus** — online critical-path dispatch, ack-released,
//!   oblivious to per-op-type costs and priority ordering.
//! * **Tango (Type)** — online dispatch ordering each switch's released
//!   requests deletes → mods → adds, with the guard-time release
//!   extension.
//! * **Tango (Type + Priority)** — additionally sorts adds in ascending
//!   priority.
//! * [`run_basic_tango`] — the batched Algorithm 3 loop verbatim (used
//!   where the paper's batch-oriented description applies directly).

use crate::dag::{NodeId, RequestDag};
use crate::executor::{execute_batched, execute_with, ExecReport, Release};
use crate::patterns::{ordering_tango_oracle, AddOrder, SchedPattern};
use crate::request::ReqOp;
use crate::schedulers::{resolve, TangoScheduler};
use simnet::time::SimDuration;
use switchsim::harness::Testbed;
use tango::db::TangoDb;

/// Which Tango optimizations are active (the Fig 10 arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TangoMode {
    /// Rule-type phases only; adds stay in submission order.
    TypeOnly,
    /// Rule-type phases plus ascending-priority add sorting.
    TypeAndPriority,
}

/// The default guard interval for Tango's concurrent-dispatch extension
/// (§6): comfortably above the per-op cost estimation error, far below
/// an ack round trip.
#[must_use]
pub fn default_guard() -> SimDuration {
    SimDuration::from_micros(50)
}

/// Runs the Basic Tango Scheduler (Algorithm 3, batched) over the DAG.
///
/// The evaluation arms run generated, known-acyclic workloads, so
/// dispatch errors (which only arise from malformed DAGs or a broken
/// oracle) are treated as bugs here rather than propagated.
pub fn run_basic_tango(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
    mode: TangoMode,
) -> ExecReport {
    let report = match mode {
        TangoMode::TypeAndPriority => {
            let mut oracle = |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| {
                ordering_tango_oracle(db, dag, set)
            };
            execute_batched(tb, dag, db, &mut oracle)
        }
        TangoMode::TypeOnly => {
            let pattern = SchedPattern {
                name: "DEL_MOD_GIVEN_ADD".into(),
                phases: [ReqOp::Del, ReqOp::Mod, ReqOp::Add],
                add_order: AddOrder::AsGiven,
            };
            let mut oracle = move |_db: &TangoDb, dag: &RequestDag, set: &[NodeId]| {
                (pattern.apply(dag, set), pattern.name.clone())
            };
            execute_batched(tb, dag, db, &mut oracle)
        }
    };
    report.expect("evaluation workloads are acyclic")
}

/// Runs one registered scheduler by name with its registry release rule.
fn run_registered(tb: &mut Testbed, dag: &mut RequestDag, name: &str) -> ExecReport {
    let entry = resolve(name).expect("registered scheduler");
    let mut sched = entry.build();
    execute_with(tb, dag, &TangoDb::new(), sched.as_mut(), entry.release)
        .expect("evaluation workloads are acyclic")
}

/// Runs Tango's online dispatcher with the guard-time extension — the
/// configuration used for the network-wide comparisons.
pub fn run_tango_online(tb: &mut Testbed, dag: &mut RequestDag, mode: TangoMode) -> ExecReport {
    let name = match mode {
        TangoMode::TypeOnly => "tango-type",
        TangoMode::TypeAndPriority => "tango",
    };
    run_registered(tb, dag, name)
}

/// Runs the Dionysus baseline: online critical-path dispatch with
/// ack-released dependencies, no awareness of op-type or priority-order
/// costs.
pub fn run_dionysus(tb: &mut Testbed, dag: &mut RequestDag) -> ExecReport {
    run_registered(tb, dag, "dionysus")
}

/// Runs Tango's full online configuration with an explicit guard (used
/// by the guard-time ablation).
pub fn run_tango_guarded(tb: &mut Testbed, dag: &mut RequestDag, guard: SimDuration) -> ExecReport {
    let mut sched = TangoScheduler::type_and_priority();
    execute_with(tb, dag, &TangoDb::new(), &mut sched, Release::Guard(guard))
        .expect("evaluation workloads are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;
    use ofwire::types::Dpid;
    use simnet::rng::DetRng;
    use switchsim::profiles::SwitchProfile;

    /// A flat (dependency-free) workload of adds with scattered
    /// priorities plus some mods and dels — the situation where pattern
    /// ordering pays.
    fn flat_workload(n_adds: usize, n_mods: usize, n_dels: usize) -> RequestDag {
        let mut dag = RequestDag::new();
        let mut rng = DetRng::new(3);
        // Pre-existing rules to modify/delete occupy ids 0..n_mods+n_dels.
        for i in 0..n_mods {
            dag.add_node(ReqElem::modify(
                Dpid(1),
                FlowMatch::l3_for_id(i as u32),
                500,
                2,
            ));
        }
        for i in 0..n_dels {
            dag.add_node(ReqElem::delete(
                Dpid(1),
                FlowMatch::l3_for_id((n_mods + i) as u32),
                3500,
            ));
        }
        let mut prios: Vec<u16> = (0..n_adds).map(|i| 1000 + i as u16).collect();
        rng.shuffle(&mut prios);
        for (i, p) in prios.into_iter().enumerate() {
            dag.add_node(ReqElem::add(
                Dpid(1),
                FlowMatch::l3_for_id((10_000 + i) as u32),
                p,
                1,
            ));
        }
        dag
    }

    fn testbed_with_preinstalled(n_mods: usize, n_dels: usize, extra: usize) -> Testbed {
        let mut tb = Testbed::new(8);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut fms: Vec<ofwire::flow_mod::FlowMod> = Vec::new();
        for i in 0..n_mods {
            fms.push(ofwire::flow_mod::FlowMod::add(
                FlowMatch::l3_for_id(i as u32),
                500,
            ));
        }
        for i in 0..n_dels {
            fms.push(ofwire::flow_mod::FlowMod::add(
                FlowMatch::l3_for_id((n_mods + i) as u32),
                3500,
            ));
        }
        let mut rng = DetRng::new(5);
        for i in 0..extra {
            fms.push(ofwire::flow_mod::FlowMod::add(
                FlowMatch::l3_for_id((100_000 + i) as u32),
                500 + rng.index(100) as u16,
            ));
        }
        tb.batch(Dpid(1), fms);
        tb
    }

    #[test]
    fn tango_beats_dionysus_on_hardware() {
        let run = |which: &str| {
            let mut tb = testbed_with_preinstalled(50, 50, 50);
            let mut dag = flat_workload(200, 50, 50);
            match which {
                "dionysus" => run_dionysus(&mut tb, &mut dag).makespan,
                "type" => run_tango_online(&mut tb, &mut dag, TangoMode::TypeOnly).makespan,
                _ => run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority).makespan,
            }
        };
        let dionysus = run("dionysus");
        let tango_t = run("type");
        let tango_tp = run("full");
        assert!(
            tango_tp.as_millis_f64() < dionysus.as_millis_f64(),
            "tango {tango_tp} should beat dionysus {dionysus}"
        );
        assert!(
            tango_tp.as_millis_f64() <= tango_t.as_millis_f64() * 1.02,
            "priority sorting ({tango_tp}) should not lose to type-only ({tango_t})"
        );
    }

    #[test]
    fn batched_algorithm3_also_beats_dionysus_on_flat_dags() {
        let run_batched = || {
            let mut tb = testbed_with_preinstalled(50, 50, 50);
            let mut dag = flat_workload(300, 0, 0);
            let db = TangoDb::new();
            run_basic_tango(&mut tb, &mut dag, &db, TangoMode::TypeAndPriority).makespan
        };
        let run_dio = || {
            let mut tb = testbed_with_preinstalled(50, 50, 50);
            let mut dag = flat_workload(300, 0, 0);
            run_dionysus(&mut tb, &mut dag).makespan
        };
        let batched = run_batched();
        let dio = run_dio();
        assert!(
            batched.as_millis_f64() < dio.as_millis_f64(),
            "batched tango {batched} vs dionysus {dio}"
        );
    }

    #[test]
    fn all_arms_reach_the_same_final_state() {
        let final_count = |which: &str| {
            let mut tb = testbed_with_preinstalled(20, 20, 60);
            let mut dag = flat_workload(50, 20, 20);
            let db = TangoDb::new();
            match which {
                "dionysus" => run_dionysus(&mut tb, &mut dag),
                "type" => run_tango_online(&mut tb, &mut dag, TangoMode::TypeOnly),
                "batched" => run_basic_tango(&mut tb, &mut dag, &db, TangoMode::TypeAndPriority),
                _ => run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority),
            };
            tb.switch(Dpid(1)).rule_count()
        };
        let a = final_count("dionysus");
        let b = final_count("type");
        let c = final_count("full");
        let d = final_count("batched");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(c, d);
        // 100 preinstalled − 20 deleted + 50 added.
        assert_eq!(a, 130);
    }
}
