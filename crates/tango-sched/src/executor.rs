//! Executes a scheduled request DAG against a control path and measures
//! the makespan — the number every network-wide figure (Figs 10–12)
//! reports.
//!
//! One event-driven dispatcher, [`execute`], parameterized by a
//! [`ReleasePolicy`]:
//!
//! * [`ReleasePolicy::RoundBarrier`] — Algorithm 3's loop: extract the
//!   independent set, order it with an oracle, issue the whole batch,
//!   wait for every ack, repeat.
//! * [`ReleasePolicy::PerEdge`] — online dispatch: each switch runs its
//!   own queue; whenever a switch comes free, the dispatcher picks its
//!   next request among the *currently released* ones according to a
//!   pluggable [`Scheduler`] resolved from the portfolio registry
//!   ([`crate::schedulers`]) — Dionysus' critical-path rule, Tango's
//!   pattern ordering (deletes before mods before adds, optionally
//!   ascending-priority adds), or any classical DAG scheduler.
//!   Successors are released either when the predecessor's ack arrives,
//!   or — Tango's concurrent-dispatch extension (§6) — at the
//!   predecessor's predicted completion plus a guard interval.
//!
//! The online core ([`execute_with`]) is sub-quadratic in DAG size: each
//! switch keeps its released requests in an ordered set keyed by the
//! scheduler's [`SchedKey`] (computed once, when the request joins the
//! ready frontier) plus a release-time-ordered set of not-yet-released
//! ones, so every dispatch decision is a `first()`/`pop_first()` rather
//! than a scan-and-sort of the whole frontier.
//!
//! [`execute_batched`] and [`execute_online`] are thin wrappers that
//! build the corresponding policy. All entry points report malformed
//! inputs as typed [`ExecError`]s instead of panicking.

use crate::dag::{NodeId, RequestDag};
use crate::request::Deadline;
use crate::schedulers::{CriticalPathScheduler, SchedKey, Scheduler, TangoScheduler};
use ofwire::types::Dpid;
use simnet::telemetry::TRACK_SCHEDULER;
use simnet::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use switchsim::control::{Completion, ControlOp, ControlPath, OpResult, OpToken};
use switchsim::harness::Testbed;
use tango::db::TangoDb;

/// The outcome of executing a DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Time from first issue to last completion.
    pub makespan: SimDuration,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests rejected by a switch (table full).
    pub failed: usize,
    /// Requests whose `install_by` deadline passed before they
    /// completed (§6's deadline field; best-effort requests never miss).
    pub deadline_misses: usize,
    /// For round-barrier execution: (pattern name, batch size) per round.
    pub rounds: Vec<(String, usize)>,
    /// Every request in dispatch (issue) order — the order the proptest
    /// oracle checks against the DAG's dependency edges.
    pub issued: Vec<NodeId>,
    /// Total flowtime: the sum over all requests of (completion −
    /// execution start). Discriminates dispatch orders even when the
    /// switches are saturated and every order yields the same makespan.
    pub flowtime: SimDuration,
}

impl ExecReport {
    /// Mean per-request completion latency in seconds — the sweep's
    /// ordering-quality measure.
    #[must_use]
    pub fn mean_completion_s(&self) -> f64 {
        let n = self.completed + self.failed;
        if n == 0 {
            0.0
        } else {
            self.flowtime.as_secs_f64() / n as f64
        }
    }
}

/// A malformed execution input, detected while dispatching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The DAG has unfinished requests but an empty independent set — a
    /// dependency cycle.
    StuckDag,
    /// A round-barrier oracle returned something other than a
    /// permutation of the independent set it was handed.
    OracleMismatch {
        /// Size of the independent set given to the oracle.
        expected: usize,
        /// Size of the ordering it returned.
        got: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StuckDag => {
                write!(f, "request DAG is stuck: unfinished requests but no independent set (cycle?)")
            }
            ExecError::OracleMismatch { expected, got } => write!(
                f,
                "ordering oracle must permute the independent set: expected {expected} requests, got {got}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Whether a request completing `elapsed` after submission missed its
/// deadline.
fn missed_deadline(deadline: Deadline, elapsed: SimDuration) -> bool {
    match deadline {
        Deadline::BestEffort => false,
        Deadline::WithinMs(ms) => elapsed.as_millis_f64() > ms,
    }
}

/// Orders one independent set; returns the issue order plus a label.
pub type OrderingFn<'a> = dyn FnMut(&TangoDb, &RequestDag, &[NodeId]) -> (Vec<NodeId>, String) + 'a;

/// How the online dispatcher picks among released requests. Each
/// discipline is now a named entry in the scheduler portfolio
/// ([`crate::schedulers::registry`]); this enum survives as the stable
/// shorthand for the three original policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Dionysus: longest critical path first, oblivious to op types and
    /// priority order.
    CriticalPath,
    /// Tango rule-type pattern: deletes, then mods, then adds — adds in
    /// submission order.
    TangoTypeOnly,
    /// Tango rule-type + priority pattern: adds additionally sorted in
    /// ascending priority.
    TangoTypePriority,
}

impl Discipline {
    /// The portfolio scheduler implementing this discipline.
    #[must_use]
    pub fn scheduler(self) -> Box<dyn Scheduler> {
        match self {
            Discipline::CriticalPath => Box::new(CriticalPathScheduler::new()),
            Discipline::TangoTypeOnly => Box::new(TangoScheduler::type_only()),
            Discipline::TangoTypePriority => Box::new(TangoScheduler::type_and_priority()),
        }
    }
}

/// When a successor is released after its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Release {
    /// Wait for the predecessor's ack round trip (the safe default).
    Ack,
    /// Tango's guard-time extension: release at the predecessor's
    /// completion plus a guard interval, skipping the return latency.
    Guard(SimDuration),
}

/// How the unified dispatcher releases requests onto the control path.
pub enum ReleasePolicy<'o, 'a> {
    /// Algorithm 3: issue the oracle-ordered independent set as one
    /// barriered round; the next round is released when the whole round
    /// has acked.
    RoundBarrier {
        /// Inferred switch properties consulted by the oracle.
        db: &'a TangoDb,
        /// The ordering oracle for each round.
        order: &'o mut OrderingFn<'a>,
        /// When `false`, the oracle must return a permutation of the set
        /// it was handed (Algorithm 3 verbatim); when `true`, it may
        /// issue only a prefix, leaving the rest for later rounds
        /// (the lookahead extension).
        partial: bool,
    },
    /// Online dispatch: every completion releases its successors
    /// individually (by ack or guard time) and each idle switch picks
    /// its next request by `discipline` the moment one is available.
    PerEdge {
        /// Tie-breaking rule among a switch's released requests.
        discipline: Discipline,
        /// When successors become issuable after a predecessor.
        release: Release,
    },
}

/// Running tallies shared by both release policies.
#[derive(Default)]
struct Stats {
    completed: usize,
    failed: usize,
    deadline_misses: usize,
    flowtime: SimDuration,
}

impl Stats {
    fn record(&mut self, c: &Completion, deadline: Deadline, start: SimTime) {
        match c.result() {
            OpResult::Ok => self.completed += 1,
            OpResult::TableFull => self.failed += 1,
        }
        if missed_deadline(deadline, c.done_at.since(start)) {
            self.deadline_misses += 1;
        }
        self.flowtime += c.done_at.since(start);
    }
}

/// Runs the unified event-driven dispatcher over the DAG.
pub fn execute(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    policy: ReleasePolicy<'_, '_>,
) -> Result<ExecReport, ExecError> {
    match policy {
        ReleasePolicy::RoundBarrier { db, order, partial } => {
            run_round_barrier(tb, dag, db, order, partial)
        }
        ReleasePolicy::PerEdge {
            discipline,
            release,
        } => {
            // The disciplines ignore the property database, so the
            // wrapper can hand the core an empty one.
            let mut sched = discipline.scheduler();
            run_scheduled(tb, dag, &TangoDb::new(), sched.as_mut(), release)
        }
    }
}

/// Runs the online dispatcher under an explicit portfolio [`Scheduler`]
/// — the entry point the scheduler sweep and registry users call.
pub fn execute_with(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
    sched: &mut dyn Scheduler,
    release: Release,
) -> Result<ExecReport, ExecError> {
    run_scheduled(tb, dag, db, sched, release)
}

/// Round-barrier dispatch (Algorithm 3, optionally with prefix rounds).
fn run_round_barrier(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
    order: &mut OrderingFn<'_>,
    partial: bool,
) -> Result<ExecReport, ExecError> {
    let start = tb.now();
    let exec_span = tb
        .telemetry()
        .span_begin(TRACK_SCHEDULER, "execute_rounds", start);
    let mut frontier: SimTime = start;
    let mut stats = Stats::default();
    let mut rounds = Vec::new();
    let mut issued = Vec::with_capacity(dag.len());
    while !dag.all_done() {
        let set = dag.independent_set();
        if set.is_empty() {
            tb.telemetry().span_cancel(exec_span);
            return Err(ExecError::StuckDag);
        }
        let (ordered, label) = order(db, dag, &set);
        if !partial && ordered.len() != set.len() {
            tb.telemetry().span_cancel(exec_span);
            return Err(ExecError::OracleMismatch {
                expected: set.len(),
                got: ordered.len(),
            });
        }
        rounds.push((label, ordered.len()));
        let round_span = tb
            .telemetry()
            .span_begin(TRACK_SCHEDULER, "round", frontier);
        tb.telemetry().count("sched/rounds", 1);
        tb.telemetry().count("sched/issued", ordered.len() as u64);
        // Issue the whole round at the frontier; every op's wire frames
        // and latencies are fixed at submit time, then the event core
        // interleaves all switches' processing in virtual time.
        let submitted: Vec<(OpToken, Deadline)> = ordered
            .iter()
            .map(|&id| {
                let req = dag.node(id);
                let token = tb.submit(
                    req.location,
                    ControlOp::FlowMod(req.to_flow_mod()),
                    frontier,
                );
                (token, req.install_by)
            })
            .collect();
        let mut batch_end = frontier;
        for (token, deadline) in submitted {
            let c = tb.wait_for(token);
            stats.record(&c, deadline, start);
            batch_end = batch_end.max(c.acked_at);
        }
        for id in ordered {
            dag.mark_done(id);
            issued.push(id);
        }
        frontier = batch_end;
        tb.telemetry().span_end(round_span, frontier);
    }
    tb.warp_to(frontier.max(tb.now()));
    tb.telemetry().span_end(exec_span, frontier.max(start));
    Ok(ExecReport {
        makespan: frontier.since(start),
        completed: stats.completed,
        failed: stats.failed,
        deadline_misses: stats.deadline_misses,
        rounds,
        issued,
        flowtime: stats.flowtime,
    })
}

/// A request issued onto the control path whose completion has not been
/// processed yet.
struct InFlight {
    /// The node behind the op (reported back to the scheduler).
    node: NodeId,
    /// Dense index of the switch the op occupies.
    sw: u32,
    deadline: Deadline,
    /// Successor nodes captured at issue time (`mark_done` forgets
    /// edges).
    succs: Vec<NodeId>,
}

/// In-flight requests filed in a flat ring over token sequence numbers
/// (dense per control path — see [`OpToken::seq`]): insert and remove
/// are array accesses, and the drained front compacts away as
/// completions arrive.
#[derive(Default)]
struct InFlightRing {
    /// Sequence number of `slots[0]`; fixed by the first insert.
    base: Option<u64>,
    slots: VecDeque<Option<InFlight>>,
    live: usize,
}

impl InFlightRing {
    fn insert(&mut self, token: OpToken, fl: InFlight) {
        let base = *self.base.get_or_insert(token.seq());
        let off = usize::try_from(token.seq() - base).expect("token offset fits usize");
        while self.slots.len() <= off {
            self.slots.push_back(None);
        }
        debug_assert!(self.slots[off].is_none(), "token filed twice");
        self.slots[off] = Some(fl);
        self.live += 1;
    }

    fn remove(&mut self, token: OpToken) -> Option<InFlight> {
        let base = self.base?;
        let off = usize::try_from(token.seq().checked_sub(base)?).ok()?;
        let fl = self.slots.get_mut(off)?.take()?;
        self.live -= 1;
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base = Some(self.base.expect("base set while compacting") + 1);
        }
        Some(fl)
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// One switch's dispatch queue: requests whose keys are final, split by
/// whether their release instant has passed.
#[derive(Default)]
struct SwitchQueue {
    /// Released requests, best key first.
    released: BTreeSet<(SchedKey, NodeId)>,
    /// Not-yet-released requests, earliest release first.
    future: BTreeSet<(SimTime, SchedKey, NodeId)>,
}

impl SwitchQueue {
    /// Moves every request released by `t` into the released set.
    fn release_due(&mut self, t: SimTime) {
        while let Some(&(rel, key, id)) = self.future.first() {
            if rel > t {
                break;
            }
            self.future.remove(&(rel, key, id));
            self.released.insert((key, id));
        }
    }
}

/// Scheduler-driven online dispatch — the per-edge core.
///
/// A node's key is computed exactly once, when its last predecessor's
/// completion is processed (so its release time is final), and the node
/// drops into its switch's queue. Dispatch then never rescans the
/// frontier: each decision pops the best key of the chosen switch.
fn run_scheduled(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
    sched: &mut dyn Scheduler,
    release: Release,
) -> Result<ExecReport, ExecError> {
    let start = tb.now();
    let exec_span = tb.telemetry().span_begin(TRACK_SCHEDULER, "execute", start);
    sched.prepare(dag, db);
    let n = dag.len();
    // Dense switch wiring: the DAG's distinct dpids in sorted order, and
    // every node's switch resolved to a `u32` index once — the dispatch
    // loop below never touches a map. Index order equals dpid order, so
    // tie-breaks by index reproduce the old tie-breaks by dpid exactly.
    let dpids: Vec<Dpid> = (0..n)
        .map(|u| dag.node(NodeId(u)).location)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let sw_of: BTreeMap<Dpid, u32> = dpids
        .iter()
        .enumerate()
        .map(|(i, &d)| (d, u32::try_from(i).expect("switch count fits u32")))
        .collect();
    let node_sw: Vec<u32> = (0..n)
        .map(|u| sw_of[&dag.node(NodeId(u)).location])
        .collect();
    // Release time per node: the max of its predecessors' release
    // instants (ack arrival or guarded completion). A node is issuable
    // once every predecessor's completion has been observed, so its
    // release time is final.
    let mut released_at: Vec<SimTime> = vec![start; n];
    let mut preds_pending: Vec<usize> = (0..n).map(|u| dag.predecessors(NodeId(u)).len()).collect();
    let mut queues: Vec<SwitchQueue> = dpids.iter().map(|_| SwitchQueue::default()).collect();
    for (u, &pending) in preds_pending.iter().enumerate() {
        let id = NodeId(u);
        if pending == 0 && !dag.is_done(id) {
            let key = sched.key(dag, id, start);
            queues[node_sw[u] as usize].released.insert((key, id));
        }
    }
    let mut inflight = InFlightRing::default();
    let mut busy: Vec<bool> = vec![false; queues.len()];
    let mut stats = Stats::default();
    let mut last_done = start;
    let mut issued: Vec<NodeId> = Vec::with_capacity(n);

    // Issues the best issuable request for every idle switch. `now` is
    // the dispatcher's decision instant.
    let issue_idle = |tb: &mut Testbed,
                      dag: &mut RequestDag,
                      queues: &mut Vec<SwitchQueue>,
                      inflight: &mut InFlightRing,
                      busy: &mut Vec<bool>,
                      issued: &mut Vec<NodeId>| {
        let now = ControlPath::now(tb);
        for q in queues.iter_mut() {
            q.release_due(now);
        }
        // Frontier width is an O(switches) sum, so only pay for it when a
        // recorder is attached.
        if tb.telemetry().is_enabled() {
            let frontier: usize = queues.iter().map(|q| q.released.len()).sum();
            tb.telemetry()
                .observe("sched/ready_frontier", frontier as f64);
        }
        loop {
            // Pick the idle switch that can start work earliest: `now`
            // if it has a released request, else its earliest future
            // release. Ties break by switch index (= dpid order), then
            // key within the switch.
            let mut best: Option<(SimTime, usize)> = None;
            for (i, q) in queues.iter().enumerate() {
                if busy[i] {
                    continue;
                }
                let cand = if q.released.is_empty() {
                    q.future.first().map(|&(t, _, _)| t)
                } else {
                    Some(now)
                };
                if let Some(t) = cand {
                    if best.is_none_or(|b| (t, i) < b) {
                        best = Some((t, i));
                    }
                }
            }
            let Some((start_time, sw)) = best else {
                break;
            };
            let q = &mut queues[sw];
            // Everything released by the start instant competes (when
            // the switch idles until a future release, requests due by
            // then are eligible too).
            q.release_due(start_time);
            let (_, id) = q.released.pop_first().expect("candidate has a request");
            let req = dag.node(id);
            let token = tb.submit(
                req.location,
                ControlOp::FlowMod(req.to_flow_mod()),
                start_time,
            );
            inflight.insert(
                token,
                InFlight {
                    node: id,
                    sw: u32::try_from(sw).expect("switch count fits u32"),
                    deadline: req.install_by,
                    succs: dag.successors(id).to_vec(),
                },
            );
            busy[sw] = true;
            dag.mark_done(id);
            issued.push(id);
            tb.telemetry().count("sched/issued", 1);
        }
    };

    while !dag.all_done() || !inflight.is_empty() {
        issue_idle(tb, dag, &mut queues, &mut inflight, &mut busy, &mut issued);
        let Some(c) = tb.next_completion() else {
            // Nothing in flight and nothing issuable, yet the DAG has
            // unfinished requests: a dependency cycle.
            tb.telemetry().span_cancel(exec_span);
            return Err(ExecError::StuckDag);
        };
        let fl = inflight
            .remove(c.token)
            .expect("completion for an op this dispatcher issued");
        stats.record(&c, fl.deadline, start);
        last_done = last_done.max(c.done_at);
        busy[fl.sw as usize] = false;
        let rel = match release {
            Release::Ack => {
                tb.telemetry().count("sched/ack_releases", 1);
                c.acked_at
            }
            Release::Guard(g) => {
                tb.telemetry().count("sched/guard_releases", 1);
                c.done_at + g
            }
        };
        // The scheduler observes the completion before the nodes it
        // releases are keyed (dynamic schedulers update state here).
        sched.on_completion(dag, fl.node);
        for s in fl.succs {
            preds_pending[s.0] -= 1;
            released_at[s.0] = released_at[s.0].max(rel);
            if preds_pending[s.0] == 0 {
                let key = sched.key(dag, s, released_at[s.0]);
                queues[node_sw[s.0] as usize]
                    .future
                    .insert((released_at[s.0], key, s));
            }
        }
    }
    tb.warp_to(last_done.max(tb.now()));
    tb.telemetry().span_end(exec_span, last_done.max(start));
    Ok(ExecReport {
        makespan: last_done.since(start),
        completed: stats.completed,
        failed: stats.failed,
        deadline_misses: stats.deadline_misses,
        rounds: Vec::new(),
        issued,
        flowtime: stats.flowtime,
    })
}

/// Runs the batched (Algorithm 3) discipline — a thin wrapper over
/// [`execute`] with a [`ReleasePolicy::RoundBarrier`] policy.
pub fn execute_batched(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
    order: &mut OrderingFn<'_>,
) -> Result<ExecReport, ExecError> {
    execute(
        tb,
        dag,
        ReleasePolicy::RoundBarrier {
            db,
            order,
            partial: false,
        },
    )
}

/// Runs the online dispatcher — a thin wrapper over [`execute`] with a
/// [`ReleasePolicy::PerEdge`] policy.
pub fn execute_online(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    discipline: Discipline,
    release: Release,
) -> Result<ExecReport, ExecError> {
    execute(
        tb,
        dag,
        ReleasePolicy::PerEdge {
            discipline,
            release,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ordering_tango_oracle;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;
    use switchsim::profiles::SwitchProfile;

    fn chain_dag(dpid: Dpid, len: usize) -> RequestDag {
        let mut dag = RequestDag::new();
        let ids: Vec<NodeId> = (0..len)
            .map(|i| {
                dag.add_node(ReqElem::add(
                    dpid,
                    FlowMatch::l3_for_id(i as u32),
                    10 + i as u16,
                    1,
                ))
            })
            .collect();
        for w in ids.windows(2) {
            dag.add_dep(w[0], w[1]);
        }
        dag
    }

    fn testbed() -> Testbed {
        let mut tb = Testbed::new(4);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::vendor1());
        tb
    }

    #[test]
    fn batched_executes_whole_dag() {
        let mut tb = testbed();
        let mut dag = chain_dag(Dpid(1), 5);
        let db = TangoDb::new();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        let report = execute_batched(&mut tb, &mut dag, &db, &mut oracle).unwrap();
        assert!(dag.all_done());
        assert_eq!(report.completed, 5);
        assert_eq!(report.failed, 0);
        // A 5-chain forces 5 single-element rounds.
        assert_eq!(report.rounds.len(), 5);
        assert!(report.makespan > SimDuration::ZERO);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 5);
    }

    #[test]
    fn online_executes_whole_dag() {
        let mut tb = testbed();
        let mut dag = chain_dag(Dpid(1), 5);
        let report =
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack).unwrap();
        assert!(dag.all_done());
        assert_eq!(report.completed, 5);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 5);
    }

    #[test]
    fn oracle_mismatch_is_a_typed_error() {
        let mut tb = testbed();
        let mut dag = chain_dag(Dpid(1), 3);
        let db = TangoDb::new();
        // A broken oracle that drops every other element.
        let mut oracle = |_db: &TangoDb, _dag: &RequestDag, set: &[NodeId]| {
            (
                set.iter().copied().step_by(2).collect(),
                "broken".to_string(),
            )
        };
        // The first round has one element so step_by(2) keeps it; grow
        // the independent set to surface the mismatch immediately.
        let mut flat = RequestDag::new();
        for i in 0..4u32 {
            flat.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(i), 10, 1));
        }
        let err = execute_batched(&mut tb, &mut flat, &db, &mut oracle).unwrap_err();
        assert_eq!(
            err,
            ExecError::OracleMismatch {
                expected: 4,
                got: 2
            }
        );
        let _ = &mut dag;
    }

    #[test]
    fn guard_time_beats_ack_waiting_on_chains() {
        let run = |release| {
            let mut tb = testbed();
            let mut dag = chain_dag(Dpid(1), 40);
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, release)
                .unwrap()
                .makespan
        };
        let with_ack = run(Release::Ack);
        let with_guard = run(Release::Guard(SimDuration::from_micros(50)));
        assert!(
            with_guard < with_ack,
            "guard {with_guard} should beat ack-wait {with_ack}"
        );
    }

    #[test]
    fn tango_discipline_orders_adds_ascending() {
        // A flat set of adds with shuffled priorities on one switch: the
        // Tango discipline must beat critical-path (submission) order.
        let build = || {
            let mut dag = RequestDag::new();
            let mut prios: Vec<u16> = (0..150u16).map(|i| 1000 + i).collect();
            let mut rng = simnet::rng::DetRng::new(5);
            rng.shuffle(&mut prios);
            for (i, p) in prios.into_iter().enumerate() {
                dag.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(i as u32), p, 1));
            }
            dag
        };
        let cp = {
            let mut tb = testbed();
            let mut dag = build();
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack)
                .unwrap()
                .makespan
        };
        let tango = {
            let mut tb = testbed();
            let mut dag = build();
            execute_online(
                &mut tb,
                &mut dag,
                Discipline::TangoTypePriority,
                Release::Ack,
            )
            .unwrap()
            .makespan
        };
        assert!(
            tango.as_millis_f64() < 0.8 * cp.as_millis_f64(),
            "tango {tango} vs critical-path {cp}"
        );
    }

    #[test]
    fn independent_requests_overlap_across_switches() {
        // Two independent 20-chains on two switches: online execution
        // should take ~one chain's time, not two.
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        for (d, base) in [(Dpid(1), 0u32), (Dpid(2), 1000)] {
            let ids: Vec<NodeId> = (0..20)
                .map(|i| {
                    dag.add_node(ReqElem::add(
                        d,
                        FlowMatch::l3_for_id(base + i),
                        10 + i as u16,
                        1,
                    ))
                })
                .collect();
            for w in ids.windows(2) {
                dag.add_dep(w[0], w[1]);
            }
        }
        let both = execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack)
            .unwrap()
            .makespan;

        let mut tb1 = testbed();
        let mut one = chain_dag(Dpid(1), 20);
        let single = execute_online(&mut tb1, &mut one, Discipline::CriticalPath, Release::Ack)
            .unwrap()
            .makespan;
        assert!(
            both.as_millis_f64() < 1.4 * single.as_millis_f64(),
            "two parallel chains ({both}) should cost about one ({single})"
        );
    }

    #[test]
    fn telemetry_records_scheduler_spans_without_changing_timing() {
        let plain = {
            let mut tb = testbed();
            let mut dag = chain_dag(Dpid(1), 5);
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack)
                .unwrap()
                .makespan
        };
        let mut tb = testbed();
        tb.enable_telemetry();
        let mut dag = chain_dag(Dpid(1), 5);
        let report =
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack).unwrap();
        assert_eq!(report.makespan, plain, "telemetry must not perturb timing");
        let rec = tb.finish_recorder().expect("recorder present");
        assert_eq!(rec.counter("sched/issued"), 5);
        assert_eq!(rec.counter("sched/ack_releases"), 5);
        assert!(rec
            .spans()
            .any(|s| s.name == "execute" && s.track == TRACK_SCHEDULER));
        let m = rec.metrics();
        assert!(
            m.hists.iter().any(|(k, _)| k == "sched/ready_frontier"),
            "frontier histogram missing"
        );
    }

    #[test]
    fn telemetry_records_round_spans() {
        let mut tb = testbed();
        tb.enable_telemetry();
        let mut dag = chain_dag(Dpid(1), 3);
        let db = TangoDb::new();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        execute_batched(&mut tb, &mut dag, &db, &mut oracle).unwrap();
        let rec = tb.finish_recorder().expect("recorder present");
        assert_eq!(rec.counter("sched/rounds"), 3);
        assert_eq!(rec.counter("sched/issued"), 3);
        assert_eq!(
            rec.spans()
                .filter(|s| s.name == "round" && s.track == TRACK_SCHEDULER)
                .count(),
            3
        );
    }

    #[test]
    fn batched_respects_dependencies_on_switch_state() {
        // A delete that depends on its own add must find the rule there.
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        let m = FlowMatch::l3_for_id(1);
        let a = dag.add_node(ReqElem::add(Dpid(1), m, 10, 1));
        let d = dag.add_node(ReqElem::delete(Dpid(1), m, 10));
        dag.add_dep(a, d);
        let db = TangoDb::new();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        let report = execute_batched(&mut tb, &mut dag, &db, &mut oracle).unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 0);
    }

    #[test]
    fn online_respects_dependencies() {
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        let m = FlowMatch::l3_for_id(1);
        let a = dag.add_node(ReqElem::add(Dpid(1), m, 10, 1));
        let d = dag.add_node(ReqElem::delete(Dpid(2), m, 10));
        dag.add_dep(a, d);
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypeOnly,
            Release::Guard(SimDuration::from_micros(10)),
        )
        .unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 1);
        assert_eq!(tb.switch(Dpid(2)).rule_count(), 0);
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;
    use crate::request::{Deadline, ReqElem};
    use ofwire::flow_match::FlowMatch;
    use switchsim::profiles::SwitchProfile;

    fn add_with_deadline(dpid: Dpid, id: u32, ms: Option<f64>) -> ReqElem {
        let mut r = ReqElem::add(dpid, FlowMatch::l3_for_id(id), 100 + id as u16, 1);
        r.install_by = match ms {
            None => Deadline::BestEffort,
            Some(ms) => Deadline::WithinMs(ms),
        };
        r
    }

    #[test]
    fn generous_deadlines_are_met() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        for i in 0..20 {
            dag.add_node(add_with_deadline(Dpid(1), i, Some(10_000.0)));
        }
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypePriority,
            Release::Ack,
        )
        .unwrap();
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn impossible_deadlines_are_reported() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        // 50 serialized adds cannot all land within 1 ms.
        for i in 0..50 {
            dag.add_node(add_with_deadline(Dpid(1), i, Some(1.0)));
        }
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypePriority,
            Release::Ack,
        )
        .unwrap();
        assert!(
            report.deadline_misses > 40,
            "misses {}",
            report.deadline_misses
        );
    }

    #[test]
    fn best_effort_never_misses() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        for i in 0..200 {
            dag.add_node(add_with_deadline(Dpid(1), i, None));
        }
        let report =
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack).unwrap();
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn tango_ordering_saves_deadlines() {
        // Shuffled priorities with a tight-but-feasible deadline: the
        // ascending order finishes the batch sooner and misses fewer.
        let run = |discipline| {
            let mut tb = Testbed::new(2);
            tb.attach_default(Dpid(1), SwitchProfile::vendor1());
            let mut dag = RequestDag::new();
            let mut prios: Vec<u16> = (0..150u16).map(|i| 1000 + i).collect();
            simnet::rng::DetRng::new(9).shuffle(&mut prios);
            for (i, p) in prios.iter().enumerate() {
                let mut r = ReqElem::add(Dpid(1), FlowMatch::l3_for_id(i as u32), *p, 1);
                r.install_by = Deadline::WithinMs(80.0);
                dag.add_node(r);
            }
            execute_online(&mut tb, &mut dag, discipline, Release::Ack)
                .unwrap()
                .deadline_misses
        };
        let cp = run(Discipline::CriticalPath);
        let tango = run(Discipline::TangoTypePriority);
        assert!(tango < cp, "tango misses {tango} vs critical-path {cp}");
    }
}
