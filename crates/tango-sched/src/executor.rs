//! Executes a scheduled request DAG against a control path and measures
//! the makespan — the number every network-wide figure (Figs 10–12)
//! reports.
//!
//! One event-driven dispatcher, [`execute`], parameterized by a
//! [`ReleasePolicy`]:
//!
//! * [`ReleasePolicy::RoundBarrier`] — Algorithm 3's loop: extract the
//!   independent set, order it with an oracle, issue the whole batch,
//!   wait for every ack, repeat.
//! * [`ReleasePolicy::PerEdge`] — online dispatch: each switch runs its
//!   own queue; whenever a switch comes free, the dispatcher picks its
//!   next request among the *currently released* ones according to a
//!   [`Discipline`] — Dionysus' critical-path rule, or Tango's pattern
//!   ordering (deletes before mods before adds, optionally
//!   ascending-priority adds). Successors are released either when the
//!   predecessor's ack arrives, or — Tango's concurrent-dispatch
//!   extension (§6) — at the predecessor's predicted completion plus a
//!   guard interval.
//!
//! [`execute_batched`] and [`execute_online`] are thin wrappers that
//! build the corresponding policy. All entry points report malformed
//! inputs as typed [`ExecError`]s instead of panicking.

use crate::dag::{NodeId, RequestDag};
use crate::request::{Deadline, ReqOp};
use ofwire::types::Dpid;
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use switchsim::control::{Completion, ControlOp, ControlPath, OpResult, OpToken};
use switchsim::harness::Testbed;
use tango::db::TangoDb;

/// The outcome of executing a DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Time from first issue to last completion.
    pub makespan: SimDuration,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests rejected by a switch (table full).
    pub failed: usize,
    /// Requests whose `install_by` deadline passed before they
    /// completed (§6's deadline field; best-effort requests never miss).
    pub deadline_misses: usize,
    /// For round-barrier execution: (pattern name, batch size) per round.
    pub rounds: Vec<(String, usize)>,
}

/// A malformed execution input, detected while dispatching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The DAG has unfinished requests but an empty independent set — a
    /// dependency cycle.
    StuckDag,
    /// A round-barrier oracle returned something other than a
    /// permutation of the independent set it was handed.
    OracleMismatch {
        /// Size of the independent set given to the oracle.
        expected: usize,
        /// Size of the ordering it returned.
        got: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StuckDag => {
                write!(f, "request DAG is stuck: unfinished requests but no independent set (cycle?)")
            }
            ExecError::OracleMismatch { expected, got } => write!(
                f,
                "ordering oracle must permute the independent set: expected {expected} requests, got {got}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Whether a request completing `elapsed` after submission missed its
/// deadline.
fn missed_deadline(deadline: Deadline, elapsed: SimDuration) -> bool {
    match deadline {
        Deadline::BestEffort => false,
        Deadline::WithinMs(ms) => elapsed.as_millis_f64() > ms,
    }
}

/// Orders one independent set; returns the issue order plus a label.
pub type OrderingFn<'a> = dyn FnMut(&TangoDb, &RequestDag, &[NodeId]) -> (Vec<NodeId>, String) + 'a;

/// How the online dispatcher picks among released requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Dionysus: longest critical path first, oblivious to op types and
    /// priority order.
    CriticalPath,
    /// Tango rule-type pattern: deletes, then mods, then adds — adds in
    /// submission order.
    TangoTypeOnly,
    /// Tango rule-type + priority pattern: adds additionally sorted in
    /// ascending priority.
    TangoTypePriority,
}

/// When a successor is released after its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Release {
    /// Wait for the predecessor's ack round trip (the safe default).
    Ack,
    /// Tango's guard-time extension: release at the predecessor's
    /// completion plus a guard interval, skipping the return latency.
    Guard(SimDuration),
}

/// How the unified dispatcher releases requests onto the control path.
pub enum ReleasePolicy<'o, 'a> {
    /// Algorithm 3: issue the oracle-ordered independent set as one
    /// barriered round; the next round is released when the whole round
    /// has acked.
    RoundBarrier {
        /// Inferred switch properties consulted by the oracle.
        db: &'a TangoDb,
        /// The ordering oracle for each round.
        order: &'o mut OrderingFn<'a>,
        /// When `false`, the oracle must return a permutation of the set
        /// it was handed (Algorithm 3 verbatim); when `true`, it may
        /// issue only a prefix, leaving the rest for later rounds
        /// (the lookahead extension).
        partial: bool,
    },
    /// Online dispatch: every completion releases its successors
    /// individually (by ack or guard time) and each idle switch picks
    /// its next request by `discipline` the moment one is available.
    PerEdge {
        /// Tie-breaking rule among a switch's released requests.
        discipline: Discipline,
        /// When successors become issuable after a predecessor.
        release: Release,
    },
}

fn class_rank(op: ReqOp) -> u8 {
    match op {
        ReqOp::Del => 0,
        ReqOp::Mod => 1,
        ReqOp::Add => 2,
    }
}

/// Running tallies shared by both release policies.
#[derive(Default)]
struct Stats {
    completed: usize,
    failed: usize,
    deadline_misses: usize,
}

impl Stats {
    fn record(&mut self, c: &Completion, deadline: Deadline, start: SimTime) {
        match c.result() {
            OpResult::Ok => self.completed += 1,
            OpResult::TableFull => self.failed += 1,
        }
        if missed_deadline(deadline, c.done_at.since(start)) {
            self.deadline_misses += 1;
        }
    }
}

/// Runs the unified event-driven dispatcher over the DAG.
pub fn execute(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    policy: ReleasePolicy<'_, '_>,
) -> Result<ExecReport, ExecError> {
    match policy {
        ReleasePolicy::RoundBarrier { db, order, partial } => {
            run_round_barrier(tb, dag, db, order, partial)
        }
        ReleasePolicy::PerEdge {
            discipline,
            release,
        } => run_per_edge(tb, dag, discipline, release),
    }
}

/// Round-barrier dispatch (Algorithm 3, optionally with prefix rounds).
fn run_round_barrier(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
    order: &mut OrderingFn<'_>,
    partial: bool,
) -> Result<ExecReport, ExecError> {
    let start = tb.now();
    let mut frontier: SimTime = start;
    let mut stats = Stats::default();
    let mut rounds = Vec::new();
    while !dag.all_done() {
        let set = dag.independent_set();
        if set.is_empty() {
            return Err(ExecError::StuckDag);
        }
        let (ordered, label) = order(db, dag, &set);
        if !partial && ordered.len() != set.len() {
            return Err(ExecError::OracleMismatch {
                expected: set.len(),
                got: ordered.len(),
            });
        }
        rounds.push((label, ordered.len()));
        // Issue the whole round at the frontier; every op's wire frames
        // and latencies are fixed at submit time, then the event core
        // interleaves all switches' processing in virtual time.
        let submitted: Vec<(OpToken, Deadline)> = ordered
            .iter()
            .map(|&id| {
                let req = dag.node(id);
                let token = tb.submit(
                    req.location,
                    ControlOp::FlowMod(req.to_flow_mod()),
                    frontier,
                );
                (token, req.install_by)
            })
            .collect();
        let mut batch_end = frontier;
        for (token, deadline) in submitted {
            let c = tb.wait_for(token);
            stats.record(&c, deadline, start);
            batch_end = batch_end.max(c.acked_at);
        }
        for id in ordered {
            dag.mark_done(id);
        }
        frontier = batch_end;
    }
    tb.warp_to(frontier.max(tb.now()));
    Ok(ExecReport {
        makespan: frontier.since(start),
        completed: stats.completed,
        failed: stats.failed,
        deadline_misses: stats.deadline_misses,
        rounds,
    })
}

/// A request issued onto the control path whose completion has not been
/// processed yet.
struct InFlight {
    deadline: Deadline,
    /// Successor nodes captured at issue time (`mark_done` forgets
    /// edges).
    succs: Vec<NodeId>,
}

/// Per-edge (online) dispatch.
fn run_per_edge(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    discipline: Discipline,
    release: Release,
) -> Result<ExecReport, ExecError> {
    let start = tb.now();
    let lp = dag.longest_path_lengths();
    let n = dag.len();
    // Release time per node: the max of its predecessors' release
    // instants (ack arrival or guarded completion). A node is issuable
    // once every predecessor has been issued (the DAG's independent set)
    // *and* every predecessor's completion has been observed, so its
    // release time is final.
    let mut released_at: Vec<SimTime> = vec![start; n];
    let mut preds_pending: Vec<usize> = vec![0; n];
    for u in 0..n {
        for &s in dag.successors(NodeId(u)) {
            preds_pending[s.0] += 1;
        }
    }
    let mut inflight: BTreeMap<OpToken, InFlight> = BTreeMap::new();
    let mut busy: BTreeMap<Dpid, bool> = BTreeMap::new();
    let mut stats = Stats::default();
    let mut last_done = start;

    // Issues the best issuable request for every idle switch; returns
    // how many were issued. `now` is the dispatcher's decision instant.
    let issue_idle = |tb: &mut Testbed,
                      dag: &mut RequestDag,
                      inflight: &mut BTreeMap<OpToken, InFlight>,
                      busy: &mut BTreeMap<Dpid, bool>,
                      released_at: &[SimTime],
                      preds_pending: &[usize]|
     -> usize {
        let now = ControlPath::now(tb);
        let mut issued = 0;
        loop {
            let indep = dag.independent_set();
            let issuable: Vec<NodeId> = indep
                .into_iter()
                .filter(|&id| preds_pending[id.0] == 0)
                .collect();
            // Pick the idle switch that can start work earliest.
            let candidate = issuable
                .iter()
                .filter(|&&id| !busy.get(&dag.node(id).location).copied().unwrap_or(false))
                .map(|&id| (now.max(released_at[id.0]), dag.node(id).location))
                .min();
            let Some((start_time, dpid)) = candidate else {
                break;
            };
            // Eligible: this switch's requests already released by then.
            let mut eligible: Vec<NodeId> = issuable
                .into_iter()
                .filter(|&id| dag.node(id).location == dpid && released_at[id.0] <= start_time)
                .collect();
            debug_assert!(!eligible.is_empty());
            // Both schedulers put the longest critical path first (§6:
            // the basic algorithm "schedules the independent request
            // that belongs to the longest path first"); they differ in
            // how ties are broken — and a flat independent set is all
            // ties, which is exactly where the Tango patterns apply.
            eligible.sort_by(|&a, &b| {
                let (ra, rb) = (dag.node(a), dag.node(b));
                let cp = lp[b.0].cmp(&lp[a.0]);
                match discipline {
                    Discipline::CriticalPath => cp
                        .then(released_at[a.0].cmp(&released_at[b.0]))
                        .then(a.0.cmp(&b.0)),
                    Discipline::TangoTypeOnly => cp
                        .then(class_rank(ra.op).cmp(&class_rank(rb.op)))
                        .then(a.0.cmp(&b.0)),
                    Discipline::TangoTypePriority => cp
                        .then(class_rank(ra.op).cmp(&class_rank(rb.op)))
                        .then(ra.effective_priority().cmp(&rb.effective_priority()))
                        .then(a.0.cmp(&b.0)),
                }
            });
            let id = eligible[0];
            let req = dag.node(id);
            let token = tb.submit(
                req.location,
                ControlOp::FlowMod(req.to_flow_mod()),
                start_time,
            );
            inflight.insert(
                token,
                InFlight {
                    deadline: req.install_by,
                    succs: dag.successors(id).to_vec(),
                },
            );
            busy.insert(dpid, true);
            dag.mark_done(id);
            issued += 1;
        }
        issued
    };

    while !dag.all_done() || !inflight.is_empty() {
        issue_idle(
            tb,
            dag,
            &mut inflight,
            &mut busy,
            &released_at,
            &preds_pending,
        );
        let Some(c) = tb.next_completion() else {
            // Nothing in flight and nothing issuable, yet the DAG has
            // unfinished requests: a dependency cycle.
            return Err(ExecError::StuckDag);
        };
        let fl = inflight
            .remove(&c.token)
            .expect("completion for an op this dispatcher issued");
        stats.record(&c, fl.deadline, start);
        last_done = last_done.max(c.done_at);
        busy.insert(c.dpid, false);
        let rel = match release {
            Release::Ack => c.acked_at,
            Release::Guard(g) => c.done_at + g,
        };
        for s in fl.succs {
            preds_pending[s.0] -= 1;
            released_at[s.0] = released_at[s.0].max(rel);
        }
    }
    tb.warp_to(last_done.max(tb.now()));
    Ok(ExecReport {
        makespan: last_done.since(start),
        completed: stats.completed,
        failed: stats.failed,
        deadline_misses: stats.deadline_misses,
        rounds: Vec::new(),
    })
}

/// Runs the batched (Algorithm 3) discipline — a thin wrapper over
/// [`execute`] with a [`ReleasePolicy::RoundBarrier`] policy.
pub fn execute_batched(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
    order: &mut OrderingFn<'_>,
) -> Result<ExecReport, ExecError> {
    execute(
        tb,
        dag,
        ReleasePolicy::RoundBarrier {
            db,
            order,
            partial: false,
        },
    )
}

/// Runs the online dispatcher — a thin wrapper over [`execute`] with a
/// [`ReleasePolicy::PerEdge`] policy.
pub fn execute_online(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    discipline: Discipline,
    release: Release,
) -> Result<ExecReport, ExecError> {
    execute(
        tb,
        dag,
        ReleasePolicy::PerEdge {
            discipline,
            release,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ordering_tango_oracle;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;
    use switchsim::profiles::SwitchProfile;

    fn chain_dag(dpid: Dpid, len: usize) -> RequestDag {
        let mut dag = RequestDag::new();
        let ids: Vec<NodeId> = (0..len)
            .map(|i| {
                dag.add_node(ReqElem::add(
                    dpid,
                    FlowMatch::l3_for_id(i as u32),
                    10 + i as u16,
                    1,
                ))
            })
            .collect();
        for w in ids.windows(2) {
            dag.add_dep(w[0], w[1]);
        }
        dag
    }

    fn testbed() -> Testbed {
        let mut tb = Testbed::new(4);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::vendor1());
        tb
    }

    #[test]
    fn batched_executes_whole_dag() {
        let mut tb = testbed();
        let mut dag = chain_dag(Dpid(1), 5);
        let db = TangoDb::new();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        let report = execute_batched(&mut tb, &mut dag, &db, &mut oracle).unwrap();
        assert!(dag.all_done());
        assert_eq!(report.completed, 5);
        assert_eq!(report.failed, 0);
        // A 5-chain forces 5 single-element rounds.
        assert_eq!(report.rounds.len(), 5);
        assert!(report.makespan > SimDuration::ZERO);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 5);
    }

    #[test]
    fn online_executes_whole_dag() {
        let mut tb = testbed();
        let mut dag = chain_dag(Dpid(1), 5);
        let report =
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack).unwrap();
        assert!(dag.all_done());
        assert_eq!(report.completed, 5);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 5);
    }

    #[test]
    fn oracle_mismatch_is_a_typed_error() {
        let mut tb = testbed();
        let mut dag = chain_dag(Dpid(1), 3);
        let db = TangoDb::new();
        // A broken oracle that drops every other element.
        let mut oracle = |_db: &TangoDb, _dag: &RequestDag, set: &[NodeId]| {
            (
                set.iter().copied().step_by(2).collect(),
                "broken".to_string(),
            )
        };
        // The first round has one element so step_by(2) keeps it; grow
        // the independent set to surface the mismatch immediately.
        let mut flat = RequestDag::new();
        for i in 0..4u32 {
            flat.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(i), 10, 1));
        }
        let err = execute_batched(&mut tb, &mut flat, &db, &mut oracle).unwrap_err();
        assert_eq!(
            err,
            ExecError::OracleMismatch {
                expected: 4,
                got: 2
            }
        );
        let _ = &mut dag;
    }

    #[test]
    fn guard_time_beats_ack_waiting_on_chains() {
        let run = |release| {
            let mut tb = testbed();
            let mut dag = chain_dag(Dpid(1), 40);
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, release)
                .unwrap()
                .makespan
        };
        let with_ack = run(Release::Ack);
        let with_guard = run(Release::Guard(SimDuration::from_micros(50)));
        assert!(
            with_guard < with_ack,
            "guard {with_guard} should beat ack-wait {with_ack}"
        );
    }

    #[test]
    fn tango_discipline_orders_adds_ascending() {
        // A flat set of adds with shuffled priorities on one switch: the
        // Tango discipline must beat critical-path (submission) order.
        let build = || {
            let mut dag = RequestDag::new();
            let mut prios: Vec<u16> = (0..150u16).map(|i| 1000 + i).collect();
            let mut rng = simnet::rng::DetRng::new(5);
            rng.shuffle(&mut prios);
            for (i, p) in prios.into_iter().enumerate() {
                dag.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(i as u32), p, 1));
            }
            dag
        };
        let cp = {
            let mut tb = testbed();
            let mut dag = build();
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack)
                .unwrap()
                .makespan
        };
        let tango = {
            let mut tb = testbed();
            let mut dag = build();
            execute_online(
                &mut tb,
                &mut dag,
                Discipline::TangoTypePriority,
                Release::Ack,
            )
            .unwrap()
            .makespan
        };
        assert!(
            tango.as_millis_f64() < 0.8 * cp.as_millis_f64(),
            "tango {tango} vs critical-path {cp}"
        );
    }

    #[test]
    fn independent_requests_overlap_across_switches() {
        // Two independent 20-chains on two switches: online execution
        // should take ~one chain's time, not two.
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        for (d, base) in [(Dpid(1), 0u32), (Dpid(2), 1000)] {
            let ids: Vec<NodeId> = (0..20)
                .map(|i| {
                    dag.add_node(ReqElem::add(
                        d,
                        FlowMatch::l3_for_id(base + i),
                        10 + i as u16,
                        1,
                    ))
                })
                .collect();
            for w in ids.windows(2) {
                dag.add_dep(w[0], w[1]);
            }
        }
        let both = execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack)
            .unwrap()
            .makespan;

        let mut tb1 = testbed();
        let mut one = chain_dag(Dpid(1), 20);
        let single = execute_online(&mut tb1, &mut one, Discipline::CriticalPath, Release::Ack)
            .unwrap()
            .makespan;
        assert!(
            both.as_millis_f64() < 1.4 * single.as_millis_f64(),
            "two parallel chains ({both}) should cost about one ({single})"
        );
    }

    #[test]
    fn batched_respects_dependencies_on_switch_state() {
        // A delete that depends on its own add must find the rule there.
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        let m = FlowMatch::l3_for_id(1);
        let a = dag.add_node(ReqElem::add(Dpid(1), m, 10, 1));
        let d = dag.add_node(ReqElem::delete(Dpid(1), m, 10));
        dag.add_dep(a, d);
        let db = TangoDb::new();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        let report = execute_batched(&mut tb, &mut dag, &db, &mut oracle).unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 0);
    }

    #[test]
    fn online_respects_dependencies() {
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        let m = FlowMatch::l3_for_id(1);
        let a = dag.add_node(ReqElem::add(Dpid(1), m, 10, 1));
        let d = dag.add_node(ReqElem::delete(Dpid(2), m, 10));
        dag.add_dep(a, d);
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypeOnly,
            Release::Guard(SimDuration::from_micros(10)),
        )
        .unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 1);
        assert_eq!(tb.switch(Dpid(2)).rule_count(), 0);
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;
    use crate::request::{Deadline, ReqElem};
    use ofwire::flow_match::FlowMatch;
    use switchsim::profiles::SwitchProfile;

    fn add_with_deadline(dpid: Dpid, id: u32, ms: Option<f64>) -> ReqElem {
        let mut r = ReqElem::add(dpid, FlowMatch::l3_for_id(id), 100 + id as u16, 1);
        r.install_by = match ms {
            None => Deadline::BestEffort,
            Some(ms) => Deadline::WithinMs(ms),
        };
        r
    }

    #[test]
    fn generous_deadlines_are_met() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        for i in 0..20 {
            dag.add_node(add_with_deadline(Dpid(1), i, Some(10_000.0)));
        }
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypePriority,
            Release::Ack,
        )
        .unwrap();
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn impossible_deadlines_are_reported() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        // 50 serialized adds cannot all land within 1 ms.
        for i in 0..50 {
            dag.add_node(add_with_deadline(Dpid(1), i, Some(1.0)));
        }
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypePriority,
            Release::Ack,
        )
        .unwrap();
        assert!(
            report.deadline_misses > 40,
            "misses {}",
            report.deadline_misses
        );
    }

    #[test]
    fn best_effort_never_misses() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        for i in 0..200 {
            dag.add_node(add_with_deadline(Dpid(1), i, None));
        }
        let report =
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack).unwrap();
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn tango_ordering_saves_deadlines() {
        // Shuffled priorities with a tight-but-feasible deadline: the
        // ascending order finishes the batch sooner and misses fewer.
        let run = |discipline| {
            let mut tb = Testbed::new(2);
            tb.attach_default(Dpid(1), SwitchProfile::vendor1());
            let mut dag = RequestDag::new();
            let mut prios: Vec<u16> = (0..150u16).map(|i| 1000 + i).collect();
            simnet::rng::DetRng::new(9).shuffle(&mut prios);
            for (i, p) in prios.iter().enumerate() {
                let mut r = ReqElem::add(Dpid(1), FlowMatch::l3_for_id(i as u32), *p, 1);
                r.install_by = Deadline::WithinMs(80.0);
                dag.add_node(r);
            }
            execute_online(&mut tb, &mut dag, discipline, Release::Ack)
                .unwrap()
                .deadline_misses
        };
        let cp = run(Discipline::CriticalPath);
        let tango = run(Discipline::TangoTypePriority);
        assert!(tango < cp, "tango misses {tango} vs critical-path {cp}");
    }
}
