//! Executes a scheduled request DAG against a simulated testbed and
//! measures the makespan — the number every network-wide figure
//! (Figs 10–12) reports.
//!
//! Two execution engines:
//!
//! * [`execute_batched`] — Algorithm 3's loop verbatim: extract the
//!   independent set, order it with an oracle, issue the whole batch,
//!   wait for every ack, repeat.
//! * [`execute_online`] — an event-driven dispatcher: each switch runs
//!   its own queue; whenever a switch comes free, the dispatcher picks
//!   its next request among the *currently released* ones according to a
//!   [`Discipline`] — Dionysus' critical-path rule, or Tango's pattern
//!   ordering (deletes before mods before adds, optionally
//!   ascending-priority adds). Successors are released either when the
//!   predecessor's ack arrives, or — Tango's concurrent-dispatch
//!   extension (§6) — at the predecessor's predicted completion plus a
//!   guard interval.

use crate::dag::{NodeId, RequestDag};
use crate::request::{Deadline, ReqOp};
use ofwire::types::Dpid;
use simnet::time::{SimDuration, SimTime};
use switchsim::harness::{OpResult, Testbed};
use tango::db::TangoDb;
use std::collections::BTreeMap;

/// The outcome of executing a DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Time from first issue to last completion.
    pub makespan: SimDuration,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests rejected by a switch (table full).
    pub failed: usize,
    /// Requests whose `install_by` deadline passed before they
    /// completed (§6's deadline field; best-effort requests never miss).
    pub deadline_misses: usize,
    /// For batched execution: (pattern name, batch size) per round.
    pub rounds: Vec<(String, usize)>,
}

/// Whether a request completing `elapsed` after submission missed its
/// deadline.
fn missed_deadline(deadline: Deadline, elapsed: SimDuration) -> bool {
    match deadline {
        Deadline::BestEffort => false,
        Deadline::WithinMs(ms) => elapsed.as_millis_f64() > ms,
    }
}

/// Orders one independent set; returns the issue order plus a label.
pub type OrderingFn<'a> = dyn FnMut(&TangoDb, &RequestDag, &[NodeId]) -> (Vec<NodeId>, String) + 'a;

/// Runs the batched (Algorithm 3) discipline.
pub fn execute_batched(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
    order: &mut OrderingFn<'_>,
) -> ExecReport {
    let start = tb.now();
    let mut frontier: SimTime = start;
    let mut completed = 0;
    let mut failed = 0;
    let mut deadline_misses = 0;
    let mut rounds = Vec::new();
    while !dag.all_done() {
        let set = dag.independent_set();
        assert!(!set.is_empty(), "stuck DAG (cycle?)");
        let (ordered, label) = order(db, dag, &set);
        assert_eq!(ordered.len(), set.len(), "oracle must permute the set");
        rounds.push((label, ordered.len()));
        let mut batch_end = frontier;
        for id in &ordered {
            let req = dag.node(*id);
            let deadline = req.install_by;
            let c = tb.enqueue_op(req.location, req.to_flow_mod(), frontier);
            match c.result {
                OpResult::Ok => completed += 1,
                OpResult::TableFull => failed += 1,
            }
            if missed_deadline(deadline, c.done_at.since(start)) {
                deadline_misses += 1;
            }
            batch_end = batch_end.max(c.acked_at);
        }
        for id in ordered {
            dag.mark_done(id);
        }
        frontier = batch_end;
    }
    tb.warp_to(frontier.max(tb.now()));
    ExecReport {
        makespan: frontier.since(start),
        completed,
        failed,
        deadline_misses,
        rounds,
    }
}

/// How the online dispatcher picks among released requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Dionysus: longest critical path first, oblivious to op types and
    /// priority order.
    CriticalPath,
    /// Tango rule-type pattern: deletes, then mods, then adds — adds in
    /// submission order.
    TangoTypeOnly,
    /// Tango rule-type + priority pattern: adds additionally sorted in
    /// ascending priority.
    TangoTypePriority,
}

/// When a successor is released after its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Release {
    /// Wait for the predecessor's ack round trip (the safe default).
    Ack,
    /// Tango's guard-time extension: release at the predecessor's
    /// completion plus a guard interval, skipping the return latency.
    Guard(SimDuration),
}

fn class_rank(op: ReqOp) -> u8 {
    match op {
        ReqOp::Del => 0,
        ReqOp::Mod => 1,
        ReqOp::Add => 2,
    }
}

/// Runs the online (event-driven) dispatcher.
pub fn execute_online(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    discipline: Discipline,
    release: Release,
) -> ExecReport {
    let start = tb.now();
    let lp = dag.longest_path_lengths();
    let n = dag.len();
    // Accumulated release time per node: the max of its predecessors'
    // release instants (ack arrival or guarded completion). A node may
    // only be issued once it is in the DAG's independent set — requests
    // are marked done at issue time, so "independent" means every
    // predecessor has been issued, and `release_acc` carries the timing.
    let mut release_acc: Vec<SimTime> = vec![start; n];
    let mut busy: BTreeMap<Dpid, SimTime> = BTreeMap::new();
    let mut completed = 0;
    let mut failed = 0;
    let mut deadline_misses = 0;
    let mut last_done = start;

    while !dag.all_done() {
        let indep = dag.independent_set();
        assert!(!indep.is_empty(), "stuck DAG (cycle?)");
        // Pick the switch that can start work earliest.
        let earliest = |id: NodeId| {
            let dpid = dag.node(id).location;
            let free = busy.get(&dpid).copied().unwrap_or(start);
            free.max(release_acc[id.0])
        };
        let (start_time, dpid) = indep
            .iter()
            .map(|&id| (earliest(id), dag.node(id).location))
            .min()
            .expect("non-empty independent set");
        // Eligible: this switch's requests already released by then.
        let mut eligible: Vec<NodeId> = indep
            .into_iter()
            .filter(|&id| {
                dag.node(id).location == dpid && release_acc[id.0] <= start_time
            })
            .collect();
        debug_assert!(!eligible.is_empty());
        // Both schedulers put the longest critical path first (§6: the
        // basic algorithm "schedules the independent request that
        // belongs to the longest path first"); they differ in how ties
        // are broken — and a flat independent set is all ties, which is
        // exactly where the Tango patterns apply.
        eligible.sort_by(|&a, &b| {
            let (ra, rb) = (dag.node(a), dag.node(b));
            let cp = lp[b.0].cmp(&lp[a.0]);
            match discipline {
                Discipline::CriticalPath => cp
                    .then(release_acc[a.0].cmp(&release_acc[b.0]))
                    .then(a.0.cmp(&b.0)),
                Discipline::TangoTypeOnly => cp
                    .then(class_rank(ra.op).cmp(&class_rank(rb.op)))
                    .then(a.0.cmp(&b.0)),
                Discipline::TangoTypePriority => cp
                    .then(class_rank(ra.op).cmp(&class_rank(rb.op)))
                    .then(ra.effective_priority().cmp(&rb.effective_priority()))
                    .then(a.0.cmp(&b.0)),
            }
        });
        let id = eligible[0];
        let req = dag.node(id);
        let deadline = req.install_by;
        let c = tb.enqueue_op(req.location, req.to_flow_mod(), release_acc[id.0]);
        match c.result {
            OpResult::Ok => completed += 1,
            OpResult::TableFull => failed += 1,
        }
        if missed_deadline(deadline, c.done_at.since(start)) {
            deadline_misses += 1;
        }
        busy.insert(dpid, c.done_at);
        last_done = last_done.max(c.done_at);
        let rel = match release {
            Release::Ack => c.acked_at,
            Release::Guard(g) => c.done_at + g,
        };
        let succs: Vec<NodeId> = dag.successors(id).to_vec();
        dag.mark_done(id);
        for s in succs {
            release_acc[s.0] = release_acc[s.0].max(rel);
        }
    }
    tb.warp_to(last_done.max(tb.now()));
    ExecReport {
        makespan: last_done.since(start),
        completed,
        failed,
        deadline_misses,
        rounds: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ordering_tango_oracle;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;
    use switchsim::profiles::SwitchProfile;

    fn chain_dag(dpid: Dpid, len: usize) -> RequestDag {
        let mut dag = RequestDag::new();
        let ids: Vec<NodeId> = (0..len)
            .map(|i| {
                dag.add_node(ReqElem::add(
                    dpid,
                    FlowMatch::l3_for_id(i as u32),
                    10 + i as u16,
                    1,
                ))
            })
            .collect();
        for w in ids.windows(2) {
            dag.add_dep(w[0], w[1]);
        }
        dag
    }

    fn testbed() -> Testbed {
        let mut tb = Testbed::new(4);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::vendor1());
        tb
    }

    #[test]
    fn batched_executes_whole_dag() {
        let mut tb = testbed();
        let mut dag = chain_dag(Dpid(1), 5);
        let db = TangoDb::new();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        let report = execute_batched(&mut tb, &mut dag, &db, &mut oracle);
        assert!(dag.all_done());
        assert_eq!(report.completed, 5);
        assert_eq!(report.failed, 0);
        // A 5-chain forces 5 single-element rounds.
        assert_eq!(report.rounds.len(), 5);
        assert!(report.makespan > SimDuration::ZERO);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 5);
    }

    #[test]
    fn online_executes_whole_dag() {
        let mut tb = testbed();
        let mut dag = chain_dag(Dpid(1), 5);
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::CriticalPath,
            Release::Ack,
        );
        assert!(dag.all_done());
        assert_eq!(report.completed, 5);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 5);
    }

    #[test]
    fn guard_time_beats_ack_waiting_on_chains() {
        let run = |release| {
            let mut tb = testbed();
            let mut dag = chain_dag(Dpid(1), 40);
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, release).makespan
        };
        let with_ack = run(Release::Ack);
        let with_guard = run(Release::Guard(SimDuration::from_micros(50)));
        assert!(
            with_guard < with_ack,
            "guard {with_guard} should beat ack-wait {with_ack}"
        );
    }

    #[test]
    fn tango_discipline_orders_adds_ascending() {
        // A flat set of adds with shuffled priorities on one switch: the
        // Tango discipline must beat critical-path (submission) order.
        let build = || {
            let mut dag = RequestDag::new();
            let mut prios: Vec<u16> = (0..150u16).map(|i| 1000 + i).collect();
            let mut rng = simnet::rng::DetRng::new(5);
            rng.shuffle(&mut prios);
            for (i, p) in prios.into_iter().enumerate() {
                dag.add_node(ReqElem::add(
                    Dpid(1),
                    FlowMatch::l3_for_id(i as u32),
                    p,
                    1,
                ));
            }
            dag
        };
        let cp = {
            let mut tb = testbed();
            let mut dag = build();
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack).makespan
        };
        let tango = {
            let mut tb = testbed();
            let mut dag = build();
            execute_online(
                &mut tb,
                &mut dag,
                Discipline::TangoTypePriority,
                Release::Ack,
            )
            .makespan
        };
        assert!(
            tango.as_millis_f64() < 0.8 * cp.as_millis_f64(),
            "tango {tango} vs critical-path {cp}"
        );
    }

    #[test]
    fn independent_requests_overlap_across_switches() {
        // Two independent 20-chains on two switches: online execution
        // should take ~one chain's time, not two.
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        for (d, base) in [(Dpid(1), 0u32), (Dpid(2), 1000)] {
            let ids: Vec<NodeId> = (0..20)
                .map(|i| {
                    dag.add_node(ReqElem::add(
                        d,
                        FlowMatch::l3_for_id(base + i),
                        10 + i as u16,
                        1,
                    ))
                })
                .collect();
            for w in ids.windows(2) {
                dag.add_dep(w[0], w[1]);
            }
        }
        let both =
            execute_online(&mut tb, &mut dag, Discipline::CriticalPath, Release::Ack).makespan;

        let mut tb1 = testbed();
        let mut one = chain_dag(Dpid(1), 20);
        let single =
            execute_online(&mut tb1, &mut one, Discipline::CriticalPath, Release::Ack).makespan;
        assert!(
            both.as_millis_f64() < 1.4 * single.as_millis_f64(),
            "two parallel chains ({both}) should cost about one ({single})"
        );
    }

    #[test]
    fn batched_respects_dependencies_on_switch_state() {
        // A delete that depends on its own add must find the rule there.
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        let m = FlowMatch::l3_for_id(1);
        let a = dag.add_node(ReqElem::add(Dpid(1), m, 10, 1));
        let d = dag.add_node(ReqElem::delete(Dpid(1), m, 10));
        dag.add_dep(a, d);
        let db = TangoDb::new();
        let mut oracle =
            |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
        let report = execute_batched(&mut tb, &mut dag, &db, &mut oracle);
        assert_eq!(report.completed, 2);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 0);
    }

    #[test]
    fn online_respects_dependencies() {
        let mut tb = testbed();
        let mut dag = RequestDag::new();
        let m = FlowMatch::l3_for_id(1);
        let a = dag.add_node(ReqElem::add(Dpid(1), m, 10, 1));
        let d = dag.add_node(ReqElem::delete(Dpid(2), m, 10));
        dag.add_dep(a, d);
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypeOnly,
            Release::Guard(SimDuration::from_micros(10)),
        );
        assert_eq!(report.completed, 2);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 1);
        assert_eq!(tb.switch(Dpid(2)).rule_count(), 0);
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;
    use crate::request::{Deadline, ReqElem};
    use ofwire::flow_match::FlowMatch;
    use switchsim::profiles::SwitchProfile;

    fn add_with_deadline(dpid: Dpid, id: u32, ms: Option<f64>) -> ReqElem {
        let mut r = ReqElem::add(dpid, FlowMatch::l3_for_id(id), 100 + id as u16, 1);
        r.install_by = match ms {
            None => Deadline::BestEffort,
            Some(ms) => Deadline::WithinMs(ms),
        };
        r
    }

    #[test]
    fn generous_deadlines_are_met() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        for i in 0..20 {
            dag.add_node(add_with_deadline(Dpid(1), i, Some(10_000.0)));
        }
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypePriority,
            Release::Ack,
        );
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn impossible_deadlines_are_reported() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        // 50 serialized adds cannot all land within 1 ms.
        for i in 0..50 {
            dag.add_node(add_with_deadline(Dpid(1), i, Some(1.0)));
        }
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::TangoTypePriority,
            Release::Ack,
        );
        assert!(
            report.deadline_misses > 40,
            "misses {}",
            report.deadline_misses
        );
    }

    #[test]
    fn best_effort_never_misses() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        let mut dag = RequestDag::new();
        for i in 0..200 {
            dag.add_node(add_with_deadline(Dpid(1), i, None));
        }
        let report = execute_online(
            &mut tb,
            &mut dag,
            Discipline::CriticalPath,
            Release::Ack,
        );
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn tango_ordering_saves_deadlines() {
        // Shuffled priorities with a tight-but-feasible deadline: the
        // ascending order finishes the batch sooner and misses fewer.
        let run = |discipline| {
            let mut tb = Testbed::new(2);
            tb.attach_default(Dpid(1), SwitchProfile::vendor1());
            let mut dag = RequestDag::new();
            let mut prios: Vec<u16> = (0..150u16).map(|i| 1000 + i).collect();
            simnet::rng::DetRng::new(9).shuffle(&mut prios);
            for (i, p) in prios.iter().enumerate() {
                let mut r =
                    ReqElem::add(Dpid(1), FlowMatch::l3_for_id(i as u32), *p, 1);
                r.install_by = Deadline::WithinMs(80.0);
                dag.add_node(r);
            }
            execute_online(&mut tb, &mut dag, discipline, Release::Ack).deadline_misses
        };
        let cp = run(Discipline::CriticalPath);
        let tango = run(Discipline::TangoTypePriority);
        assert!(tango < cp, "tango misses {tango} vs critical-path {cp}");
    }
}
