//! # tango-sched — the Tango network scheduler and its baselines
//!
//! Implements §6 of the paper: switch requests ([`request`]), the
//! switch-request DAG ([`dag`]), the pattern-scoring ordering oracle
//! ([`patterns`]), the Basic Tango Scheduler and its Fig-10 arms
//! ([`basic`]), the non-greedy batching and guard-time extensions
//! ([`extensions`]), priority assignment per Maple ([`priority`]),
//! consistent-update ordering ([`consistency`]), the pluggable
//! scheduler portfolio and its by-name registry ([`schedulers`]), and
//! the execution harness measuring makespans over simulated testbeds
//! ([`executor`]).
//!
//! The Dionysus baseline (critical-path scheduling, oblivious to switch
//! diversity) lives in [`basic::run_dionysus`]; the same policy is the
//! `"dionysus"` entry of [`schedulers::registry`].

pub mod basic;
pub mod consistency;
pub mod controller;
pub mod dag;
pub mod executor;
pub mod extensions;
pub mod patterns;
pub mod priority;
pub mod request;
pub mod schedulers;

/// Glob-import of the commonly used types.
pub mod prelude {
    pub use crate::basic::{
        default_guard, run_basic_tango, run_dionysus, run_tango_guarded, run_tango_online,
        TangoMode,
    };
    pub use crate::consistency::add_reverse_path_deps;
    pub use crate::controller::{TangoController, UnderstandOptions};
    pub use crate::dag::{NodeId, RequestDag};
    pub use crate::executor::{
        execute, execute_batched, execute_online, execute_with, Discipline, ExecError, ExecReport,
        Release, ReleasePolicy,
    };
    pub use crate::extensions::{execute_batched_greedy, execute_batched_lookahead};
    pub use crate::patterns::{ordering_tango_oracle, pattern_score, AddOrder, SchedPattern};
    pub use crate::priority::{
        ascending_install_order, r_priorities, satisfies, topological_priorities, CyclicDag,
        PriorityAssignment,
    };
    pub use crate::request::{Deadline, ReqElem, ReqOp};
    pub use crate::schedulers::{registry, resolve, SchedKey, Scheduler, SchedulerEntry};
}
