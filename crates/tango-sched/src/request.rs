//! Switch requests — the scheduler's unit of work (§6).
//!
//! The paper's request format:
//!
//! ```text
//! req_elem = {'location': switch_id,
//!             'type'    : add | del | mod,
//!             'priority': priority number or none,
//!             'rule parameters': match, action,
//!             'install_by': ms or best effort}
//! ```

use ofwire::action::Action;
use ofwire::flow_match::FlowMatch;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use serde::{Deserialize, Serialize};

/// The operation class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqOp {
    /// Install a new rule.
    Add,
    /// Rewrite an existing rule's actions.
    Mod,
    /// Remove a rule.
    Del,
}

impl ReqOp {
    /// Short label ("add"/"mod"/"del").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReqOp::Add => "add",
            ReqOp::Mod => "mod",
            ReqOp::Del => "del",
        }
    }
}

/// Installation deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Deadline {
    /// Install whenever convenient.
    #[default]
    BestEffort,
    /// Install within this many milliseconds of submission.
    WithinMs(f64),
}

/// One switch request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReqElem {
    /// Target switch.
    pub location: Dpid,
    /// Operation class.
    pub op: ReqOp,
    /// Rule priority; `None` lets Tango enforce one (Fig 11's "priority
    /// enforcement").
    pub priority: Option<u16>,
    /// Rule match.
    pub flow_match: FlowMatch,
    /// Rule actions (empty for deletes).
    pub actions: Vec<Action>,
    /// Deadline.
    pub install_by: Deadline,
}

impl ReqElem {
    /// An add request.
    #[must_use]
    pub fn add(location: Dpid, flow_match: FlowMatch, priority: u16, out_port: u16) -> ReqElem {
        ReqElem {
            location,
            op: ReqOp::Add,
            priority: Some(priority),
            flow_match,
            actions: vec![Action::output(out_port)],
            install_by: Deadline::BestEffort,
        }
    }

    /// A modify request.
    #[must_use]
    pub fn modify(location: Dpid, flow_match: FlowMatch, priority: u16, out_port: u16) -> ReqElem {
        ReqElem {
            op: ReqOp::Mod,
            ..ReqElem::add(location, flow_match, priority, out_port)
        }
    }

    /// A delete request.
    #[must_use]
    pub fn delete(location: Dpid, flow_match: FlowMatch, priority: u16) -> ReqElem {
        ReqElem {
            op: ReqOp::Del,
            actions: Vec::new(),
            ..ReqElem::add(location, flow_match, priority, 0)
        }
    }

    /// Builder: leave the priority for Tango to enforce.
    #[must_use]
    pub fn without_priority(mut self) -> ReqElem {
        self.priority = None;
        self
    }

    /// The effective priority (0 when unassigned — callers normally run
    /// priority enforcement first).
    #[must_use]
    pub fn effective_priority(&self) -> u16 {
        self.priority.unwrap_or(0)
    }

    /// Lowers the request to a concrete `flow_mod`.
    #[must_use]
    pub fn to_flow_mod(&self) -> FlowMod {
        let priority = self.effective_priority();
        match self.op {
            ReqOp::Add => {
                let mut fm = FlowMod::add(self.flow_match, priority);
                fm.actions = self.actions.clone();
                fm
            }
            ReqOp::Mod => FlowMod::modify_strict(self.flow_match, priority, self.actions.clone()),
            ReqOp::Del => FlowMod::delete_strict(self.flow_match, priority),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::flow_mod::FlowModCommand;

    #[test]
    fn lowering_to_flow_mods() {
        let m = FlowMatch::l3_for_id(7);
        let add = ReqElem::add(Dpid(1), m, 10, 2).to_flow_mod();
        assert_eq!(add.command, FlowModCommand::Add);
        assert_eq!(add.priority, 10);
        assert_eq!(add.actions, vec![Action::output(2)]);

        let md = ReqElem::modify(Dpid(1), m, 10, 3).to_flow_mod();
        assert_eq!(md.command, FlowModCommand::ModifyStrict);
        assert_eq!(md.actions, vec![Action::output(3)]);

        let del = ReqElem::delete(Dpid(1), m, 10).to_flow_mod();
        assert_eq!(del.command, FlowModCommand::DeleteStrict);
        assert!(del.actions.is_empty());
    }

    #[test]
    fn priority_enforcement_hook() {
        let r = ReqElem::add(Dpid(1), FlowMatch::any(), 10, 1).without_priority();
        assert_eq!(r.priority, None);
        assert_eq!(r.effective_priority(), 0);
        assert_eq!(r.to_flow_mod().priority, 0);
    }

    #[test]
    fn op_labels() {
        assert_eq!(ReqOp::Add.label(), "add");
        assert_eq!(ReqOp::Mod.label(), "mod");
        assert_eq!(ReqOp::Del.label(), "del");
    }
}
