//! Consistent-update ordering (§7.2).
//!
//! "We ensure that the flow updates are conducted in reverse order
//! across the source-destination paths to ensure update consistency
//! \[18\]": for a path s₁→s₂→…→s_k, the rule at s_k (nearest the
//! destination) installs first and s₁ last, so no packet ever reaches a
//! switch without a rule for it.

use crate::dag::{NodeId, RequestDag};

/// Adds the reverse-path dependency chain for one flow's per-switch
/// requests. `path_nodes[i]` is the request at the `i`-th switch from
/// the **source**; the resulting edges force destination-first
/// installation.
pub fn add_reverse_path_deps(dag: &mut RequestDag, path_nodes: &[NodeId]) {
    for w in path_nodes.windows(2) {
        // w[1] is closer to the destination: it must complete first.
        dag.add_dep(w[1], w[0]);
    }
}

/// Checks that an execution order (a permutation of node completion
/// ranks) respects destination-first semantics for a path.
#[must_use]
pub fn is_reverse_path_order(completion_rank: &[usize], path_nodes: &[NodeId]) -> bool {
    path_nodes
        .windows(2)
        .all(|w| completion_rank[w[1].0] < completion_rank[w[0].0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;
    use ofwire::types::Dpid;

    fn path_dag(len: usize) -> (RequestDag, Vec<NodeId>) {
        let mut dag = RequestDag::new();
        let nodes: Vec<NodeId> = (0..len)
            .map(|i| {
                dag.add_node(ReqElem::add(
                    Dpid(i as u64 + 1),
                    FlowMatch::l3_for_id(7),
                    10,
                    1,
                ))
            })
            .collect();
        add_reverse_path_deps(&mut dag, &nodes);
        (dag, nodes)
    }

    #[test]
    fn destination_installs_first() {
        let (dag, nodes) = path_dag(4);
        // Only the destination-side request is initially independent.
        assert_eq!(dag.independent_set(), vec![*nodes.last().unwrap()]);
    }

    #[test]
    fn drain_order_is_reverse_path() {
        let (mut dag, nodes) = path_dag(5);
        let mut rank = vec![0usize; dag.len()];
        let mut next = 0;
        while !dag.all_done() {
            for id in dag.independent_set() {
                rank[id.0] = next;
                next += 1;
                dag.mark_done(id);
            }
        }
        assert!(is_reverse_path_order(&rank, &nodes));
    }

    #[test]
    fn violated_order_detected() {
        let (_, nodes) = path_dag(3);
        // Source first = rank 0 for nodes[0]: violates.
        let rank = vec![0usize, 1, 2];
        assert!(!is_reverse_path_order(&rank, &nodes));
    }

    #[test]
    fn single_hop_paths_are_trivially_consistent() {
        let mut dag = RequestDag::new();
        let n = dag.add_node(ReqElem::add(Dpid(1), FlowMatch::any(), 1, 1));
        add_reverse_path_deps(&mut dag, &[n]);
        assert_eq!(dag.independent_set(), vec![n]);
    }
}
