//! The switch-request DAG (§6, Fig 7).
//!
//! Nodes are [`ReqElem`]s; a directed edge `a → b` means request `a`
//! must complete before `b` may be issued (consistent-update ordering,
//! priority-barrier ordering, etc.). The scheduler repeatedly extracts
//! the *independent set* — requests with no unfinished predecessors —
//! and uses longest-path lengths for critical-path decisions.
//!
//! Both of those operations are served from incrementally maintained
//! state so dispatch over a 100k-op DAG stays sub-quadratic:
//!
//! * the **ready frontier** (`ready`) is updated in `O(out-degree)` by
//!   [`RequestDag::mark_done`], so [`RequestDag::independent_set`] costs
//!   `O(|frontier|)` instead of a full node scan;
//! * **longest-path ranks** are memoized and invalidated only by
//!   structural mutation ([`RequestDag::add_node`] /
//!   [`RequestDag::add_dep`]), never by completion: ranks are computed
//!   over the whole DAG ignoring completion state, and the done set is
//!   always predecessor-closed (`mark_done` rejects blocked nodes), so
//!   no completion can change the rank of any still-unfinished node.
//!   [`RequestDag::longest_path_lengths`] remains the
//!   recompute-from-scratch oracle the cache is checked against in
//!   tests.

use crate::request::{ReqElem, ReqOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Index of a request within its DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A directed acyclic graph of switch requests.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RequestDag {
    nodes: Vec<ReqElem>,
    /// Adjacency: successors of each node.
    succs: Vec<Vec<NodeId>>,
    /// Adjacency: predecessors of each node.
    preds: Vec<Vec<NodeId>>,
    /// Number of unfinished predecessors per node.
    pending_preds: Vec<usize>,
    /// Completion flags.
    done: Vec<bool>,
    /// Count of completed requests (`all_done` in O(1)).
    n_done: usize,
    /// The ready frontier: unfinished nodes with no unfinished
    /// predecessors, kept in ascending index order.
    ready: BTreeSet<usize>,
    /// Memoized longest-path ranks; valid while `ranks_valid`.
    ranks: Vec<usize>,
    /// Whether `ranks` reflects the current edge set.
    ranks_valid: bool,
}

impl RequestDag {
    /// An empty DAG.
    #[must_use]
    pub fn new() -> RequestDag {
        RequestDag::default()
    }

    /// Adds a request, returning its id.
    pub fn add_node(&mut self, req: ReqElem) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(req);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.pending_preds.push(0);
        self.done.push(false);
        self.ready.insert(id.0);
        self.ranks_valid = false;
        id
    }

    /// Adds the dependency `before → after`. Panics on self-loops; cycle
    /// detection is via [`RequestDag::validate_acyclic`].
    pub fn add_dep(&mut self, before: NodeId, after: NodeId) {
        assert_ne!(before, after, "self-dependency");
        self.succs[before.0].push(after);
        self.preds[after.0].push(before);
        self.pending_preds[after.0] += 1;
        self.ready.remove(&after.0);
        self.ranks_valid = false;
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the DAG has no requests at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The request behind a node id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &ReqElem {
        &self.nodes[id.0]
    }

    /// Mutable access (used by priority enforcement).
    pub fn node_mut(&mut self, id: NodeId) -> &mut ReqElem {
        &mut self.nodes[id.0]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Successors of a node.
    #[must_use]
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.0]
    }

    /// Predecessors of a node.
    #[must_use]
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.0]
    }

    /// Every dependency edge `(before, after)`, in `before` index order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, ss)| ss.iter().map(move |&s| (NodeId(i), s)))
    }

    /// True once this request has completed.
    #[must_use]
    pub fn is_done(&self, id: NodeId) -> bool {
        self.done[id.0]
    }

    /// Number of unfinished predecessors of a node.
    #[must_use]
    pub fn pending_pred_count(&self, id: NodeId) -> usize {
        self.pending_preds[id.0]
    }

    /// True once every request has completed.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.n_done == self.nodes.len()
    }

    /// The current independent set: unfinished requests with no
    /// unfinished predecessors, in ascending index order. Served from
    /// the incrementally maintained frontier in `O(|frontier|)`.
    #[must_use]
    pub fn independent_set(&self) -> Vec<NodeId> {
        self.ready.iter().map(|&i| NodeId(i)).collect()
    }

    /// Marks a request complete, unblocking its successors. Panics if
    /// the node was still blocked or already done (a scheduling bug).
    pub fn mark_done(&mut self, id: NodeId) {
        assert!(!self.done[id.0], "request completed twice");
        assert_eq!(
            self.pending_preds[id.0], 0,
            "request completed while still blocked"
        );
        self.done[id.0] = true;
        self.n_done += 1;
        self.ready.remove(&id.0);
        for s in self.succs[id.0].clone() {
            self.pending_preds[s.0] -= 1;
            if self.pending_preds[s.0] == 0 && !self.done[s.0] {
                self.ready.insert(s.0);
            }
        }
    }

    /// Longest path (in edges) from each node to any sink, over the
    /// whole DAG (ignores completion state). This is the critical-path
    /// metric both schedulers use — and the recompute-from-scratch
    /// oracle for the memoized [`RequestDag::ranks`].
    #[must_use]
    pub fn longest_path_lengths(&self) -> Vec<usize> {
        let order = self.topo_order().expect("DAG must be acyclic");
        let mut lp = vec![0usize; self.nodes.len()];
        for &NodeId(i) in order.iter().rev() {
            for &NodeId(s) in &self.succs[i] {
                lp[i] = lp[i].max(lp[s] + 1);
            }
        }
        lp
    }

    /// Longest-path ranks, memoized: recomputed lazily after structural
    /// mutation (`add_node`/`add_dep`) and *never* invalidated by
    /// completion. That is sound because ranks ignore completion state
    /// and the done set is predecessor-closed, so completions cannot
    /// change the rank of any node a scheduler may still dispatch. The
    /// invariant `ranks() == longest_path_lengths()` is pinned by tests.
    pub fn ranks(&mut self) -> &[usize] {
        if !self.ranks_valid {
            self.ranks = self.longest_path_lengths();
            self.ranks_valid = true;
        }
        &self.ranks
    }

    /// A topological order, or `None` if the graph has a cycle.
    #[must_use]
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let mut indeg: Vec<usize> = vec![0; self.nodes.len()];
        for succs in &self.succs {
            for &NodeId(s) in succs {
                indeg[s] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..self.nodes.len()).filter(|&i| indeg[i] == 0).collect();
        // Reverse so pop() yields the smallest index first: deterministic.
        stack.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = stack.pop() {
            order.push(NodeId(i));
            let mut newly = Vec::new();
            for &NodeId(s) in &self.succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    newly.push(s);
                }
            }
            newly.sort_unstable_by(|a, b| b.cmp(a));
            stack.extend(newly);
        }
        if order.len() == self.nodes.len() {
            Some(order)
        } else {
            None
        }
    }

    /// Validates acyclicity ("If the dependency forms a loop, the upper
    /// layer must break the loop to make G a DAG").
    #[must_use]
    pub fn validate_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// The paper's Fig 7 example DAG, verbatim: nine requests A–J across
    /// four switches with the dependencies drawn in the figure. Returns
    /// the DAG plus the node ids in label order
    /// `[A, B, C, E, F, G, H, I, J]`.
    #[must_use]
    pub fn fig7_example() -> (RequestDag, Vec<NodeId>) {
        use crate::request::ReqElem;
        use ofwire::flow_match::FlowMatch;
        use ofwire::types::Dpid;
        let mut dag = RequestDag::new();
        // (label, switch, op, priority) per the figure.
        let specs: [(&str, u64, ReqOp, u16); 9] = [
            ("A", 1, ReqOp::Add, 1334),
            ("B", 1, ReqOp::Add, 1244),
            ("C", 1, ReqOp::Del, 2001),
            ("E", 1, ReqOp::Mod, 2000),
            ("F", 2, ReqOp::Mod, 2334),
            ("G", 4, ReqOp::Mod, 2330),
            ("H", 1, ReqOp::Del, 1070),
            ("I", 1, ReqOp::Add, 2350),
            ("J", 1, ReqOp::Add, 2345),
        ];
        let ids: Vec<NodeId> = specs
            .iter()
            .enumerate()
            .map(|(i, &(_, sw, op, prio))| {
                let m = FlowMatch::l3_for_id(i as u32);
                let base = ReqElem::add(Dpid(sw), m, prio, 1);
                dag.add_node(ReqElem { op, ..base })
            })
            .collect();
        let [a, b, c, e, f, g, h, i, j] = [
            ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7], ids[8],
        ];
        // Edges per the figure: A→B→C, E→F→G, H→F, I→G, I→J.
        dag.add_dep(a, b);
        dag.add_dep(b, c);
        dag.add_dep(e, f);
        dag.add_dep(f, g);
        dag.add_dep(h, f);
        dag.add_dep(i, g);
        dag.add_dep(i, j);
        let _ = (c, g, j);
        (dag, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReqElem, ReqOp};
    use ofwire::flow_match::FlowMatch;
    use ofwire::types::Dpid;

    fn req(op: ReqOp, id: u32) -> ReqElem {
        let base = ReqElem::add(Dpid(1), FlowMatch::l3_for_id(id), 10, 1);
        ReqElem { op, ..base }
    }

    /// The example DAG of Fig 7 (nine requests; A,E,H,I independent).
    fn fig7() -> (RequestDag, Vec<NodeId>) {
        let mut dag = RequestDag::new();
        // A B C E F G H I J, in that insertion order.
        let ids: Vec<NodeId> = (0..9).map(|i| dag.add_node(req(ReqOp::Add, i))).collect();
        let (a, b, c, e, f, g, h, i, j) = (
            ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7], ids[8],
        );
        dag.add_dep(a, b);
        dag.add_dep(b, c);
        dag.add_dep(e, f);
        dag.add_dep(f, g);
        dag.add_dep(h, f);
        dag.add_dep(i, g);
        dag.add_dep(i, j);
        (dag, vec![a, e, h, i])
    }

    #[test]
    fn independent_set_matches_fig7() {
        let (dag, expect) = fig7();
        assert_eq!(dag.independent_set(), expect);
        assert!(dag.validate_acyclic());
    }

    #[test]
    fn mark_done_unblocks_successors() {
        let (mut dag, indep) = fig7();
        for id in indep {
            dag.mark_done(id);
        }
        // B (A done), F (E and H done), J (I done) become independent.
        let next = dag.independent_set();
        assert_eq!(next, vec![NodeId(1), NodeId(4), NodeId(8)]);
        assert!(!dag.all_done());
    }

    #[test]
    #[should_panic(expected = "still blocked")]
    fn completing_blocked_node_panics() {
        let (mut dag, _) = fig7();
        dag.mark_done(NodeId(1)); // B depends on A
    }

    #[test]
    fn longest_paths() {
        let (dag, _) = fig7();
        let lp = dag.longest_path_lengths();
        // A→B→C: A has lp 2. E→F→G: 2. I→G and I→J: 1. C, G, J: 0.
        assert_eq!(lp[0], 2);
        assert_eq!(lp[3], 2);
        assert_eq!(lp[7], 1);
        assert_eq!(lp[2], 0);
    }

    #[test]
    fn cycle_detection() {
        let mut dag = RequestDag::new();
        let a = dag.add_node(req(ReqOp::Add, 1));
        let b = dag.add_node(req(ReqOp::Add, 2));
        dag.add_dep(a, b);
        dag.add_dep(b, a);
        assert!(!dag.validate_acyclic());
        assert!(dag.topo_order().is_none());
    }

    #[test]
    fn topo_order_is_deterministic_and_valid() {
        let (dag, _) = fig7();
        let order = dag.topo_order().unwrap();
        assert_eq!(order.len(), dag.len());
        // Every edge respects the order.
        let pos: Vec<usize> = {
            let mut p = vec![0; dag.len()];
            for (idx, &NodeId(n)) in order.iter().enumerate() {
                p[n] = idx;
            }
            p
        };
        for id in dag.node_ids() {
            for &NodeId(s) in dag.successors(id) {
                assert!(pos[id.0] < pos[s]);
            }
        }
        assert_eq!(order, fig7().0.topo_order().unwrap());
    }

    #[test]
    fn rank_cache_matches_recompute_oracle() {
        // Interleave structural mutation, rank queries, and completions:
        // the memoized ranks must always equal the from-scratch oracle.
        let mut dag = RequestDag::new();
        let a = dag.add_node(req(ReqOp::Add, 0));
        let b = dag.add_node(req(ReqOp::Add, 1));
        assert_eq!(dag.ranks().to_vec(), dag.longest_path_lengths());
        dag.add_dep(a, b);
        assert_eq!(dag.ranks().to_vec(), dag.longest_path_lengths());
        let c = dag.add_node(req(ReqOp::Add, 2));
        dag.add_dep(b, c);
        assert_eq!(dag.ranks(), &[2, 1, 0]);
        // Completions never invalidate the cache.
        dag.mark_done(a);
        assert_eq!(dag.ranks().to_vec(), dag.longest_path_lengths());
        dag.add_dep(a, c); // structural change re-dirties it
        assert_eq!(dag.ranks().to_vec(), dag.longest_path_lengths());
    }

    #[test]
    fn frontier_matches_scan_oracle_while_draining() {
        let (mut dag, _) = fig7();
        let mut rng = simnet::rng::DetRng::new(0x0f20);
        while !dag.all_done() {
            let frontier = dag.independent_set();
            let scan: Vec<NodeId> = dag
                .node_ids()
                .filter(|&id| !dag.is_done(id) && dag.pending_pred_count(id) == 0)
                .collect();
            assert_eq!(frontier, scan);
            assert!(!frontier.is_empty());
            dag.mark_done(frontier[rng.index(frontier.len())]);
        }
        assert!(dag.independent_set().is_empty());
    }

    #[test]
    fn predecessors_mirror_successors() {
        let (dag, _) = fig7();
        for id in dag.node_ids() {
            for &s in dag.successors(id) {
                assert!(dag.predecessors(s).contains(&id));
            }
            assert_eq!(dag.predecessors(id).len(), dag.pending_pred_count(id));
        }
        assert_eq!(dag.edges().count(), 7);
    }

    #[test]
    fn drain_entire_dag() {
        let (mut dag, _) = fig7();
        let mut drained = 0;
        while !dag.all_done() {
            let batch = dag.independent_set();
            assert!(!batch.is_empty(), "acyclic DAG always has a frontier");
            for id in batch {
                dag.mark_done(id);
                drained += 1;
            }
        }
        assert_eq!(drained, 9);
    }
}
