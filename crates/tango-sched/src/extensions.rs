//! Scheduler extensions (§6 "Extensions"): non-greedy prefix batching.
//!
//! The basic scheduler greedily batches the whole independent set. The
//! extension evaluates, before each round, whether issuing only a
//! *prefix* of the ordered set — then re-planning with the requests the
//! prefix unblocks — is predicted to be cheaper, using the TangoDB cost
//! model (no trial execution). This explores the paper's "scheduling
//! tree of possibilities" one level deep, which is where almost all of
//! the benefit lives for the evaluation DAGs.

use crate::dag::{NodeId, RequestDag};
use crate::executor::{execute, execute_batched, ExecError, ExecReport, ReleasePolicy};
use crate::patterns::{ordering_tango_oracle, pattern_score, SchedPattern};
use std::collections::BTreeMap;
use switchsim::harness::Testbed;
use tango::db::TangoDb;

/// Predicted cost (ms) of issuing `set` as one batch: the negated best
/// pattern score.
fn predicted_batch_ms(db: &TangoDb, dag: &RequestDag, set: &[NodeId]) -> f64 {
    SchedPattern::standard_set()
        .iter()
        .map(|p| -pattern_score(db, dag, set, p))
        .fold(f64::INFINITY, f64::min)
}

/// The exact set of issuable nodes once `prefix` completes: the current
/// independent set minus the prefix, plus everything the prefix
/// unblocks. Computed from pending-predecessor deltas — a successor
/// becomes ready exactly when the prefix accounts for *all* of its
/// outstanding predecessors — so planning never clones the DAG (the old
/// scratch-copy approach was quadratic over a whole run).
fn unlocked_by(dag: &RequestDag, current: &[NodeId], prefix: &[NodeId]) -> Vec<NodeId> {
    let mut delta: BTreeMap<usize, usize> = BTreeMap::new();
    for &p in prefix {
        for &s in dag.successors(p) {
            *delta.entry(s.0).or_insert(0) += 1;
        }
    }
    let mut out: Vec<NodeId> = current
        .iter()
        .copied()
        .filter(|n| !prefix.contains(n))
        .collect();
    for (&s, &d) in &delta {
        let id = NodeId(s);
        if !dag.is_done(id) && dag.pending_pred_count(id) == d {
            out.push(id);
        }
    }
    // Ascending ids, matching the frontier's native iteration order.
    out.sort_unstable_by_key(|n| n.0);
    out
}

/// Batched execution with depth-1 prefix lookahead.
pub fn execute_batched_lookahead(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
) -> Result<ExecReport, ExecError> {
    let mut oracle = move |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| {
        let (ordered, name) = ordering_tango_oracle(db, dag, set);
        // Candidate prefixes: all, the first half, or one element —
        // evaluated largest-first so ties keep the full batch (a prefix
        // must *strictly* beat the whole batch to be chosen).
        let candidates = [ordered.len(), ordered.len().div_ceil(2), 1usize];
        let mut best: Option<(f64, usize)> = None;
        for &k in &candidates {
            if k == 0 || k > ordered.len() {
                continue;
            }
            let prefix = &ordered[..k];
            let cost = if k == ordered.len() {
                // Whole batch: its cost plus nothing unlocked early.
                predicted_batch_ms(db, dag, prefix)
            } else {
                // Prefix, then the remainder merged with what the prefix
                // unlocks (scored as one follow-up batch).
                let follow = unlocked_by(dag, &ordered, prefix);
                predicted_batch_ms(db, dag, prefix) + predicted_batch_ms(db, dag, &follow)
            };
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, k));
            }
        }
        let (_, k) = best.expect("non-empty candidates");
        (
            ordered[..k].to_vec(),
            format!("{name}[prefix {k}/{}]", set.len()),
        )
    };
    // Same round-barrier dispatcher as the greedy scheduler, but with
    // `partial` rounds allowed: unissued requests stay in the DAG for
    // the next round's planning pass.
    execute(
        tb,
        dag,
        ReleasePolicy::RoundBarrier {
            db,
            order: &mut oracle,
            partial: true,
        },
    )
}

/// Re-exported plain batched execution for comparison in ablations.
pub fn execute_batched_greedy(
    tb: &mut Testbed,
    dag: &mut RequestDag,
    db: &TangoDb,
) -> Result<ExecReport, ExecError> {
    let mut oracle =
        |db: &TangoDb, dag: &RequestDag, set: &[NodeId]| ordering_tango_oracle(db, dag, set);
    execute_batched(tb, dag, db, &mut oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;
    use ofwire::types::Dpid;
    use switchsim::profiles::SwitchProfile;

    fn testbed() -> Testbed {
        let mut tb = Testbed::new(6);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::vendor1());
        tb
    }

    /// Fig 7-like DAG spread over two switches.
    fn dag() -> RequestDag {
        let mut dag = RequestDag::new();
        let a = dag.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(1), 100, 1));
        let b = dag.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(2), 110, 1));
        let c = dag.add_node(ReqElem::add(Dpid(2), FlowMatch::l3_for_id(3), 120, 1));
        let d = dag.add_node(ReqElem::add(Dpid(2), FlowMatch::l3_for_id(4), 90, 1));
        let e = dag.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(5), 80, 1));
        dag.add_dep(a, b);
        dag.add_dep(c, d);
        dag.add_dep(a, d);
        let _ = e;
        dag
    }

    #[test]
    fn lookahead_completes_everything() {
        let mut tb = testbed();
        let mut d = dag();
        let db = TangoDb::new();
        let report = execute_batched_lookahead(&mut tb, &mut d, &db).unwrap();
        assert!(d.all_done());
        assert_eq!(report.completed, 5);
        assert_eq!(
            tb.switch(Dpid(1)).rule_count() + tb.switch(Dpid(2)).rule_count(),
            5
        );
    }

    #[test]
    fn lookahead_never_slower_than_greedy_by_much() {
        // Lookahead uses predictions; on these small DAGs it must stay
        // within a small factor of greedy (and often wins on deeper
        // DAGs).
        let greedy = {
            let mut tb = testbed();
            let mut d = dag();
            let db = TangoDb::new();
            execute_batched_greedy(&mut tb, &mut d, &db)
                .unwrap()
                .makespan
        };
        let look = {
            let mut tb = testbed();
            let mut d = dag();
            let db = TangoDb::new();
            execute_batched_lookahead(&mut tb, &mut d, &db)
                .unwrap()
                .makespan
        };
        assert!(
            look.as_millis_f64() <= 1.5 * greedy.as_millis_f64(),
            "lookahead {look} vs greedy {greedy}"
        );
    }

    #[test]
    fn round_labels_mention_prefixes() {
        let mut tb = testbed();
        let mut d = dag();
        let db = TangoDb::new();
        let report = execute_batched_lookahead(&mut tb, &mut d, &db).unwrap();
        assert!(report.rounds.iter().all(|(l, _)| l.contains("prefix")));
    }
}
