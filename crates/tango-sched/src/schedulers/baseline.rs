//! The ported `Discipline` policies: Dionysus critical-path dispatch
//! and Tango's pattern ordering, expressed as [`Scheduler`] keys.
//!
//! The key encodings reproduce the original comparator exactly (higher
//! longest-path rank first, then the discipline's tie-breaks, then
//! node id), so dispatch orders — and therefore the fig 10–12
//! artifacts — are bit-identical to the pre-registry executor.

use super::{class_rank, SchedKey, Scheduler};
use crate::dag::{NodeId, RequestDag};
use simnet::time::SimTime;
use tango::db::TangoDb;

/// Dionysus: longest critical path first, FIFO (release order) among
/// ties — oblivious to op types and priority order.
#[derive(Debug, Default)]
pub struct CriticalPathScheduler {
    lp: Vec<usize>,
}

impl CriticalPathScheduler {
    /// A fresh instance (ranks are built by `prepare`).
    #[must_use]
    pub fn new() -> CriticalPathScheduler {
        CriticalPathScheduler::default()
    }
}

impl Scheduler for CriticalPathScheduler {
    fn name(&self) -> &'static str {
        "dionysus"
    }

    fn prepare(&mut self, dag: &mut RequestDag, _db: &TangoDb) {
        self.lp = dag.ranks().to_vec();
    }

    fn key(&self, _dag: &RequestDag, id: NodeId, released_at: SimTime) -> SchedKey {
        SchedKey([u64::MAX - self.lp[id.0] as u64, released_at.0, 0, 0])
    }
}

/// Tango's pattern ordering: longest critical path first, then rule-type
/// phases (del → mod → add), optionally with ascending-priority adds.
#[derive(Debug)]
pub struct TangoScheduler {
    priority_sort: bool,
    lp: Vec<usize>,
}

impl TangoScheduler {
    /// Rule-type phases only (`"tango-type"`).
    #[must_use]
    pub fn type_only() -> TangoScheduler {
        TangoScheduler {
            priority_sort: false,
            lp: Vec::new(),
        }
    }

    /// Rule-type phases plus ascending-priority adds (`"tango"`).
    #[must_use]
    pub fn type_and_priority() -> TangoScheduler {
        TangoScheduler {
            priority_sort: true,
            lp: Vec::new(),
        }
    }
}

impl Scheduler for TangoScheduler {
    fn name(&self) -> &'static str {
        if self.priority_sort {
            "tango"
        } else {
            "tango-type"
        }
    }

    fn prepare(&mut self, dag: &mut RequestDag, _db: &TangoDb) {
        self.lp = dag.ranks().to_vec();
    }

    fn key(&self, dag: &RequestDag, id: NodeId, _released_at: SimTime) -> SchedKey {
        let req = dag.node(id);
        let prio = if self.priority_sort {
            u64::from(req.effective_priority())
        } else {
            0
        };
        SchedKey([
            u64::MAX - self.lp[id.0] as u64,
            u64::from(class_rank(req.op)),
            prio,
            0,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReqElem, ReqOp};
    use ofwire::flow_match::FlowMatch;
    use ofwire::types::Dpid;

    fn three_node_dag() -> RequestDag {
        // a → b chain plus a flat delete: lp = [1, 0, 0].
        let mut dag = RequestDag::new();
        let a = dag.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(0), 900, 1));
        let b = dag.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(1), 100, 1));
        dag.add_node(ReqElem::delete(Dpid(1), FlowMatch::l3_for_id(2), 500));
        dag.add_dep(a, b);
        dag
    }

    #[test]
    fn critical_path_prefers_long_paths_then_fifo() {
        let mut dag = three_node_dag();
        let mut s = CriticalPathScheduler::new();
        s.prepare(&mut dag, &TangoDb::new());
        let t0 = SimTime(0);
        let k_a = s.key(&dag, NodeId(0), t0);
        let k_c = s.key(&dag, NodeId(2), t0);
        assert!(k_a < k_c, "longer path dispatches first");
        // FIFO among equal ranks: earlier release wins.
        let early = s.key(&dag, NodeId(2), SimTime(10));
        let late = s.key(&dag, NodeId(2), SimTime(20));
        assert!(early < late);
    }

    #[test]
    fn tango_orders_del_before_add_and_ascending_priorities() {
        let mut dag = three_node_dag();
        let mut s = TangoScheduler::type_and_priority();
        s.prepare(&mut dag, &TangoDb::new());
        let t0 = SimTime(0);
        // Same rank (0): the delete outranks the add.
        assert!(s.key(&dag, NodeId(2), t0) < s.key(&dag, NodeId(1), t0));
        // Ascending priority among adds of equal rank and class.
        let mut flat = RequestDag::new();
        let lo = flat.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(3), 10, 1));
        let hi = flat.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(4), 90, 1));
        let mut s2 = TangoScheduler::type_and_priority();
        s2.prepare(&mut flat, &TangoDb::new());
        assert!(s2.key(&flat, lo, t0) < s2.key(&flat, hi, t0));
        // Type-only ignores priorities entirely.
        let mut s3 = TangoScheduler::type_only();
        s3.prepare(&mut flat, &TangoDb::new());
        assert_eq!(s3.key(&flat, lo, t0), s3.key(&flat, hi, t0));
        let _ = ReqOp::Add;
    }
}
