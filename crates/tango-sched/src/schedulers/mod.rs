//! The pluggable scheduler portfolio.
//!
//! The online dispatcher in [`crate::executor`] is parameterized by a
//! [`Scheduler`] trait object: the scheduler ranks requests the moment
//! they join the ready frontier (via [`Scheduler::key`]) and observes
//! completions (via [`Scheduler::on_completion`]); the executor owns
//! everything else — per-switch queues, release times, the event loop.
//! Schedulers are resolved by name from the [`registry`], dslab-dag
//! style, so one experiment arm can sweep the whole portfolio.
//!
//! Entries:
//!
//! * `"dionysus"` — critical-path dispatch, ack-released (the paper's
//!   baseline; [`crate::executor::Discipline::CriticalPath`] ported).
//! * `"tango"` — critical path, then Tango's rule-type phases with
//!   ascending-priority adds; guard-time released
//!   ([`crate::executor::Discipline::TangoTypePriority`] ported).
//! * `"tango-type"` — rule-type phases only
//!   ([`crate::executor::Discipline::TangoTypeOnly`] ported).
//! * `"heft"` — HEFT-style upward rank: cost-weighted critical path
//!   using the TangoDB latency profile of each request's switch.
//! * `"dls"` — Dynamic Level Scheduling: static level minus earliest
//!   start time, largest dynamic level first.
//! * `"lookahead"` — greedy one-step lookahead: prefer the request
//!   whose completion immediately unlocks the most successors.
//!
//! ## Ranking keys, not callbacks
//!
//! A scheduler compresses its policy into a [`SchedKey`] per request,
//! fixed when the request joins the ready frontier (all predecessors
//! completed, release time final). The executor keeps each switch's
//! ready requests in an ordered set keyed by `(SchedKey, NodeId)`, so
//! picking the next request is a `first()` instead of a sort — the
//! portfolio dispatches 100k-op DAGs sub-quadratically. Keys compare
//! lexicographically; **smaller dispatches first**; the trailing
//! `NodeId` makes every ordering total and deterministic.

mod baseline;
mod classic;

pub use baseline::{CriticalPathScheduler, TangoScheduler};
pub use classic::{DlsScheduler, HeftScheduler, LookaheadScheduler};

use crate::basic::default_guard;
use crate::dag::{NodeId, RequestDag};
use crate::executor::Release;
use crate::request::ReqOp;
use simnet::time::SimTime;
use tango::db::TangoDb;

/// A scheduler's ranking of one ready request: compared
/// lexicographically, smaller first. Unused trailing words are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SchedKey(pub [u64; 4]);

/// Rule-type phase rank of Tango's del → mod → add ordering.
#[must_use]
pub fn class_rank(op: ReqOp) -> u8 {
    match op {
        ReqOp::Del => 0,
        ReqOp::Mod => 1,
        ReqOp::Add => 2,
    }
}

/// A dispatch policy over request DAGs.
///
/// Lifecycle: the executor calls [`Scheduler::prepare`] once before
/// dispatch (one `O(V + E)` pass to build static ranks), then
/// [`Scheduler::key`] exactly once per request — at the instant the
/// request joins the ready frontier — and
/// [`Scheduler::on_completion`] once per completed request, *before*
/// the keys of the requests that completion released are computed.
pub trait Scheduler {
    /// Registry name of this scheduler.
    fn name(&self) -> &'static str;

    /// One-time pass over the DAG before dispatch starts.
    fn prepare(&mut self, dag: &mut RequestDag, db: &TangoDb);

    /// Ranks a request as it joins the ready frontier; `released_at` is
    /// its final release instant. Smaller keys dispatch first.
    fn key(&self, dag: &RequestDag, id: NodeId, released_at: SimTime) -> SchedKey;

    /// Observes a completion (called before the completion's successors
    /// are keyed). Default: no-op.
    fn on_completion(&mut self, dag: &RequestDag, id: NodeId) {
        let _ = (dag, id);
    }
}

/// One registry entry: a named scheduler factory plus the release rule
/// it is designed for (Tango's guard-time release for the Tango
/// entries, ack-release for the baselines).
pub struct SchedulerEntry {
    /// Registry name (`resolve` key and sweep label).
    pub name: &'static str,
    /// The release rule this scheduler is swept with.
    pub release: Release,
    builder: fn() -> Box<dyn Scheduler>,
}

impl SchedulerEntry {
    /// Builds a fresh scheduler instance.
    #[must_use]
    pub fn build(&self) -> Box<dyn Scheduler> {
        (self.builder)()
    }
}

/// Every registered scheduler, in sweep order.
#[must_use]
pub fn registry() -> Vec<SchedulerEntry> {
    vec![
        SchedulerEntry {
            name: "dionysus",
            release: Release::Ack,
            builder: || Box::new(CriticalPathScheduler::new()),
        },
        SchedulerEntry {
            name: "tango",
            release: Release::Guard(default_guard()),
            builder: || Box::new(TangoScheduler::type_and_priority()),
        },
        SchedulerEntry {
            name: "tango-type",
            release: Release::Guard(default_guard()),
            builder: || Box::new(TangoScheduler::type_only()),
        },
        SchedulerEntry {
            name: "heft",
            release: Release::Ack,
            builder: || Box::new(HeftScheduler::new()),
        },
        SchedulerEntry {
            name: "dls",
            release: Release::Ack,
            builder: || Box::new(DlsScheduler::new()),
        },
        SchedulerEntry {
            name: "lookahead",
            release: Release::Ack,
            builder: || Box::new(LookaheadScheduler::new()),
        },
    ]
}

/// Looks a scheduler up by registry name.
#[must_use]
pub fn resolve(name: &str) -> Option<SchedulerEntry> {
    registry().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let entries = registry();
        assert!(entries.len() >= 4, "sweep needs at least four schedulers");
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "duplicate registry name");
        for entry in &entries {
            let resolved = resolve(entry.name).expect("resolvable");
            assert_eq!(resolved.name, entry.name);
            assert_eq!(resolved.release, entry.release);
            assert_eq!(resolved.build().name(), entry.name);
        }
        assert!(resolve("no-such-scheduler").is_none());
    }

    #[test]
    fn tango_entries_use_guard_release() {
        for name in ["tango", "tango-type"] {
            let e = resolve(name).unwrap();
            assert_eq!(e.release, Release::Guard(default_guard()), "{name}");
        }
        assert_eq!(resolve("dionysus").unwrap().release, Release::Ack);
    }

    #[test]
    fn keys_compare_lexicographically() {
        let a = SchedKey([1, 9, 9, 9]);
        let b = SchedKey([2, 0, 0, 0]);
        assert!(a < b);
        assert_eq!(class_rank(ReqOp::Del), 0);
        assert!(class_rank(ReqOp::Mod) < class_rank(ReqOp::Add));
    }
}
