//! Classical DAG schedulers adapted to switch-request dispatch: HEFT's
//! upward rank, Dynamic Level Scheduling, and a greedy one-step
//! lookahead comparator.
//!
//! Unlike the ported Tango/Dionysus entries, these weight the critical
//! path by *predicted per-op cost* from the TangoDB latency profile of
//! each request's switch (falling back to the conservative default for
//! never-probed switches), so a chain of slow TCAM adds outranks an
//! equally long chain of cheap deletes.

use super::{SchedKey, Scheduler};
use crate::dag::{NodeId, RequestDag};
use crate::request::ReqOp;
use simnet::time::SimTime;
use tango::db::TangoDb;

/// Predicted cost of one request in integer nanoseconds, from the
/// switch's (inferred or default) latency profile. Adds use the
/// ascending-order cost: every portfolio entry that consults costs also
/// dispatches adds ascending or in release order, never descending.
fn op_cost_ns(dag: &RequestDag, db: &TangoDb, id: NodeId) -> u64 {
    let req = dag.node(id);
    let profile = db.latency_or_default(req.location);
    let ms = match req.op {
        ReqOp::Del => profile.del_ms,
        ReqOp::Mod => profile.mod_ms,
        ReqOp::Add => profile.add_asc_ms,
    };
    (ms * 1_000_000.0) as u64
}

/// Cost-weighted upward ranks: `rank(i) = cost(i) + max rank(succ)`,
/// computed in one reverse-topological pass.
fn upward_ranks_ns(dag: &mut RequestDag, db: &TangoDb) -> Vec<u64> {
    let order = dag.topo_order().expect("DAG must be acyclic");
    let mut rank = vec![0u64; dag.len()];
    for &NodeId(i) in order.iter().rev() {
        let tail = dag
            .successors(NodeId(i))
            .iter()
            .map(|s| rank[s.0])
            .max()
            .unwrap_or(0);
        rank[i] = op_cost_ns(dag, db, NodeId(i)) + tail;
    }
    rank
}

/// HEFT-style list scheduling: highest upward rank first, FIFO among
/// ties.
#[derive(Debug, Default)]
pub struct HeftScheduler {
    urank_ns: Vec<u64>,
}

impl HeftScheduler {
    /// A fresh instance (ranks are built by `prepare`).
    #[must_use]
    pub fn new() -> HeftScheduler {
        HeftScheduler::default()
    }
}

impl Scheduler for HeftScheduler {
    fn name(&self) -> &'static str {
        "heft"
    }

    fn prepare(&mut self, dag: &mut RequestDag, db: &TangoDb) {
        self.urank_ns = upward_ranks_ns(dag, db);
    }

    fn key(&self, _dag: &RequestDag, id: NodeId, released_at: SimTime) -> SchedKey {
        SchedKey([u64::MAX - self.urank_ns[id.0], released_at.0, 0, 0])
    }
}

/// Dynamic Level Scheduling: dispatch the largest *dynamic level* —
/// static level (cost-weighted upward rank) minus earliest start time —
/// so a request's urgency decays as its release slips later.
#[derive(Debug, Default)]
pub struct DlsScheduler {
    sl_ns: Vec<u64>,
}

impl DlsScheduler {
    /// A fresh instance (levels are built by `prepare`).
    #[must_use]
    pub fn new() -> DlsScheduler {
        DlsScheduler::default()
    }
}

impl Scheduler for DlsScheduler {
    fn name(&self) -> &'static str {
        "dls"
    }

    fn prepare(&mut self, dag: &mut RequestDag, db: &TangoDb) {
        self.sl_ns = upward_ranks_ns(dag, db);
    }

    fn key(&self, _dag: &RequestDag, id: NodeId, released_at: SimTime) -> SchedKey {
        // DL = SL − release instant, signed; bias by 2^63 to order it in
        // an unsigned word (largest DL → smallest key). Both operands
        // are far below 2^62, so the bias cannot wrap.
        let dl = self.sl_ns[id.0] as i128 - released_at.0 as i128;
        let biased = ((1i128 << 63) - dl) as u64;
        SchedKey([biased, released_at.0, 0, 0])
    }
}

/// Greedy one-step lookahead: prefer the request whose completion
/// immediately unlocks the most successors (breaking ties by longest
/// path, then release order). The only portfolio entry with dynamic
/// state — `on_completion` tracks how many predecessors each node still
/// waits on.
#[derive(Debug, Default)]
pub struct LookaheadScheduler {
    lp: Vec<usize>,
    /// Predecessors not yet *completed* per node (distinct from the
    /// DAG's issue-based pending counts).
    waiting_preds: Vec<usize>,
}

impl LookaheadScheduler {
    /// A fresh instance (state is built by `prepare`).
    #[must_use]
    pub fn new() -> LookaheadScheduler {
        LookaheadScheduler::default()
    }
}

impl Scheduler for LookaheadScheduler {
    fn name(&self) -> &'static str {
        "lookahead"
    }

    fn prepare(&mut self, dag: &mut RequestDag, _db: &TangoDb) {
        self.lp = dag.ranks().to_vec();
        self.waiting_preds = (0..dag.len())
            .map(|i| dag.predecessors(NodeId(i)).len())
            .collect();
    }

    fn key(&self, dag: &RequestDag, id: NodeId, released_at: SimTime) -> SchedKey {
        // A successor with exactly one un-completed predecessor is
        // waiting only on `id` (its other predecessors must have
        // completed for `id` to be ready, and `id` itself has not):
        // completing `id` unlocks it immediately.
        let unlocks = dag
            .successors(id)
            .iter()
            .filter(|s| self.waiting_preds[s.0] == 1)
            .count() as u64;
        SchedKey([
            u64::MAX - unlocks,
            u64::MAX - self.lp[id.0] as u64,
            released_at.0,
            0,
        ])
    }

    fn on_completion(&mut self, dag: &RequestDag, id: NodeId) {
        for s in dag.successors(id) {
            self.waiting_preds[s.0] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqElem;
    use ofwire::flow_match::FlowMatch;
    use ofwire::types::Dpid;

    fn add(dag: &mut RequestDag, id: u32) -> NodeId {
        dag.add_node(ReqElem::add(Dpid(1), FlowMatch::l3_for_id(id), 100, 1))
    }

    #[test]
    fn heft_ranks_weight_costs_not_just_edges() {
        // A 2-chain of adds vs a single delete: with the default profile
        // (add 2 ms, del 2 ms) the chain's head carries more total cost.
        let mut dag = RequestDag::new();
        let a = add(&mut dag, 0);
        let b = add(&mut dag, 1);
        dag.add_dep(a, b);
        let d = dag.add_node(ReqElem::delete(Dpid(1), FlowMatch::l3_for_id(2), 500));
        let db = TangoDb::new();
        let mut s = HeftScheduler::new();
        s.prepare(&mut dag, &db);
        assert!(s.urank_ns[a.0] > s.urank_ns[d.0]);
        assert!(s.key(&dag, a, SimTime(0)) < s.key(&dag, d, SimTime(0)));
        assert_eq!(s.urank_ns[a.0], s.urank_ns[b.0] + s.urank_ns[d.0]);
    }

    #[test]
    fn dls_urgency_decays_with_later_release() {
        let mut dag = RequestDag::new();
        let a = add(&mut dag, 0);
        let mut s = DlsScheduler::new();
        s.prepare(&mut dag, &TangoDb::new());
        let early = s.key(&dag, a, SimTime(1_000));
        let late = s.key(&dag, a, SimTime(2_000_000));
        assert!(early < late, "earlier release = higher dynamic level");
    }

    #[test]
    fn lookahead_counts_immediate_unlocks() {
        // a fans out to b, c; x is a sink. Completing a unlocks two
        // nodes; completing x unlocks none.
        let mut dag = RequestDag::new();
        let a = add(&mut dag, 0);
        let b = add(&mut dag, 1);
        let c = add(&mut dag, 2);
        let x = add(&mut dag, 3);
        dag.add_dep(a, b);
        dag.add_dep(a, c);
        let mut s = LookaheadScheduler::new();
        s.prepare(&mut dag, &TangoDb::new());
        assert!(s.key(&dag, a, SimTime(0)) < s.key(&dag, x, SimTime(0)));
        // After a completes, its successors stop waiting on it.
        s.on_completion(&dag, a);
        assert_eq!(s.waiting_preds[b.0], 0);
        assert_eq!(s.waiting_preds[c.0], 0);
    }

    #[test]
    fn lookahead_sees_diamond_joins() {
        // Diamond: a, b → j. Once a completes, b's key says completing
        // b unlocks j.
        let mut dag = RequestDag::new();
        let a = add(&mut dag, 0);
        let b = add(&mut dag, 1);
        let j = add(&mut dag, 2);
        dag.add_dep(a, j);
        dag.add_dep(b, j);
        let mut s = LookaheadScheduler::new();
        s.prepare(&mut dag, &TangoDb::new());
        // Before any completion, neither unlocks j alone.
        let k_b_before = s.key(&dag, b, SimTime(0));
        s.on_completion(&dag, a);
        let k_b_after = s.key(&dag, b, SimTime(0));
        assert!(k_b_after < k_b_before, "join becomes unlockable by b");
    }
}
