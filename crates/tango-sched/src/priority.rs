//! Priority assignment from rule-dependency graphs (§7.1, Table 2).
//!
//! ACL rule sets induce dependencies: if two rules overlap, the one
//! earlier in the list must take precedence, i.e. get the *higher*
//! priority. Given those constraints (edges `(hi, lo)`: rule `hi` must
//! out-rank rule `lo`), the paper derives two assignments with the
//! algorithm from Maple \[23\]:
//!
//! * **Topological priorities** — the minimum number of distinct
//!   priority levels: rules with no mutual constraints share a level
//!   (Table 2's "Topological Priorities" column);
//! * **R priorities** — a 1-to-1 assignment (every rule gets a unique
//!   priority) that still satisfies every constraint.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A priority assignment for `n` rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityAssignment {
    /// Priority per rule index.
    pub priorities: Vec<u16>,
    /// Number of distinct priority values used.
    pub distinct: usize,
}

/// The rule-dependency constraints form a cycle: no priority assignment
/// can satisfy them ("the upper layer must break the loop"). Mirrors the
/// executor's typed [`crate::executor::ExecError`] discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicDag;

impl fmt::Display for CyclicDag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency cycle in rule set: no priority assignment can satisfy the constraints"
        )
    }
}

impl std::error::Error for CyclicDag {}

/// Computes the minimal-level (topological) assignment.
///
/// `deps` edges `(hi, lo)` require `priorities[hi] > priorities[lo]`.
/// Each rule's level is the longest constraint chain below it; the
/// number of distinct values is the DAG's height — the "minimum set of
/// priorities needed to install the rules while satisfying the
/// dependency constraints".
///
/// Errors with [`CyclicDag`] if the constraint graph has a cycle (an
/// ill-formed ACL).
pub fn topological_priorities(
    n: usize,
    deps: &[(usize, usize)],
) -> Result<PriorityAssignment, CyclicDag> {
    let order = topo_order(n, deps).ok_or(CyclicDag)?;
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(hi, lo) in deps {
        succs[hi].push(lo);
    }
    let mut level = vec![0u32; n];
    for &i in order.iter().rev() {
        for &s in &succs[i] {
            level[i] = level[i].max(level[s] + 1);
        }
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    let priorities: Vec<u16> = level.iter().map(|&l| 1 + l as u16).collect();
    Ok(PriorityAssignment {
        priorities,
        distinct: (max_level + 1) as usize,
    })
}

/// Computes a 1-to-1 ("R") assignment: unique priorities consistent with
/// every constraint, assigned by reverse topological order so the lowest
/// value goes to a constraint sink. Errors with [`CyclicDag`] on cyclic
/// constraints.
pub fn r_priorities(n: usize, deps: &[(usize, usize)]) -> Result<PriorityAssignment, CyclicDag> {
    let order = topo_order(n, deps).ok_or(CyclicDag)?;
    let mut priorities = vec![0u16; n];
    // First in topological order = most constrained from above = highest.
    for (rank, &node) in order.iter().enumerate() {
        priorities[node] = (n - rank) as u16;
    }
    Ok(PriorityAssignment {
        priorities,
        distinct: n,
    })
}

/// Kahn topological order over `(hi, lo)` edges, `None` on cycles.
fn topo_order(n: usize, deps: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut indeg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(hi, lo) in deps {
        succs[hi].push(lo);
        indeg[lo] += 1;
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    stack.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(n);
    while let Some(i) = stack.pop() {
        order.push(i);
        let mut newly = Vec::new();
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                newly.push(s);
            }
        }
        newly.sort_unstable_by(|a, b| b.cmp(a));
        stack.extend(newly);
    }
    (order.len() == n).then_some(order)
}

/// Verifies that an assignment satisfies every constraint.
#[must_use]
pub fn satisfies(priorities: &[u16], deps: &[(usize, usize)]) -> bool {
    deps.iter().all(|&(hi, lo)| priorities[hi] > priorities[lo])
}

/// An installation order for the rules: ascending by assigned priority
/// (the probed-optimal order for shift-sensitive hardware). Ties keep
/// index order.
#[must_use]
pub fn ascending_install_order(priorities: &[u16]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..priorities.len()).collect();
    idx.sort_by_key(|&i| (priorities[i], i));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::rng::DetRng;

    /// A small chain + diamond: 0 > 1 > 3, 0 > 2 > 3.
    fn diamond() -> (usize, Vec<(usize, usize)>) {
        (4, vec![(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn topological_minimizes_levels() {
        let (n, deps) = diamond();
        let t = topological_priorities(n, &deps).unwrap();
        assert!(satisfies(&t.priorities, &deps));
        assert_eq!(t.distinct, 3); // three levels: {0}, {1,2}, {3}
        assert_eq!(t.priorities[1], t.priorities[2]);
    }

    #[test]
    fn r_assignment_is_unique_and_valid() {
        let (n, deps) = diamond();
        let r = r_priorities(n, &deps).unwrap();
        assert!(satisfies(&r.priorities, &deps));
        assert_eq!(r.distinct, 4);
        let mut sorted = r.priorities.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "priorities must be 1-to-1");
    }

    #[test]
    fn no_deps_single_level() {
        let t = topological_priorities(5, &[]).unwrap();
        assert_eq!(t.distinct, 1);
        assert!(t.priorities.iter().all(|&p| p == 1));
        let r = r_priorities(5, &[]).unwrap();
        assert_eq!(r.distinct, 5);
    }

    #[test]
    fn cycle_is_a_typed_error() {
        let cycle = [(0, 1), (1, 0)];
        assert_eq!(topological_priorities(2, &cycle).unwrap_err(), CyclicDag);
        assert_eq!(r_priorities(2, &cycle).unwrap_err(), CyclicDag);
        let msg = CyclicDag.to_string();
        assert!(msg.contains("dependency cycle"), "{msg}");
    }

    #[test]
    fn random_dags_always_satisfied() {
        let mut rng = DetRng::new(14);
        for trial in 0..20 {
            let n = 30 + trial;
            // Random forward edges i -> j with i < j guarantee acyclicity.
            let mut deps = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    if rng.chance(0.08) {
                        deps.push((i, j));
                    }
                }
            }
            let t = topological_priorities(n, &deps).unwrap();
            let r = r_priorities(n, &deps).unwrap();
            assert!(satisfies(&t.priorities, &deps), "topo trial {trial}");
            assert!(satisfies(&r.priorities, &deps), "r trial {trial}");
            assert!(t.distinct <= r.distinct);
        }
    }

    #[test]
    fn ascending_order_is_a_permutation_sorted_by_priority() {
        let prios = vec![5u16, 1, 3, 1, 9];
        let order = ascending_install_order(&prios);
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
    }
}
