//! Criterion benches for the scheduler portfolio: full dispatch of
//! 1k/10k/100k-op update DAGs per registered scheduler.
//!
//! This is the regression guard for the incremental critical-path /
//! per-switch-queue claim: dispatch must scale sub-quadratically, so
//! 100k ops should cost roughly 10× the 10k run, not 100×.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ofwire::flow_match::FlowMatch;
use ofwire::types::Dpid;
use simnet::rng::DetRng;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::db::TangoDb;
use tango_sched::dag::RequestDag;
use tango_sched::executor::execute_with;
use tango_sched::request::ReqElem;
use tango_sched::schedulers::registry;

const SWITCHES: u64 = 8;

/// An add-only update DAG shaped like the sweep workload: depth-6
/// chains over 8 switches with occasional cross-chain joins.
fn build_dag(ops: usize) -> RequestDag {
    let mut rng = DetRng::new(0xBE7C);
    let mut dag = RequestDag::new();
    let mut ids = Vec::with_capacity(ops);
    for i in 0..ops {
        let dpid = Dpid(rng.index(SWITCHES as usize) as u64 + 1);
        let prio = 1000 + rng.index(2000) as u16;
        let id = dag.add_node(ReqElem::add(dpid, FlowMatch::l3_for_id(i as u32), prio, 1));
        if i % 6 != 0 {
            dag.add_dep(ids[i - 1], id);
        }
        if i > 0 && rng.chance(0.03) {
            let from = rng.index(i);
            if from != i - 1 {
                dag.add_dep(ids[from], id);
            }
        }
        ids.push(id);
    }
    dag
}

fn testbed() -> Testbed {
    let mut tb = Testbed::new(0x5EED);
    for d in 1..=SWITCHES {
        tb.attach_default(Dpid(d), SwitchProfile::ovs());
    }
    tb
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_dispatch");
    g.sample_size(3);
    for ops in [1_000usize, 10_000, 100_000] {
        let dag = build_dag(ops);
        for entry in registry() {
            g.bench_function(format!("{}_{ops}", entry.name), |b| {
                b.iter(|| {
                    let mut tb = testbed();
                    let mut d = dag.clone();
                    let mut sched = entry.build();
                    let report = execute_with(
                        &mut tb,
                        &mut d,
                        &TangoDb::new(),
                        sched.as_mut(),
                        entry.release,
                    )
                    .expect("bench DAGs are acyclic");
                    assert_eq!(report.failed, 0);
                    black_box(report.makespan)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
