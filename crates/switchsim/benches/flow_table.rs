//! Criterion benches for the `FlowTable` hot paths the strict-match
//! index and priority buckets optimize: insert, strict find, and
//! wildcard lookup, at 1k and 8k resident entries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ofwire::action::Action;
use ofwire::flow_match::FlowMatch;
use simnet::time::SimTime;
use switchsim::entry::{EntryId, FlowEntry};
use switchsim::table::FlowTable;

fn entry(i: u64) -> FlowEntry {
    FlowEntry::new(
        EntryId(i),
        FlowMatch::l3_for_id(i as u32),
        (i % 64) as u16,
        vec![Action::output(1)],
        SimTime(i),
    )
}

fn filled(n: u64) -> FlowTable {
    let mut t = FlowTable::new();
    for i in 0..n {
        t.insert(entry(i));
    }
    t
}

fn bench_flow_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_table");
    g.sample_size(20);
    for n in [1_000u64, 8_000] {
        g.bench_function(format!("insert_{n}"), |b| {
            b.iter(|| {
                let t = filled(n);
                black_box(t.len())
            })
        });
        let table = filled(n);
        g.bench_function(format!("find_strict_{n}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for i in 0..n {
                    let m = FlowMatch::l3_for_id(i as u32);
                    if table.find_strict(&m, (i % 64) as u16).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        g.bench_function(format!("lookup_{n}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for i in (0..n).step_by(7) {
                    let key = FlowMatch::key_for_id(i as u32);
                    if table.lookup(&key).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flow_table);
criterion_main!(benches);
