//! Criterion benches for the pipeline hot paths the incremental indexes
//! optimize: descending-priority adds (worst case for TCAM shift
//! counting), eviction churn through a policy-managed cache, and
//! multi-level cascades — at 1k, 8k, and 64k entries.
//!
//! Sub-linear per-op cost shows up as the per-entry time staying nearly
//! flat from `*_1000` to `*_64000`; the old O(n) scans made total fill
//! time quadratic, i.e. per-entry time grew ~64× over the same range.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ofwire::action::Action;
use ofwire::flow_match::FlowMatch;
use simnet::time::SimTime;
use switchsim::cache::CachePolicy;
use switchsim::entry::{EntryId, FlowEntry};
use switchsim::pipeline::{CacheLevel, Pipeline};
use switchsim::tcam::TcamGeometry;

const SIZES: [u64; 3] = [1_000, 8_000, 64_000];

fn entry(i: u64, priority: u16) -> FlowEntry {
    FlowEntry::new(
        EntryId(i),
        FlowMatch::l3_for_id(i as u32),
        priority,
        vec![Action::output(1)],
        SimTime(i),
    )
}

/// Fills an exactly-sized TCAM in descending priority order: every add
/// lands below all residents, so every add pays a full shift count.
fn bench_add(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_add");
    g.sample_size(10);
    for n in SIZES {
        g.bench_function(format!("descending_{n}"), |b| {
            b.iter(|| {
                let mut p = Pipeline::tcam_only(TcamGeometry::single_wide(n));
                let mut shifts = 0usize;
                for i in 0..n {
                    let prio = (n - 1 - i) as u16;
                    shifts += p.add(entry(i, prio)).expect("fits").shifts;
                }
                black_box((p.rule_count(), shifts))
            })
        });
    }
    g.finish();
}

/// Streams `n` adds through a small LRU-managed TCAM: once warm, every
/// add picks the policy-worst resident and demotes it, and periodic
/// lookups churn the eviction index with touches.
fn bench_evict(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_evict");
    g.sample_size(10);
    for n in SIZES {
        g.bench_function(format!("lru_churn_{n}"), |b| {
            b.iter(|| {
                let mut p = Pipeline::cached(TcamGeometry::single_wide(1024), CachePolicy::lru());
                for i in 0..n {
                    p.add(entry(i, 10)).expect("software level is unbounded");
                    if i % 4 == 3 {
                        // Re-touch a fixed working set: once touched, the
                        // entry's use-time outranks every future add, so
                        // the set stays TCAM-resident and every touch
                        // churns the fast level's eviction index.
                        let warm = i % 512;
                        let key = FlowMatch::key_for_id(warm as u32);
                        p.lookup_touch(&key, SimTime(n + i), 64);
                    }
                }
                black_box(p.rule_count())
            })
        });
    }
    g.finish();
}

/// Fills a three-level pipeline (two TCAMs over software) so each add
/// beyond capacity cascades: the new entry displaces level 0's worst,
/// which displaces level 1's worst, which spills to software.
fn bench_cascade(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_cascade");
    g.sample_size(10);
    for n in SIZES {
        g.bench_function(format!("three_level_{n}"), |b| {
            b.iter(|| {
                let mut p = Pipeline::PolicyCached {
                    levels: vec![
                        CacheLevel::hardware("tcam0", TcamGeometry::single_wide(512)),
                        CacheLevel::hardware("tcam1", TcamGeometry::single_wide(1024)),
                        CacheLevel::software("userspace"),
                    ],
                    policy: CachePolicy::lfu_then_fifo(),
                };
                for i in 0..n {
                    p.add(entry(i, (i % 97) as u16))
                        .expect("software level is unbounded");
                }
                black_box(p.rule_count())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_add, bench_evict, bench_cascade);
criterion_main!(benches);
