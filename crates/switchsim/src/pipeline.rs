//! Multi-level flow-table pipelines — the paper's "flow table organization
//! as a multilevel cache for the entire set of forwarding rules" (§5.1).
//!
//! Two architectures cover every switch in the paper:
//!
//! * [`Pipeline::PolicyCached`] — N levels (level 0 fastest, usually the
//!   TCAM; deeper levels software), with membership managed by a
//!   [`CachePolicy`]. FIFO policy reproduces Switch #1 (software table as
//!   a FIFO spill buffer for the TCAM); a single bounded level with no
//!   overflow reproduces Switches #2/#3 (TCAM-only, reject when full);
//!   LRU/LFU/priority/LEX-composite policies give the family Algorithm 2
//!   infers.
//! * [`Pipeline::OvsMicroflow`] — OVS: rules live in an unbounded
//!   userspace table; the first packet of each flow is processed on the
//!   slow path and clones an exact-match microflow into the kernel cache
//!   (1-to-N mapping), so later packets take the fast path.
//!
//! Lookups search levels in order and the **first covering hit wins**,
//! even if a deeper level holds a higher-priority overlapping rule. This
//! deliberately reproduces the policy-violation hazard the paper notes
//! for FIFO-managed tables.

use crate::cache::{CachePolicy, EvictionIndex};
use crate::entry::{EntryId, FlowEntry};
use crate::expiry::{expiry_reason, Expired};
use crate::table::{FlowTable, MicroflowCache};
use crate::tcam::TcamGeometry;
use ofwire::action::Action;
use ofwire::flow_match::{FlowKey, FlowMatch};
use ofwire::types::PortNo;
use simnet::time::SimTime;

/// One cache level of a policy-managed pipeline.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    /// Human-readable name (reported in table stats).
    pub name: String,
    /// Slot geometry; `None` means unbounded software.
    pub geometry: Option<TcamGeometry>,
    /// Entries currently resident at this level.
    pub table: FlowTable,
    /// Units consumed (only meaningful when `geometry` is `Some`).
    used_units: u64,
    /// Lazy victim/promotion index over `table`, keyed by the owning
    /// pipeline's policy (every `insert`/`note_touched` records the
    /// entry's key under that policy).
    evict: EvictionIndex,
}

impl CacheLevel {
    /// A bounded hardware level.
    #[must_use]
    pub fn hardware(name: impl Into<String>, geometry: TcamGeometry) -> CacheLevel {
        CacheLevel {
            name: name.into(),
            geometry: Some(geometry),
            table: FlowTable::new(),
            used_units: 0,
            evict: EvictionIndex::new(),
        }
    }

    /// An unbounded software level.
    #[must_use]
    pub fn software(name: impl Into<String>) -> CacheLevel {
        CacheLevel {
            name: name.into(),
            geometry: None,
            table: FlowTable::new(),
            used_units: 0,
            evict: EvictionIndex::new(),
        }
    }

    /// Whether an entry fits right now.
    #[must_use]
    pub fn fits(&self, e: &FlowEntry) -> bool {
        match &self.geometry {
            None => true,
            Some(g) => g.fits(self.used_units, e.kind()),
        }
    }

    /// Whether swapping `out` for `in_` keeps the level within capacity.
    #[must_use]
    fn fits_swapped(&self, out: &FlowEntry, in_: &FlowEntry) -> bool {
        match &self.geometry {
            None => true,
            Some(g) => {
                self.used_units - g.cost(out.kind()) + g.cost(in_.kind()) <= g.capacity_units
            }
        }
    }

    fn insert(&mut self, policy: &CachePolicy, e: FlowEntry) {
        if let Some(g) = &self.geometry {
            self.used_units += g.cost(e.kind());
        }
        self.evict.note(policy.sort_key(&e), e.id);
        self.table.insert(e);
        self.maybe_compact(policy);
    }

    fn remove_at(&mut self, idx: usize) -> FlowEntry {
        // The eviction index drops the entry's snapshots lazily.
        let e = self.table.remove_at(idx);
        if let Some(g) = &self.geometry {
            self.used_units -= g.cost(e.kind());
        }
        e
    }

    /// Batch removal: one mark-and-compact pass over the table instead
    /// of k positional removals that each repair every index. Returns
    /// the removed entries in descending index order; the eviction
    /// index drops their snapshots lazily.
    fn remove_indices(&mut self, idxs: Vec<usize>) -> Vec<FlowEntry> {
        let removed = self.table.remove_indices(idxs);
        if let Some(g) = &self.geometry {
            for e in &removed {
                self.used_units -= g.cost(e.kind());
            }
        }
        removed
    }

    /// Re-records the entry at `idx` after its attributes changed (its
    /// previous eviction-index snapshot just went stale).
    fn note_touched(&mut self, policy: &CachePolicy, idx: usize) {
        let e = self.table.get(idx);
        self.evict.note(policy.sort_key(e), e.id);
        self.maybe_compact(policy);
    }

    /// Rebuilds the eviction index when stale snapshots dominate, so its
    /// memory stays proportional to the level's population.
    fn maybe_compact(&mut self, policy: &CachePolicy) {
        if self.evict.len() > 8 * self.table.len() + 64 {
            self.evict.rebuild(policy, &self.table);
        }
    }

    /// Position of this level's eviction victim under `policy`; `None`
    /// when empty. O(log n) amortized via the lazy eviction index.
    pub fn worst_pos(&mut self, policy: &CachePolicy) -> Option<usize> {
        let pos = self.evict.worst(policy, &self.table);
        debug_assert_eq!(
            pos,
            policy.worst_index(&self.table.snapshot()),
            "eviction index diverged from the linear worst-victim oracle"
        );
        pos
    }

    /// Position of this level's best resident under `policy` (the
    /// backfill/promotion candidate); `None` when empty.
    pub fn best_pos(&mut self, policy: &CachePolicy) -> Option<usize> {
        let pos = self.evict.best(policy, &self.table);
        debug_assert_eq!(
            pos,
            policy.best_index(&self.table.snapshot()),
            "eviction index diverged from the linear best-candidate oracle"
        );
        pos
    }

    /// Units currently consumed.
    #[must_use]
    pub fn used_units(&self) -> u64 {
        self.used_units
    }
}

/// Result of a data-plane lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hit {
    /// Served by table level `level` (0 = fastest).
    Table {
        /// Which level matched.
        level: usize,
        /// The matching entry.
        entry: EntryId,
    },
    /// No table matched; the packet goes to the controller.
    Miss,
}

/// Result of installing a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddOutcome {
    /// Level where the new rule landed.
    pub level: usize,
    /// Whether that level is hardware-backed.
    pub hardware: bool,
    /// Entries shifted at that level to maintain priority order.
    pub shifts: usize,
    /// Id assigned to the new entry.
    pub id: EntryId,
}

/// Result of a modify operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModOutcome {
    /// Existing entries had their actions rewritten.
    Modified(usize),
    /// Nothing matched; per OpenFlow semantics the rule was added.
    AddedInstead(AddOutcome),
}

/// The error returned when every table is full (surfaced to the
/// controller as `FlowModFailed/ALL_TABLES_FULL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

/// A switch's flow-table organization.
// One `Pipeline` exists per modelled switch, never per event, so the
// inline size of the SoA-widened `FlowTable` costs nothing; boxing it
// would only add a pointer chase to every packet lookup.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Pipeline {
    /// Policy-managed multilevel cache.
    PolicyCached {
        /// Levels, fastest first.
        levels: Vec<CacheLevel>,
        /// Membership policy.
        policy: CachePolicy,
    },
    /// OVS-style userspace table + kernel microflow cache.
    OvsMicroflow {
        /// Exact-match kernel cache (level 0).
        kernel: MicroflowCache,
        /// Wildcard userspace table (level 1).
        userspace: FlowTable,
    },
}

impl Pipeline {
    /// A TCAM-only pipeline (Switches #2/#3): inserts are rejected once
    /// the TCAM is full.
    #[must_use]
    pub fn tcam_only(geometry: TcamGeometry) -> Pipeline {
        Pipeline::PolicyCached {
            levels: vec![CacheLevel::hardware("tcam", geometry)],
            policy: CachePolicy::fifo(),
        }
    }

    /// TCAM + unbounded software table managed by `policy`.
    #[must_use]
    pub fn cached(geometry: TcamGeometry, policy: CachePolicy) -> Pipeline {
        Pipeline::PolicyCached {
            levels: vec![
                CacheLevel::hardware("tcam", geometry),
                CacheLevel::software("userspace"),
            ],
            policy,
        }
    }

    /// An OVS pipeline with the given kernel-cache capacity.
    #[must_use]
    pub fn ovs(kernel_capacity: usize) -> Pipeline {
        Pipeline::OvsMicroflow {
            kernel: MicroflowCache::new(kernel_capacity),
            userspace: FlowTable::new(),
        }
    }

    /// Number of lookup levels (controller path excluded).
    #[must_use]
    pub fn level_count(&self) -> usize {
        match self {
            Pipeline::PolicyCached { levels, .. } => levels.len(),
            Pipeline::OvsMicroflow { .. } => 2,
        }
    }

    /// Total installed rules (microflow clones not counted).
    #[must_use]
    pub fn rule_count(&self) -> usize {
        match self {
            Pipeline::PolicyCached { levels, .. } => levels.iter().map(|l| l.table.len()).sum(),
            Pipeline::OvsMicroflow { userspace, .. } => userspace.len(),
        }
    }

    /// Rules resident at a given level. For OVS, level 0 counts kernel
    /// microflows.
    #[must_use]
    pub fn level_occupancy(&self, level: usize) -> usize {
        match self {
            Pipeline::PolicyCached { levels, .. } => levels.get(level).map_or(0, |l| l.table.len()),
            Pipeline::OvsMicroflow { kernel, userspace } => match level {
                0 => kernel.len(),
                1 => userspace.len(),
                _ => 0,
            },
        }
    }

    /// The level currently holding `id`, if installed.
    #[must_use]
    pub fn level_of(&self, id: EntryId) -> Option<usize> {
        match self {
            Pipeline::PolicyCached { levels, .. } => levels
                .iter()
                .enumerate()
                .find_map(|(i, l)| l.table.position_of(id).map(|_| i)),
            Pipeline::OvsMicroflow { userspace, .. } => userspace.position_of(id).map(|_| 1),
        }
    }

    /// Iterates all installed rules with their level.
    pub fn entries(&self) -> Vec<(usize, &FlowEntry)> {
        match self {
            Pipeline::PolicyCached { levels, .. } => levels
                .iter()
                .enumerate()
                .flat_map(|(i, l)| l.table.iter().map(move |e| (i, e)))
                .collect(),
            Pipeline::OvsMicroflow { userspace, .. } => userspace.iter().map(|e| (1, e)).collect(),
        }
    }

    /// Installs a rule.
    pub fn add(&mut self, entry: FlowEntry) -> Result<AddOutcome, TableFull> {
        match self {
            Pipeline::PolicyCached { levels, policy } => Self::policy_add(levels, policy, entry),
            Pipeline::OvsMicroflow { userspace, .. } => {
                let id = entry.id;
                userspace.insert(entry);
                Ok(AddOutcome {
                    level: 1,
                    hardware: false,
                    shifts: 0,
                    id,
                })
            }
        }
    }

    fn policy_add(
        levels: &mut [CacheLevel],
        policy: &CachePolicy,
        entry: FlowEntry,
    ) -> Result<AddOutcome, TableFull> {
        // Plan, without mutating tables: walk levels deciding where the
        // new entry lands and which resident entries cascade downward.
        #[derive(Clone, Copy)]
        enum Step {
            InstallHere,
            SwapWithWorst(usize), // index of evicted entry in level table
        }
        let mut steps: Vec<(usize, Step)> = Vec::new();
        // The entry "in hand" while planning; starts as (a copy of) the
        // new one and becomes each evicted entry in turn.
        let mut in_hand: FlowEntry = entry.clone();
        let mut landed = false;
        for (i, level) in levels.iter_mut().enumerate() {
            if level.fits(&in_hand) {
                steps.push((i, Step::InstallHere));
                landed = true;
                break;
            }
            let worst_idx = match level.worst_pos(policy) {
                Some(w) => w,
                None => continue, // zero-capacity level
            };
            let worst = level.table.get(worst_idx);
            let in_hand_better = policy.cmp_entries(&in_hand, worst) == std::cmp::Ordering::Greater;
            if in_hand_better && level.fits_swapped(worst, &in_hand) {
                steps.push((i, Step::SwapWithWorst(worst_idx)));
                in_hand = worst.clone();
            }
            // Otherwise the in-hand entry belongs deeper; keep walking.
        }
        if !landed {
            return Err(TableFull);
        }

        // Apply the plan. The first step concerns the *new* entry; later
        // steps move evicted entries downward. Shifts are charged where
        // the new entry physically lands: the count of already-resident
        // entries strictly above its priority at insert time, read from
        // the level's priority index just before the insert (later steps
        // only touch deeper levels, so the count never changes again).
        let new_id = entry.id;
        let new_priority = entry.priority;
        let mut carried: FlowEntry = entry;
        let mut new_entry_level = 0;
        let mut shifts = 0;
        for (level_idx, step) in steps {
            let carried_is_new = carried.id == new_id;
            match step {
                Step::InstallHere => {
                    if carried_is_new {
                        new_entry_level = level_idx;
                        shifts = levels[level_idx].table.count_above(new_priority);
                    }
                    levels[level_idx].insert(policy, carried);
                    break;
                }
                Step::SwapWithWorst(worst_idx) => {
                    let evicted = levels[level_idx].remove_at(worst_idx);
                    if carried_is_new {
                        new_entry_level = level_idx;
                        shifts = levels[level_idx].table.count_above(new_priority);
                    }
                    levels[level_idx].insert(policy, carried);
                    carried = evicted;
                }
            }
        }
        let hardware = levels[new_entry_level].geometry.is_some();
        Ok(AddOutcome {
            level: new_entry_level,
            hardware,
            shifts,
            id: new_id,
        })
    }

    /// Looks up `key`, updates the matched entry's attributes, and
    /// applies traffic-driven cache movement (promotion / microflow
    /// cloning). `bytes` is the packet size for counters.
    pub fn lookup_touch(&mut self, key: &FlowKey, now: SimTime, bytes: u64) -> Hit {
        match self {
            Pipeline::PolicyCached { levels, policy } => {
                let mut found: Option<(usize, usize)> = None;
                for (li, level) in levels.iter().enumerate() {
                    if let Some(ei) = level.table.lookup(key) {
                        found = Some((li, ei));
                        break;
                    }
                }
                let (li, ei) = match found {
                    Some(f) => f,
                    None => return Hit::Miss,
                };
                let id = {
                    let e = levels[li].table.get_mut(ei);
                    e.touch(now, bytes);
                    e.id
                };
                // The touch changed sortable attributes; refresh the
                // level's eviction-index snapshot of this entry.
                levels[li].note_touched(policy, ei);
                // Promotion: after the touch, the entry may outrank the
                // worst entry of a faster level; bubble it up one level at
                // a time (a hit at level 0 changes nothing).
                let mut cur_level = li;
                let mut cur_idx = ei;
                while cur_level > 0 {
                    let (upper, lower) = levels.split_at_mut(cur_level);
                    let up = &mut upper[cur_level - 1];
                    let lo = &mut lower[0];
                    let candidate = lo.table.get(cur_idx).clone();
                    let moved = if up.fits(&candidate) {
                        let e = lo.remove_at(cur_idx);
                        up.insert(policy, e);
                        true
                    } else {
                        match up.worst_pos(policy) {
                            Some(wi) => {
                                let worst = up.table.get(wi);
                                if policy.cmp_entries(&candidate, worst)
                                    == std::cmp::Ordering::Greater
                                    && up.fits_swapped(worst, &candidate)
                                {
                                    let demoted = up.remove_at(wi);
                                    let promoted = lo.remove_at(cur_idx);
                                    up.insert(policy, promoted);
                                    lo.insert(policy, demoted);
                                    true
                                } else {
                                    false
                                }
                            }
                            None => false,
                        }
                    };
                    if !moved {
                        break;
                    }
                    cur_level -= 1;
                    cur_idx = levels[cur_level]
                        .table
                        .position_of(id)
                        .expect("promoted entry present");
                }
                Hit::Table {
                    level: li,
                    entry: id,
                }
            }
            Pipeline::OvsMicroflow { kernel, userspace } => {
                if let Some(parent) = kernel.lookup_touch(key, now) {
                    if let Some(pi) = userspace.position_of(parent) {
                        userspace.get_mut(pi).touch(now, bytes);
                    }
                    return Hit::Table {
                        level: 0,
                        entry: parent,
                    };
                }
                match userspace.lookup(key) {
                    Some(ei) => {
                        let e = userspace.get_mut(ei);
                        e.touch(now, bytes);
                        let id = e.id;
                        // Slow-path processing clones an exact microflow
                        // into the kernel so the next packet is fast.
                        kernel.install(*key, id, now);
                        Hit::Table {
                            level: 1,
                            entry: id,
                        }
                    }
                    None => Hit::Miss,
                }
            }
        }
    }

    /// Deletes entries. Strict deletes match exactly one (match,
    /// priority); loose deletes remove everything subsumed by the filter
    /// (with optional out-port restriction). Returns the removed count.
    pub fn delete(
        &mut self,
        filter: &FlowMatch,
        priority: u16,
        strict: bool,
        out_port: PortNo,
    ) -> usize {
        match self {
            Pipeline::PolicyCached { levels, policy } => {
                let mut removed = 0;
                for level in levels.iter_mut() {
                    let idxs: Vec<usize> = if strict {
                        level
                            .table
                            .find_strict(filter, priority)
                            .into_iter()
                            .collect()
                    } else {
                        level.table.select_loose(filter, out_port)
                    };
                    removed += level.remove_indices(idxs).len();
                }
                if removed > 0 {
                    Self::backfill(levels, policy);
                }
                removed
            }
            Pipeline::OvsMicroflow { kernel, userspace } => {
                if strict {
                    // Strict deletes hit at most one entry; go straight
                    // to `remove_at` — the find/collect/remove_indices
                    // round trip would cost two Vec round-trips per op
                    // on the rotate-heavy control path.
                    match userspace.find_strict(filter, priority) {
                        Some(i) => {
                            let e = userspace.remove_at(i);
                            kernel.invalidate_parent(e.id);
                            1
                        }
                        None => 0,
                    }
                } else {
                    let idxs = userspace.select_loose(filter, out_port);
                    let removed = userspace.remove_indices(idxs);
                    for e in &removed {
                        kernel.invalidate_parent(e.id);
                    }
                    removed.len()
                }
            }
        }
    }

    /// After deletions free fast-level capacity, promote the best
    /// lower-level entries into the space (for FIFO this is exactly
    /// "the oldest entry in the software table will be pushed into TCAM
    /// whenever an empty slot is available").
    fn backfill(levels: &mut [CacheLevel], policy: &CachePolicy) {
        for upper_idx in 0..levels.len().saturating_sub(1) {
            loop {
                let (upper, lower_levels) = levels.split_at_mut(upper_idx + 1);
                let up = &mut upper[upper_idx];
                // Each deeper level's own best, then the best of those —
                // nearest level first on ties (replace only on strictly
                // better), matching the old single full scan.
                let mut bests: Vec<(usize, usize)> = Vec::new();
                for (off, lo) in lower_levels.iter_mut().enumerate() {
                    if let Some(bi) = lo.best_pos(policy) {
                        bests.push((off, bi));
                    }
                }
                let mut candidate: Option<(usize, usize)> = None;
                for &(off, bi) in &bests {
                    match candidate {
                        None => candidate = Some((off, bi)),
                        Some((coff, cbi)) => {
                            let cur = lower_levels[coff].table.get(cbi);
                            let new = lower_levels[off].table.get(bi);
                            if policy.cmp_entries(new, cur) == std::cmp::Ordering::Greater {
                                candidate = Some((off, bi));
                            }
                        }
                    }
                }
                let (off, bi) = match candidate {
                    Some(c) => c,
                    None => break,
                };
                if !up.fits(lower_levels[off].table.get(bi)) {
                    break;
                }
                let e = lower_levels[off].remove_at(bi);
                up.insert(policy, e);
            }
        }
    }

    /// Removes every entry whose idle or hard timeout has elapsed at
    /// `now`, returning the removals (for `flow_removed`
    /// notifications). Freed fast-level space is backfilled per the
    /// cache policy; microflows cloned from expired parents are
    /// invalidated.
    pub fn expire(&mut self, now: SimTime) -> Vec<Expired> {
        let mut out = Vec::new();
        match self {
            Pipeline::PolicyCached { levels, policy } => {
                for level in levels.iter_mut() {
                    // The sweep runs before every control message; levels
                    // where no resident has a timeout (the common case in
                    // inference fills) are skipped in O(1).
                    if level.table.timeout_count() == 0 {
                        continue;
                    }
                    let lapsed: Vec<(usize, _)> = (0..level.table.len())
                        .filter_map(|i| expiry_reason(level.table.get(i), now).map(|r| (i, r)))
                        .collect();
                    if lapsed.is_empty() {
                        continue;
                    }
                    let removed = level.remove_indices(lapsed.iter().map(|&(i, _)| i).collect());
                    // `remove_indices` returns descending index order;
                    // notifications go out in ascending table order like
                    // the old in-place sweep.
                    for (entry, &(_, reason)) in removed.into_iter().rev().zip(&lapsed) {
                        out.push(Expired { entry, reason });
                    }
                }
                if !out.is_empty() {
                    Self::backfill(levels, policy);
                }
            }
            Pipeline::OvsMicroflow { kernel, userspace } => {
                if userspace.timeout_count() > 0 {
                    let lapsed: Vec<(usize, _)> = (0..userspace.len())
                        .filter_map(|i| expiry_reason(userspace.get(i), now).map(|r| (i, r)))
                        .collect();
                    let removed =
                        userspace.remove_indices(lapsed.iter().map(|&(i, _)| i).collect());
                    for (entry, &(_, reason)) in removed.into_iter().rev().zip(&lapsed) {
                        kernel.invalidate_parent(entry.id);
                        out.push(Expired { entry, reason });
                    }
                }
            }
        }
        out
    }

    /// Modifies entries' actions. Per OpenFlow, a modify that matches
    /// nothing behaves as an add (the caller supplies `fallback_entry`
    /// for that case).
    pub fn modify(
        &mut self,
        filter: &FlowMatch,
        priority: u16,
        strict: bool,
        actions: &[Action],
        fallback_entry: FlowEntry,
    ) -> Result<ModOutcome, TableFull> {
        let touched = match self {
            Pipeline::PolicyCached { levels, .. } => {
                let mut touched = 0;
                for level in levels.iter_mut() {
                    let idxs: Vec<usize> = if strict {
                        level
                            .table
                            .find_strict(filter, priority)
                            .into_iter()
                            .collect()
                    } else {
                        level.table.select_loose(filter, PortNo::NONE)
                    };
                    for i in idxs {
                        level.table.get_mut(i).actions = actions.to_vec();
                        touched += 1;
                    }
                }
                touched
            }
            Pipeline::OvsMicroflow { kernel, userspace } => {
                let idxs: Vec<usize> = if strict {
                    userspace
                        .find_strict(filter, priority)
                        .into_iter()
                        .collect()
                } else {
                    userspace.select_loose(filter, PortNo::NONE)
                };
                let mut touched = 0;
                for i in idxs {
                    let e = userspace.get_mut(i);
                    e.actions = actions.to_vec();
                    kernel.invalidate_parent(e.id);
                    touched += 1;
                }
                touched
            }
        };
        if touched == 0 {
            self.add(fallback_entry).map(ModOutcome::AddedInstead)
        } else {
            Ok(ModOutcome::Modified(touched))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, fid: u32, prio: u16, now: SimTime) -> FlowEntry {
        FlowEntry::new(
            EntryId(id),
            FlowMatch::l3_for_id(fid),
            prio,
            vec![Action::output(1)],
            now,
        )
    }

    fn geometry(n: u64) -> TcamGeometry {
        TcamGeometry::double_wide(n)
    }

    #[test]
    fn tcam_only_rejects_when_full() {
        let mut p = Pipeline::tcam_only(geometry(3));
        for i in 0..3 {
            assert!(p.add(entry(i, i as u32, 1, SimTime(i))).is_ok());
        }
        assert_eq!(p.add(entry(9, 9, 1, SimTime(9))), Err(TableFull));
        assert_eq!(p.rule_count(), 3);
    }

    #[test]
    fn fifo_spill_keeps_oldest_in_tcam() {
        let mut p = Pipeline::cached(geometry(2), CachePolicy::fifo());
        for i in 0..4 {
            let out = p.add(entry(i, i as u32, 1, SimTime(i))).unwrap();
            if i < 2 {
                assert_eq!(out.level, 0, "entry {i} should land in tcam");
                assert!(out.hardware);
            } else {
                assert_eq!(out.level, 1, "entry {i} should spill to software");
                assert!(!out.hardware);
            }
        }
        assert_eq!(p.level_occupancy(0), 2);
        assert_eq!(p.level_occupancy(1), 2);
        // FIFO is traffic independent: hammering a software entry never
        // promotes it.
        for _ in 0..10 {
            let hit = p.lookup_touch(&FlowMatch::key_for_id(3), SimTime(100), 64);
            assert_eq!(
                hit,
                Hit::Table {
                    level: 1,
                    entry: EntryId(3)
                }
            );
        }
    }

    #[test]
    fn fifo_promotes_oldest_on_delete() {
        let mut p = Pipeline::cached(geometry(2), CachePolicy::fifo());
        for i in 0..4 {
            p.add(entry(i, i as u32, 1, SimTime(i))).unwrap();
        }
        // Delete a TCAM-resident entry; the oldest software entry (#2)
        // must be promoted into the freed slot.
        let removed = p.delete(&FlowMatch::l3_for_id(0), 1, false, PortNo::NONE);
        assert_eq!(removed, 1);
        assert_eq!(p.level_of(EntryId(2)), Some(0));
        assert_eq!(p.level_of(EntryId(3)), Some(1));
    }

    #[test]
    fn lru_promotes_on_traffic() {
        let mut p = Pipeline::cached(geometry(2), CachePolicy::lru());
        for i in 0..3 {
            p.add(entry(i, i as u32, 1, SimTime(i))).unwrap();
        }
        // LRU admits the new entry: id 2 (most recent use stamp) is in
        // TCAM; one of 0/1 was demoted — the LRU one, id 0.
        assert_eq!(p.level_of(EntryId(0)), Some(1));
        assert_eq!(p.level_of(EntryId(2)), Some(0));
        // Touch the software-resident entry: it must get promoted,
        // demoting the now-least-recently-used TCAM entry.
        let hit = p.lookup_touch(&FlowMatch::key_for_id(0), SimTime(100), 64);
        assert_eq!(
            hit,
            Hit::Table {
                level: 1,
                entry: EntryId(0)
            }
        );
        assert_eq!(p.level_of(EntryId(0)), Some(0));
        assert_eq!(p.level_of(EntryId(1)), Some(1));
    }

    #[test]
    fn cache_hit_does_not_change_membership() {
        // The property Algorithm 1 relies on (§5.2).
        let mut p = Pipeline::cached(geometry(2), CachePolicy::lru());
        for i in 0..4 {
            p.add(entry(i, i as u32, 1, SimTime(i))).unwrap();
        }
        let in_tcam: Vec<Option<usize>> = (0..4).map(|i| p.level_of(EntryId(i))).collect();
        // Hit a TCAM-resident entry repeatedly.
        let tcam_resident = (0..4u64)
            .find(|&i| p.level_of(EntryId(i)) == Some(0))
            .unwrap();
        for t in 0..5 {
            p.lookup_touch(
                &FlowMatch::key_for_id(tcam_resident as u32),
                SimTime(1000 + t),
                64,
            );
        }
        let after: Vec<Option<usize>> = (0..4).map(|i| p.level_of(EntryId(i))).collect();
        assert_eq!(in_tcam, after);
    }

    #[test]
    fn first_level_hit_wins_even_with_higher_priority_below() {
        // The policy-violation hazard for FIFO-managed tables (§3).
        let mut p = Pipeline::cached(geometry(1), CachePolicy::fifo());
        // Low-priority rule fills the TCAM first.
        p.add(entry(0, 7, 1, SimTime(0))).unwrap();
        // Higher-priority overlapping rule lands in software.
        let mut hi = entry(1, 7, 100, SimTime(1));
        hi.flow_match = FlowMatch::l3_for_id(7);
        p.add(hi).unwrap();
        let hit = p.lookup_touch(&FlowMatch::key_for_id(7), SimTime(2), 64);
        assert_eq!(
            hit,
            Hit::Table {
                level: 0,
                entry: EntryId(0)
            }
        );
    }

    #[test]
    fn ovs_three_tier_behaviour() {
        let mut p = Pipeline::ovs(1000);
        p.add(entry(0, 5, 1, SimTime(0))).unwrap();
        // First packet: slow path (userspace) + microflow clone.
        let first = p.lookup_touch(&FlowMatch::key_for_id(5), SimTime(10), 64);
        assert_eq!(
            first,
            Hit::Table {
                level: 1,
                entry: EntryId(0)
            }
        );
        // Second packet of the same flow: kernel fast path.
        let second = p.lookup_touch(&FlowMatch::key_for_id(5), SimTime(20), 64);
        assert_eq!(
            second,
            Hit::Table {
                level: 0,
                entry: EntryId(0)
            }
        );
        // Unknown flow: miss to controller.
        let miss = p.lookup_touch(&FlowMatch::key_for_id(99), SimTime(30), 64);
        assert_eq!(miss, Hit::Miss);
        // Parent attributes were updated through both paths.
        let (_, e) = p.entries()[0];
        assert_eq!(e.packet_count, 2);
    }

    #[test]
    fn ovs_delete_invalidates_microflows() {
        let mut p = Pipeline::ovs(1000);
        p.add(entry(0, 5, 1, SimTime(0))).unwrap();
        p.lookup_touch(&FlowMatch::key_for_id(5), SimTime(1), 64);
        assert_eq!(p.level_occupancy(0), 1);
        let removed = p.delete(&FlowMatch::l3_for_id(5), 1, false, PortNo::NONE);
        assert_eq!(removed, 1);
        assert_eq!(p.level_occupancy(0), 0);
        assert_eq!(
            p.lookup_touch(&FlowMatch::key_for_id(5), SimTime(2), 64),
            Hit::Miss
        );
    }

    #[test]
    fn modify_rewrites_actions_without_attribute_reset() {
        let mut p = Pipeline::cached(geometry(4), CachePolicy::fifo());
        p.add(entry(0, 5, 1, SimTime(0))).unwrap();
        p.lookup_touch(&FlowMatch::key_for_id(5), SimTime(7), 64);
        let out = p
            .modify(
                &FlowMatch::l3_for_id(5),
                1,
                true,
                &[Action::output(9)],
                entry(1, 5, 1, SimTime(8)),
            )
            .unwrap();
        assert_eq!(out, ModOutcome::Modified(1));
        let (_, e) = p.entries()[0];
        assert_eq!(e.actions, vec![Action::output(9)]);
        assert_eq!(e.inserted_at, SimTime(0)); // preserved
        assert_eq!(e.packet_count, 1); // preserved
    }

    #[test]
    fn modify_of_absent_rule_adds() {
        let mut p = Pipeline::cached(geometry(4), CachePolicy::fifo());
        let out = p
            .modify(
                &FlowMatch::l3_for_id(5),
                1,
                true,
                &[Action::output(9)],
                entry(0, 5, 1, SimTime(0)),
            )
            .unwrap();
        assert!(matches!(out, ModOutcome::AddedInstead(_)));
        assert_eq!(p.rule_count(), 1);
    }

    #[test]
    fn loose_delete_subsumption() {
        let mut p = Pipeline::cached(geometry(8), CachePolicy::fifo());
        for i in 0..4 {
            p.add(entry(i, i as u32, 1, SimTime(i))).unwrap();
        }
        // Wildcard delete removes everything.
        let removed = p.delete(&FlowMatch::any(), 0, false, PortNo::NONE);
        assert_eq!(removed, 4);
        assert_eq!(p.rule_count(), 0);
    }

    #[test]
    fn shifts_reported_for_descending_priority() {
        let mut p = Pipeline::tcam_only(geometry(100));
        let mut total = 0;
        for i in 0..10u16 {
            let out = p
                .add(entry(
                    u64::from(i),
                    u32::from(i),
                    100 - i,
                    SimTime(u64::from(i)),
                ))
                .unwrap();
            total += out.shifts;
        }
        assert_eq!(total, 45); // 0+1+...+9
        let mut p2 = Pipeline::tcam_only(geometry(100));
        let mut total2 = 0;
        for i in 0..10u16 {
            let out = p2
                .add(entry(u64::from(i), u32::from(i), i, SimTime(u64::from(i))))
                .unwrap();
            total2 += out.shifts;
        }
        assert_eq!(total2, 0);
    }

    #[test]
    fn lfu_promotion_requires_larger_count() {
        let mut p = Pipeline::cached(geometry(1), CachePolicy::lfu());
        p.add(entry(0, 1, 1, SimTime(0))).unwrap();
        p.add(entry(1, 2, 1, SimTime(1))).unwrap();
        // Entry 0 is in TCAM (ties broken by id). Give entry 1 traffic.
        let mut t = 10;
        for _ in 0..3 {
            p.lookup_touch(&FlowMatch::key_for_id(2), SimTime(t), 64);
            t += 1;
        }
        assert_eq!(p.level_of(EntryId(1)), Some(0));
        assert_eq!(p.level_of(EntryId(0)), Some(1));
        // Now give entry 0 more traffic than entry 1: it must come back.
        for _ in 0..5 {
            p.lookup_touch(&FlowMatch::key_for_id(1), SimTime(t), 64);
            t += 1;
        }
        assert_eq!(p.level_of(EntryId(0)), Some(0));
    }

    #[test]
    fn add_outcome_reports_landing_level_under_eviction() {
        // LRU: a new entry (freshest use time) displaces the LRU entry.
        let mut p = Pipeline::cached(geometry(1), CachePolicy::lru());
        p.add(entry(0, 1, 1, SimTime(0))).unwrap();
        let out = p.add(entry(1, 2, 1, SimTime(5))).unwrap();
        assert_eq!(out.level, 0);
        assert!(out.hardware);
        assert_eq!(p.level_of(EntryId(0)), Some(1));
    }

    #[test]
    fn three_level_pipeline_cascades() {
        let levels = vec![
            CacheLevel::hardware("tcam", geometry(1)),
            CacheLevel::hardware("kernel", geometry(1)),
            CacheLevel::software("userspace"),
        ];
        let mut p = Pipeline::PolicyCached {
            levels,
            policy: CachePolicy::lru(),
        };
        for i in 0..3 {
            p.add(entry(i, i as u32, 1, SimTime(i * 10))).unwrap();
        }
        // Newest in tcam, middle in kernel, oldest in userspace.
        assert_eq!(p.level_of(EntryId(2)), Some(0));
        assert_eq!(p.level_of(EntryId(1)), Some(1));
        assert_eq!(p.level_of(EntryId(0)), Some(2));
        // Touching the deepest entry bubbles it to the top.
        p.lookup_touch(&FlowMatch::key_for_id(0), SimTime(100), 64);
        assert_eq!(p.level_of(EntryId(0)), Some(0));
    }
}
