//! Vendor profiles: complete behavioural descriptions of the four
//! switches the paper measures, calibrated to its reported numbers.
//!
//! | profile | tables (Table 1) | path delays (Fig 2) | control costs (Fig 3) |
//! |---|---|---|---|
//! | OVS | user+kernel, unbounded | fast 3.0 ms, slow ~4.5 ms, ctrl 4.65 ms | ~55 µs/op, priority-insensitive |
//! | Switch #1 | user tables + TCAM 4K/2K, FIFO spill | fast 0.665 ms, slow 3.7 ms, ctrl 7.5 ms | shift-sensitive adds, mods ~6 ms |
//! | Switch #2 | TCAM only, 2560 fixed double-wide | fast 0.4 ms, ctrl 8 ms | shift-sensitive |
//! | Switch #3 | TCAM only, adaptive 767/369 | fast 0.5 ms, ctrl 8 ms | shift-sensitive |
//!
//! The `generic_cached` constructor builds switches with arbitrary cache
//! policies and sizes — the population Algorithms 1 and 2 are evaluated
//! against.

use crate::cache::CachePolicy;
use crate::latency::{ControlCosts, DataPathLatency};
use crate::pipeline::{CacheLevel, Pipeline};
use crate::tcam::TcamGeometry;
use ofwire::types::Dpid;
use serde::{Deserialize, Serialize};
use simnet::dist::Dist;

/// Everything needed to instantiate a simulated switch.
#[derive(Debug, Clone)]
pub struct SwitchProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Flow-table organization.
    pub pipeline: Pipeline,
    /// Control-plane operation costs.
    pub control: ControlCosts,
    /// Data-path delay model.
    pub datapath: DataPathLatency,
    /// What the switch *claims* in its features reply. Deliberately
    /// allowed to disagree with reality (§1: "the reports can be
    /// inaccurate").
    pub reported: ReportedFeatures,
    /// Whether a default (table-miss) rule is preinstalled on connect,
    /// consuming table space — observed on Switch #1, where only 2047 of
    /// 2048 double-wide TCAM slots were usable (Fig 2b).
    pub preinstalled_default_route: bool,
}

/// Self-reported feature numbers (may be wrong).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportedFeatures {
    /// Claimed number of tables.
    pub n_tables: u8,
    /// Claimed maximum entries (the headline number a naive controller
    /// would trust).
    pub max_entries: u32,
    /// Claimed packet buffers.
    pub n_buffers: u32,
}

impl SwitchProfile {
    /// Open vSwitch: unbounded software tables, traffic-driven microflow
    /// kernel caching, fast and priority-insensitive rule installation.
    #[must_use]
    pub fn ovs() -> SwitchProfile {
        SwitchProfile {
            name: "OVS".into(),
            pipeline: Pipeline::ovs(100_000),
            control: ControlCosts {
                add_base: Dist::Normal {
                    mean: 0.055,
                    std_dev: 0.004,
                },
                add_software: Dist::Normal {
                    mean: 0.055,
                    std_dev: 0.004,
                },
                shift_us: 0.0,
                mod_base: Dist::Normal {
                    mean: 0.055,
                    std_dev: 0.004,
                },
                mod_per_resident_us: 0.0,
                del_base: Dist::Normal {
                    mean: 0.045,
                    std_dev: 0.003,
                },
            },
            datapath: DataPathLatency {
                levels: vec![
                    // Kernel fast path: tight around 3.0 ms.
                    Dist::Normal {
                        mean: 3.0,
                        std_dev: 0.05,
                    },
                    // Userspace slow path: noisy around 4.5 ms (the paper
                    // attributes the variance to CPU contention while
                    // installing the kernel microflow).
                    Dist::Normal {
                        mean: 4.5,
                        std_dev: 0.35,
                    },
                ],
                controller: Dist::Normal {
                    mean: 4.65,
                    std_dev: 0.10,
                },
            },
            reported: ReportedFeatures {
                n_tables: 2,
                max_entries: u32::MAX,
                n_buffers: 256,
            },
            preinstalled_default_route: false,
        }
    }

    /// Vendor #1's hardware switch: TCAM (4K single-wide slots → 2K
    /// double-wide entries) fronted by unbounded user-space virtual
    /// tables acting as a FIFO spill buffer, shift-sensitive adds, and
    /// slow mods.
    #[must_use]
    pub fn vendor1() -> SwitchProfile {
        SwitchProfile {
            name: "Switch #1".into(),
            pipeline: Pipeline::cached(TcamGeometry::single_wide(4096), CachePolicy::fifo()),
            control: ControlCosts {
                add_base: Dist::Normal {
                    mean: 0.39,
                    std_dev: 0.03,
                },
                add_software: Dist::Normal {
                    mean: 0.39,
                    std_dev: 0.03,
                },
                // Calibrated so descending-priority insertion of 5 000
                // rules lands near the paper's ~180 s (Fig 3c) and the
                // descending/constant ratio at 2 000 rules is large.
                shift_us: 9.0,
                // Mods walk the rule tables: ~0.3 ms base plus ~1.15 µs
                // per resident rule, giving the ~6 ms/mod Fig 3b shows
                // at 5 000 rules while staying sub-millisecond on small
                // tables.
                mod_base: Dist::Normal {
                    mean: 0.3,
                    std_dev: 0.03,
                },
                mod_per_resident_us: 1.15,
                del_base: Dist::Normal {
                    mean: 1.2,
                    std_dev: 0.1,
                },
            },
            datapath: DataPathLatency {
                levels: vec![
                    Dist::Normal {
                        mean: 0.665,
                        std_dev: 0.03,
                    },
                    Dist::Normal {
                        mean: 3.7,
                        std_dev: 0.25,
                    },
                ],
                controller: Dist::Normal {
                    mean: 7.5,
                    std_dev: 0.5,
                },
            },
            reported: ReportedFeatures {
                n_tables: 2,
                // Claims the single-wide figure even when entries are
                // double-wide — an instance of inaccurate reporting.
                max_entries: 4096,
                n_buffers: 256,
            },
            preinstalled_default_route: true,
        }
    }

    /// Vendor #2's hardware switch: TCAM only, fixed double-wide mode
    /// (2560 entries regardless of entry kind), rejects when full.
    #[must_use]
    pub fn vendor2() -> SwitchProfile {
        SwitchProfile {
            name: "Switch #2".into(),
            pipeline: Pipeline::tcam_only(TcamGeometry::double_wide(2560)),
            control: ControlCosts {
                add_base: Dist::Normal {
                    mean: 0.5,
                    std_dev: 0.04,
                },
                add_software: Dist::Normal {
                    mean: 0.5,
                    std_dev: 0.04,
                },
                shift_us: 7.0,
                mod_base: Dist::Normal {
                    mean: 0.3,
                    std_dev: 0.03,
                },
                mod_per_resident_us: 1.4,
                del_base: Dist::Normal {
                    mean: 1.0,
                    std_dev: 0.08,
                },
            },
            datapath: DataPathLatency {
                levels: vec![Dist::Normal {
                    mean: 0.4,
                    std_dev: 0.03,
                }],
                controller: Dist::Normal {
                    mean: 8.0,
                    std_dev: 0.5,
                },
            },
            reported: ReportedFeatures {
                n_tables: 1,
                max_entries: 2560,
                n_buffers: 128,
            },
            preinstalled_default_route: false,
        }
    }

    /// Vendor #3's hardware switch: TCAM only, adaptive width (767
    /// single-layer entries or 369 combined).
    #[must_use]
    pub fn vendor3() -> SwitchProfile {
        SwitchProfile {
            name: "Switch #3".into(),
            pipeline: Pipeline::tcam_only(TcamGeometry::adaptive(767, 369)),
            control: ControlCosts {
                add_base: Dist::Normal {
                    mean: 0.6,
                    std_dev: 0.05,
                },
                add_software: Dist::Normal {
                    mean: 0.6,
                    std_dev: 0.05,
                },
                shift_us: 12.0,
                mod_base: Dist::Normal {
                    mean: 0.4,
                    std_dev: 0.04,
                },
                mod_per_resident_us: 1.3,
                del_base: Dist::Normal {
                    mean: 1.5,
                    std_dev: 0.1,
                },
            },
            datapath: DataPathLatency {
                levels: vec![Dist::Normal {
                    mean: 0.5,
                    std_dev: 0.04,
                }],
                controller: Dist::Normal {
                    mean: 8.0,
                    std_dev: 0.5,
                },
            },
            reported: ReportedFeatures {
                n_tables: 1,
                // Reports the single-layer figure; combined entries fit
                // far fewer (inaccurate for mixed workloads).
                max_entries: 767,
                n_buffers: 128,
            },
            preinstalled_default_route: false,
        }
    }

    /// A generic policy-cached switch: TCAM of `tcam_entries`
    /// (double-wide accounting so every entry costs one unit) over an
    /// unbounded software table, managed by `policy`. Used to evaluate
    /// the inference algorithms across the whole policy family.
    #[must_use]
    pub fn generic_cached(tcam_entries: u64, policy: CachePolicy) -> SwitchProfile {
        let mut p = SwitchProfile::vendor1();
        p.name = format!("generic({}, {})", tcam_entries, policy.describe());
        p.pipeline = Pipeline::cached(TcamGeometry::double_wide(tcam_entries), policy);
        p.preinstalled_default_route = false;
        p
    }

    /// A three-level switch (two hardware tiers + software), exhibiting
    /// the three RTT clusters of Fig 5.
    #[must_use]
    pub fn multilayer(l0_entries: u64, l1_entries: u64, policy: CachePolicy) -> SwitchProfile {
        let mut p = SwitchProfile::vendor1();
        p.name = format!(
            "multilayer({l0_entries}+{l1_entries}, {})",
            policy.describe()
        );
        p.pipeline = Pipeline::PolicyCached {
            levels: vec![
                CacheLevel::hardware("tcam", TcamGeometry::double_wide(l0_entries)),
                CacheLevel::hardware("kernel", TcamGeometry::double_wide(l1_entries)),
                CacheLevel::software("userspace"),
            ],
            policy,
        };
        // Fig 5's three clusters (in 10⁻² ms): ~20, ~50, ~140.
        p.datapath = DataPathLatency {
            levels: vec![
                Dist::Normal {
                    mean: 0.20,
                    std_dev: 0.015,
                },
                Dist::Normal {
                    mean: 0.50,
                    std_dev: 0.03,
                },
                Dist::Normal {
                    mean: 1.40,
                    std_dev: 0.08,
                },
            ],
            controller: Dist::Normal {
                mean: 8.0,
                std_dev: 0.5,
            },
        };
        p.preinstalled_default_route = false;
        p
    }

    /// The datapath id conventionally assigned to the `i`-th switch of a
    /// testbed built from this profile.
    #[must_use]
    pub fn dpid(i: u64) -> Dpid {
        Dpid(0xc0ff_ee00 + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::flow_match::EntryKind;

    #[test]
    fn table1_capacities() {
        // Switch #1: 4K single-layer, 2K combined.
        let p1 = SwitchProfile::vendor1();
        match &p1.pipeline {
            Pipeline::PolicyCached { levels, .. } => {
                let g = levels[0].geometry.unwrap();
                assert_eq!(g.capacity_for(EntryKind::L2Only), 4096);
                assert_eq!(g.capacity_for(EntryKind::L2L3), 2048);
            }
            _ => panic!("vendor1 should be policy cached"),
        }
        // Switch #2: 2560 regardless.
        let p2 = SwitchProfile::vendor2();
        match &p2.pipeline {
            Pipeline::PolicyCached { levels, .. } => {
                let g = levels[0].geometry.unwrap();
                assert_eq!(g.capacity_for(EntryKind::L2Only), 2560);
                assert_eq!(g.capacity_for(EntryKind::L2L3), 2560);
            }
            _ => panic!("vendor2 should be policy cached"),
        }
        // Switch #3: 767 / 369.
        let p3 = SwitchProfile::vendor3();
        match &p3.pipeline {
            Pipeline::PolicyCached { levels, .. } => {
                let g = levels[0].geometry.unwrap();
                assert_eq!(g.capacity_for(EntryKind::L3Only), 767);
                assert_eq!(g.capacity_for(EntryKind::L2L3), 369);
            }
            _ => panic!("vendor3 should be policy cached"),
        }
    }

    #[test]
    fn ovs_is_priority_insensitive() {
        assert_eq!(SwitchProfile::ovs().control.shift_us, 0.0);
        assert!(SwitchProfile::vendor1().control.shift_us > 0.0);
    }

    #[test]
    fn fig2_delay_ordering() {
        // Fast < slow < control for every multi-level profile.
        for p in [SwitchProfile::ovs(), SwitchProfile::vendor1()] {
            let fast = p.datapath.levels[0].mean_ms();
            let slow = p.datapath.levels[1].mean_ms();
            let ctrl = p.datapath.controller.mean_ms();
            assert!(fast < slow, "{}: fast {fast} < slow {slow}", p.name);
            assert!(slow < ctrl, "{}: slow {slow} < ctrl {ctrl}", p.name);
        }
    }

    #[test]
    fn generic_profile_policy_is_used() {
        let p = SwitchProfile::generic_cached(100, CachePolicy::lru());
        match &p.pipeline {
            Pipeline::PolicyCached { policy, levels } => {
                assert_eq!(*policy, CachePolicy::lru());
                assert_eq!(levels[0].geometry.unwrap().capacity_units, 100);
            }
            _ => panic!(),
        }
        assert!(p.name.contains("use_time"));
    }

    #[test]
    fn multilayer_has_three_levels() {
        let p = SwitchProfile::multilayer(100, 400, CachePolicy::lru());
        assert_eq!(p.pipeline.level_count(), 3);
        assert_eq!(p.datapath.levels.len(), 3);
    }
}
