//! Installed flow entries and their per-flow attributes.
//!
//! The paper's switch model (§5.1 ATTRIB) assumes cache policies operate
//! on a subset of four per-flow attributes that OpenFlow switches
//! maintain: time since insertion, time since last use, traffic count,
//! and rule priority. [`FlowEntry`] carries exactly those, updated by the
//! data plane as real packets arrive.

use ofwire::action::Action;
use ofwire::flow_match::{EntryKind, FlowMatch};
use serde::{Deserialize, Serialize};
use simnet::time::SimTime;

/// Stable identity of an installed entry (unique per switch, never
/// reused). Used as the deterministic final tie-breaker in cache-policy
/// orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntryId(pub u64);

/// One installed flow-table entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowEntry {
    /// Stable identity.
    pub id: EntryId,
    /// What the entry matches.
    pub flow_match: FlowMatch,
    /// Matching precedence (higher wins).
    pub priority: u16,
    /// Forwarding actions.
    pub actions: Vec<Action>,
    /// Controller cookie.
    pub cookie: u64,
    /// When the entry was installed (ATTRIB: insertion time).
    pub inserted_at: SimTime,
    /// When a packet last matched it (ATTRIB: use time).
    pub last_used_at: SimTime,
    /// Packets matched so far (ATTRIB: traffic count).
    pub packet_count: u64,
    /// Bytes matched so far.
    pub byte_count: u64,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
}

impl FlowEntry {
    /// Creates a fresh entry installed `now`. Its use time starts equal
    /// to the insertion time (it has never matched a packet).
    #[must_use]
    pub fn new(
        id: EntryId,
        flow_match: FlowMatch,
        priority: u16,
        actions: Vec<Action>,
        now: SimTime,
    ) -> FlowEntry {
        FlowEntry {
            id,
            flow_match,
            priority,
            actions,
            cookie: 0,
            inserted_at: now,
            last_used_at: now,
            packet_count: 0,
            byte_count: 0,
            idle_timeout: 0,
            hard_timeout: 0,
        }
    }

    /// Records a packet of `bytes` bytes matching this entry at `now`.
    pub fn touch(&mut self, now: SimTime, bytes: u64) {
        self.last_used_at = now;
        self.packet_count += 1;
        self.byte_count += bytes;
    }

    /// TCAM slot-width class of this entry's match.
    #[must_use]
    pub fn kind(&self) -> EntryKind {
        self.flow_match.entry_kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entry_attributes() {
        let t = SimTime(5);
        let e = FlowEntry::new(EntryId(1), FlowMatch::l2_for_id(3), 10, vec![], t);
        assert_eq!(e.inserted_at, t);
        assert_eq!(e.last_used_at, t);
        assert_eq!(e.packet_count, 0);
        assert_eq!(e.kind(), EntryKind::L2Only);
    }

    #[test]
    fn touch_updates_attributes() {
        let mut e = FlowEntry::new(EntryId(1), FlowMatch::l3_for_id(3), 10, vec![], SimTime(0));
        e.touch(SimTime(100), 64);
        e.touch(SimTime(200), 64);
        assert_eq!(e.last_used_at, SimTime(200));
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 128);
        assert_eq!(e.inserted_at, SimTime(0));
    }
}
