//! The OpenFlow agent: the switch's communication layer.
//!
//! Consumes raw wire bytes (framed `ofwire` messages), drives the switch,
//! and produces wire replies — so every experiment exercises the real
//! encode → frame → decode → dispatch pipeline, exactly as a hardware
//! switch's OVS-derived agent would (§2, "Communication Layer").

use crate::expiry::{Expired, RemovalReason};
use crate::pipeline::Hit;
use crate::switch::{FlowModEffect, FlowModError, Switch};
use ofwire::codec::Framer;
use ofwire::error::WireError;
use ofwire::error_msg::ErrorMsg;
use ofwire::flow_removed::{FlowRemoved, FlowRemovedReason};
use ofwire::message::Message;
use ofwire::packet::{PacketIn, PacketInReason, RawFrame};
use ofwire::stats::{DescStats, StatsBody, StatsRequestBody};
use ofwire::types::{BufferId, PortNo, Xid};
use simnet::time::{SimDuration, SimTime};

/// One output produced while processing an input message.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentOutput {
    /// Wire reply to the controller, if this message produces one.
    pub reply: Option<Message>,
    /// Xid the reply carries (echoes the request).
    pub xid: Xid,
    /// Data-plane forwarding outcome, for `packet_out`-injected frames.
    pub forwarded: Option<(Hit, SimDuration)>,
    /// Control-plane processing cost charged by this message.
    pub cost: SimDuration,
}

/// Converts an expiry record into its wire notification.
fn expired_to_msg(exp: &Expired, now: SimTime) -> FlowRemoved {
    let age = now.since(exp.entry.inserted_at);
    FlowRemoved {
        flow_match: exp.entry.flow_match,
        cookie: exp.entry.cookie,
        priority: exp.entry.priority,
        reason: match exp.reason {
            RemovalReason::IdleTimeout => FlowRemovedReason::IdleTimeout,
            RemovalReason::HardTimeout => FlowRemovedReason::HardTimeout,
        },
        duration_sec: (age.0 / 1_000_000_000) as u32,
        duration_nsec: (age.0 % 1_000_000_000) as u32,
        idle_timeout: exp.entry.idle_timeout,
        packet_count: exp.entry.packet_count,
        byte_count: exp.entry.byte_count,
    }
}

/// The switch-side protocol agent.
#[derive(Debug, Clone)]
pub struct Agent {
    switch: Switch,
    framer: Framer,
}

impl Agent {
    /// Wraps a switch in an agent.
    #[must_use]
    pub fn new(switch: Switch) -> Agent {
        Agent {
            switch,
            framer: Framer::new(),
        }
    }

    /// Read access to the underlying switch (for assertions and stats).
    #[must_use]
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Mutable access to the underlying switch (used by harnesses that
    /// inject data-plane traffic without a `packet_out`).
    pub fn switch_mut(&mut self) -> &mut Switch {
        &mut self.switch
    }

    /// Feeds raw bytes from the control channel; processes every complete
    /// message, returning outputs in order. Expired entries detected
    /// while processing surface as unsolicited `flow_removed`
    /// notifications (xid 0) appended after the triggering message.
    pub fn feed(&mut self, bytes: &[u8], now: SimTime) -> Result<Vec<AgentOutput>, WireError> {
        let mut outputs = Vec::new();
        self.feed_into(bytes, now, &mut outputs)?;
        Ok(outputs)
    }

    /// Buffer-reuse form of [`Agent::feed`]: appends outputs to a
    /// caller-provided vector instead of allocating one per call, and
    /// decodes whole frames straight from `bytes` without copying them
    /// through the framer (only trailing partial frames are buffered).
    pub fn feed_into(
        &mut self,
        bytes: &[u8],
        now: SimTime,
        outputs: &mut Vec<AgentOutput>,
    ) -> Result<(), WireError> {
        let mut input = bytes;
        while let Some((header, msg)) = self.framer.next_message_from(&mut input)? {
            outputs.push(self.dispatch(msg, header.xid, now));
            for exp in self.switch.take_expired() {
                outputs.push(AgentOutput {
                    reply: Some(Message::FlowRemoved(expired_to_msg(&exp, now))),
                    xid: Xid(0),
                    forwarded: None,
                    cost: SimDuration::ZERO,
                });
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, msg: Message, xid: Xid, now: SimTime) -> AgentOutput {
        // Every control-channel message advances the switch's notion of
        // time, so run the expiry sweep first (timeouts fire even on
        // messages that don't touch the tables, e.g. barriers).
        self.switch.expire(now);
        let mut out = AgentOutput {
            reply: None,
            xid,
            forwarded: None,
            cost: SimDuration::ZERO,
        };
        match msg {
            Message::Hello => out.reply = Some(Message::Hello),
            Message::EchoRequest(data) => out.reply = Some(Message::EchoReply(data)),
            Message::FeaturesRequest => {
                out.reply = Some(Message::FeaturesReply(self.switch.features_reply(8)));
            }
            Message::BarrierRequest => {
                // All earlier messages in this feed were already processed
                // (costs accounted); the barrier itself is free.
                out.reply = Some(Message::BarrierReply);
            }
            Message::FlowMod(fm) => {
                let (result, cost) = self.switch.apply_flow_mod(&fm, now);
                out.cost = cost;
                match result {
                    Ok(FlowModEffect::Added { .. })
                    | Ok(FlowModEffect::Modified(_))
                    | Ok(FlowModEffect::Deleted(_)) => {}
                    Err(FlowModError::TableFull) => {
                        let prefix = Message::FlowMod(fm).to_bytes(xid);
                        out.reply = Some(Message::Error(ErrorMsg::table_full(
                            prefix[..prefix.len().min(64)].to_vec(),
                        )));
                    }
                }
            }
            Message::PacketOut(po) => {
                // Parse the real frame and run it through the pipeline.
                match RawFrame::parse(&po.data, po.in_port) {
                    Ok(key) => {
                        let (hit, delay) = self.switch.inject(&key, now, po.data.len() as u64);
                        if hit == Hit::Miss {
                            // No table matched: the packet goes back up.
                            out.reply = Some(Message::PacketIn(PacketIn {
                                buffer_id: BufferId::NO_BUFFER,
                                total_len: po.data.len() as u16,
                                in_port: if po.in_port == PortNo::NONE {
                                    PortNo(1)
                                } else {
                                    po.in_port
                                },
                                reason: PacketInReason::NoMatch,
                                data: po.data,
                            }));
                        }
                        out.forwarded = Some((hit, delay));
                    }
                    Err(_) => {
                        // Unparseable frame: drop silently (as hardware
                        // would for a runt frame).
                    }
                }
            }
            Message::StatsRequest(req) => {
                let body = match req {
                    StatsRequestBody::Desc => StatsBody::Desc(DescStats {
                        mfr_desc: "tango-repro".into(),
                        hw_desc: self.switch.profile_name.clone(),
                        sw_desc: "switchsim".into(),
                        serial_num: format!("{}", self.switch.dpid.0),
                        dp_desc: self.switch.profile_name.clone(),
                    }),
                    StatsRequestBody::Flow { .. } => StatsBody::Flow(self.switch.flow_stats(now)),
                    StatsRequestBody::Aggregate { .. } => {
                        let flows = self.switch.flow_stats(now);
                        StatsBody::Aggregate(ofwire::stats::AggregateStats {
                            packet_count: flows.iter().map(|f| f.packet_count).sum(),
                            byte_count: flows.iter().map(|f| f.byte_count).sum(),
                            flow_count: flows.len() as u32,
                        })
                    }
                    StatsRequestBody::Table => StatsBody::Table(self.switch.table_stats()),
                };
                out.reply = Some(Message::StatsReply(body));
            }
            // Messages a switch never receives — plus vendor extensions
            // this agent does not implement — are ignored.
            Message::Vendor { .. }
            | Message::Error(_)
            | Message::EchoReply(_)
            | Message::FeaturesReply(_)
            | Message::PacketIn(_)
            | Message::FlowRemoved(_)
            | Message::StatsReply(_)
            | Message::BarrierReply => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::SwitchProfile;
    use ofwire::flow_match::FlowMatch;
    use ofwire::flow_mod::FlowMod;
    use ofwire::packet::PacketOut;
    use ofwire::types::Dpid;

    fn agent(profile: SwitchProfile) -> Agent {
        Agent::new(Switch::new(profile, Dpid(9), 7))
    }

    fn feed_one(a: &mut Agent, msg: Message, xid: u32, now: SimTime) -> Vec<AgentOutput> {
        a.feed(&msg.to_bytes(Xid(xid)), now).unwrap()
    }

    #[test]
    fn hello_echo_features() {
        let mut a = agent(SwitchProfile::ovs());
        let out = feed_one(&mut a, Message::Hello, 1, SimTime(0));
        assert_eq!(out[0].reply, Some(Message::Hello));
        let out = feed_one(&mut a, Message::EchoRequest(vec![1, 2]), 2, SimTime(0));
        assert_eq!(out[0].reply, Some(Message::EchoReply(vec![1, 2])));
        let out = feed_one(&mut a, Message::FeaturesRequest, 3, SimTime(0));
        assert!(matches!(out[0].reply, Some(Message::FeaturesReply(_))));
        assert_eq!(out[0].xid, Xid(3));
    }

    #[test]
    fn flow_mod_charges_cost_and_barrier_replies() {
        let mut a = agent(SwitchProfile::vendor1());
        let fm = Message::FlowMod(FlowMod::add(FlowMatch::l3_for_id(1), 10));
        let out = feed_one(&mut a, fm, 4, SimTime(0));
        assert!(out[0].reply.is_none(), "successful add is silent");
        assert!(out[0].cost > SimDuration::ZERO);
        let out = feed_one(&mut a, Message::BarrierRequest, 5, SimTime(1));
        assert_eq!(out[0].reply, Some(Message::BarrierReply));
        assert_eq!(out[0].cost, SimDuration::ZERO);
    }

    #[test]
    fn table_full_produces_error_reply() {
        let mut a = agent(SwitchProfile::vendor3());
        let mut got_error = false;
        for i in 0..1000u32 {
            let fm = Message::FlowMod(FlowMod::add(FlowMatch::l2l3_for_id(i), 10));
            let out = feed_one(&mut a, fm, i, SimTime(u64::from(i)));
            if let Some(Message::Error(e)) = &out[0].reply {
                assert!(e.is_table_full());
                assert_eq!(out[0].xid, Xid(i));
                assert_eq!(i, 369, "vendor3 holds exactly 369 L2+L3 entries");
                got_error = true;
                break;
            }
        }
        assert!(got_error);
    }

    #[test]
    fn packet_out_forwards_or_punts() {
        let mut a = agent(SwitchProfile::vendor2());
        let fm = Message::FlowMod(FlowMod::add(FlowMatch::l3_for_id(7), 10));
        feed_one(&mut a, fm, 1, SimTime(0));
        // Matching frame: forwarded, no packet_in.
        let frame = RawFrame::build(&FlowMatch::key_for_id(7), 0);
        let po = Message::PacketOut(PacketOut::send(frame, PortNo(1)));
        let out = feed_one(&mut a, po, 2, SimTime(1));
        assert!(out[0].reply.is_none());
        let (hit, delay) = out[0].forwarded.unwrap();
        assert!(matches!(hit, Hit::Table { level: 0, .. }));
        assert!(delay > SimDuration::ZERO);
        // Non-matching frame: punted to the controller as packet_in.
        let frame = RawFrame::build(&FlowMatch::key_for_id(8), 0);
        let po = Message::PacketOut(PacketOut::send(frame, PortNo(1)));
        let out = feed_one(&mut a, po, 3, SimTime(2));
        assert!(matches!(out[0].reply, Some(Message::PacketIn(_))));
        assert_eq!(
            out[0].forwarded,
            Some((Hit::Miss, out[0].forwarded.unwrap().1))
        );
    }

    #[test]
    fn stats_round_trip_through_wire() {
        let mut a = agent(SwitchProfile::ovs());
        feed_one(
            &mut a,
            Message::FlowMod(FlowMod::add(FlowMatch::l3_for_id(1), 10)),
            1,
            SimTime(0),
        );
        let out = feed_one(
            &mut a,
            Message::StatsRequest(StatsRequestBody::all_flows()),
            2,
            SimTime(1),
        );
        match &out[0].reply {
            Some(Message::StatsReply(StatsBody::Flow(entries))) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].priority, 10);
            }
            other => panic!("expected flow stats, got {other:?}"),
        }
        let out = feed_one(
            &mut a,
            Message::StatsRequest(StatsRequestBody::Table),
            3,
            SimTime(2),
        );
        assert!(matches!(
            out[0].reply,
            Some(Message::StatsReply(StatsBody::Table(_)))
        ));
    }

    #[test]
    fn pipelined_messages_in_one_feed() {
        let mut a = agent(SwitchProfile::ovs());
        let mut bytes = Vec::new();
        for i in 0..5u32 {
            bytes.extend(
                Message::FlowMod(FlowMod::add(FlowMatch::l3_for_id(i), 10)).to_bytes(Xid(i)),
            );
        }
        bytes.extend(Message::BarrierRequest.to_bytes(Xid(99)));
        let out = a.feed(&bytes, SimTime(0)).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out[5].reply, Some(Message::BarrierReply));
        assert_eq!(a.switch().rule_count(), 5);
    }
}

#[cfg(test)]
mod expiry_tests {
    use super::*;
    use crate::profiles::SwitchProfile;
    use ofwire::flow_match::FlowMatch;
    use ofwire::flow_mod::FlowMod;
    use ofwire::types::Dpid;

    #[test]
    fn hard_timeout_emits_flow_removed_over_wire() {
        let mut a = Agent::new(Switch::new(SwitchProfile::vendor2(), Dpid(3), 1));
        let mut fm = FlowMod::add(FlowMatch::l3_for_id(1), 50);
        fm.hard_timeout = 2; // seconds
        fm.cookie = 0xfeed;
        a.feed(&Message::FlowMod(fm).to_bytes(Xid(1)), SimTime::ZERO)
            .unwrap();
        assert_eq!(a.switch().rule_count(), 1);
        // Any later message triggers the lazy expiry sweep.
        let later = SimTime::ZERO + SimDuration::from_secs(3);
        let outs = a
            .feed(&Message::BarrierRequest.to_bytes(Xid(2)), later)
            .unwrap();
        assert_eq!(a.switch().rule_count(), 0);
        let removed = outs
            .iter()
            .find_map(|o| match &o.reply {
                Some(Message::FlowRemoved(fr)) => Some(fr.clone()),
                _ => None,
            })
            .expect("flow_removed notification");
        assert_eq!(removed.cookie, 0xfeed);
        assert_eq!(removed.reason, FlowRemovedReason::HardTimeout);
        assert_eq!(removed.duration_sec, 3);
    }

    #[test]
    fn idle_timeout_survives_while_trafficked() {
        let mut sw = Switch::new(SwitchProfile::vendor2(), Dpid(3), 1);
        let mut fm = FlowMod::add(FlowMatch::l3_for_id(1), 50);
        fm.idle_timeout = 2;
        sw.apply_flow_mod(&fm, SimTime::ZERO).0.unwrap();
        // Keep the flow warm every second: it never idles out.
        let key = FlowMatch::key_for_id(1);
        for s in 1..6 {
            sw.inject(&key, SimTime::ZERO + SimDuration::from_secs(s), 64);
            assert_eq!(sw.rule_count(), 1, "t={s}s");
        }
        // Go quiet for 2 s: it expires.
        sw.expire(SimTime::ZERO + SimDuration::from_secs(8));
        assert_eq!(sw.rule_count(), 0);
        let exp = sw.take_expired();
        assert_eq!(exp.len(), 1);
        assert_eq!(exp[0].reason, crate::expiry::RemovalReason::IdleTimeout);
        assert_eq!(exp[0].entry.packet_count, 5);
    }

    #[test]
    fn expiry_frees_tcam_capacity() {
        // Fill a TCAM-only switch with short-lived rules; once they
        // expire, new rules fit again.
        let mut sw = Switch::new(SwitchProfile::vendor3(), Dpid(4), 2);
        for i in 0..767u32 {
            let mut fm = FlowMod::add(FlowMatch::l3_for_id(i), 50);
            fm.hard_timeout = 1;
            sw.apply_flow_mod(&fm, SimTime::ZERO).0.unwrap();
        }
        // Table full right now…
        let (res, _) = sw.apply_flow_mod(&FlowMod::add(FlowMatch::l3_for_id(9999), 50), SimTime(1));
        assert!(res.is_err());
        // …but after the timeout everything fits again.
        let later = SimTime::ZERO + SimDuration::from_secs(2);
        let (res, _) = sw.apply_flow_mod(&FlowMod::add(FlowMatch::l3_for_id(9999), 50), later);
        assert!(res.is_ok());
        assert_eq!(sw.rule_count(), 1);
        assert_eq!(sw.take_expired().len(), 767);
    }

    #[test]
    fn fifo_backfills_after_expiry() {
        // Expiring TCAM residents promotes the oldest software entries.
        let mut sw = Switch::new(
            SwitchProfile::generic_cached(2, crate::cache::CachePolicy::fifo()),
            Dpid(5),
            3,
        );
        // Two TCAM residents with a hard timeout; two spilled without.
        for i in 0..4u32 {
            let mut fm = FlowMod::add(FlowMatch::l3_for_id(i), 50);
            if i < 2 {
                fm.hard_timeout = 1;
            }
            sw.apply_flow_mod(&fm, SimTime(u64::from(i))).0.unwrap();
        }
        sw.expire(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(sw.rule_count(), 2);
        assert_eq!(sw.level_occupancy(0), 2, "survivors promoted to TCAM");
    }
}
