//! The testbed harness: one or more agent-wrapped switches behind
//! latency-modelled control channels, driven by a single event-driven
//! core inside one `simnet` simulator.
//!
//! The testbed is the in-memory implementation of
//! [`ControlPath`]: operations are submitted
//! with a controller-side ready time, traverse the per-switch control
//! link (FIFO, jittered), serialize on the switch's control CPU, and
//! surface as typed [`Completion`] events in virtual-time order. The
//! classic synchronous calls (`flow_mod`, `batch`, `probe`, `echo`) are
//! thin adapters over that core: submit, wait for the token, warp the
//! shared clock to the ack.
//!
//! Because the core is one event loop over one simulator, many switches
//! make progress in interleaved virtual time — the property the
//! network-wide schedulers and concurrent inference both rely on.
//!
//! # Hot-path wiring
//!
//! Switches live in a dense `Vec<Attached>` and every simulator event
//! carries the switch's `u32` index, so the per-event dispatch is an
//! array access — the `Dpid → switch` map is consulted only at the
//! public API boundary (attach/submit), never inside the event loop.
//! Completions land in a `CompletionRing` addressed by the globally
//! monotonic token number (`token - base` is the slot), so `wait_for`
//! is O(1) instead of a scan, while a delivery-order queue preserves
//! the time-ordered stream `next_completion` hands out. Encoded wire
//! buffers recycle through a spare pool: steady state allocates
//! nothing per op.

use crate::agent::{Agent, AgentOutput};
use crate::chan::{self, ChanCodec, OpKind};
use crate::control::{Completion, ControlOp, ControlPath, OpOutcome, OpToken};
use crate::pipeline::Hit;
use crate::profiles::SwitchProfile;
use crate::switch::{DataPathStats, Switch};
use ofwire::flow_match::FlowKey;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::link::Link;
use simnet::rng::DetRng;
use simnet::sim::Simulator;
use simnet::telemetry::{
    switch_track, Recorder, SpanId, Telemetry, TRACK_CONTROLLER, TRACK_SCHEDULER,
};
use simnet::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

pub use crate::control::OpResult;

/// An operation travelling the control path: encoded at submit time
/// (frames built, xids assigned, link latencies drawn) so the wire
/// behaviour is fixed the moment the controller lets go of it.
#[derive(Clone)]
struct PendingOp {
    token: OpToken,
    kind: OpKind,
    /// Encoded wire bytes for the whole operation (pooled: returned to
    /// the testbed's spare-buffer stack once the agent has consumed it).
    bytes: Vec<u8>,
    /// Forward (controller → switch) link latency.
    up: SimDuration,
    /// Return (switch → controller) link latency; zero for probes,
    /// whose reply rides the measured forwarding outcome.
    down: SimDuration,
}

/// An operation occupying the switch's control CPU, with its completion
/// already computed (the agent ran when processing started).
#[derive(Clone)]
struct InFlight {
    token: OpToken,
    done_at: SimTime,
    acked_at: SimTime,
    outcome: OpOutcome,
    /// The op's telemetry span, opened when processing began; `None`
    /// when telemetry is off.
    span: Option<SpanId>,
}

/// One switch attached to the testbed.
#[derive(Clone)]
struct Attached {
    dpid: Dpid,
    agent: Agent,
    ctrl_link: Link,
    /// Per-switch latency stream, forked once at attach so a switch's
    /// jitter depends only on its own operation history — the property
    /// that makes concurrent multi-switch runs reproduce sequential
    /// ones.
    rng: DetRng,
    /// Xid assignment and barrier bookkeeping, shared wire discipline
    /// with the real-TCP transport (see [`crate::chan`]).
    codec: ChanCodec,
    /// Submitted ops whose arrival event has not fired yet (FIFO: the
    /// control channel is an ordered stream).
    incoming: VecDeque<PendingOp>,
    /// Arrived ops waiting for the control CPU.
    waiting: VecDeque<PendingOp>,
    /// The op being processed, if any.
    current: Option<InFlight>,
    /// Latest arrival so far — arrivals are clamped monotone to model
    /// in-order delivery.
    last_arrival: SimTime,
    /// Latest completion (`done_at`) observed on this switch.
    quiet_at: SimTime,
}

/// Events the testbed's simulator carries. The payload is the dense
/// switch index, so handling an event never touches the dpid map.
#[derive(Clone, Copy)]
enum CtrlEvent {
    /// The front of `incoming` reaches the switch.
    Arrive(u32),
    /// The current op finishes processing.
    Done(u32),
}

/// One completion slot in the ring.
#[derive(Clone)]
enum RingSlot {
    /// No completion delivered for this token yet.
    Pending,
    /// Delivered, awaiting pickup.
    Ready(Completion),
    /// Picked up out of delivery order by `wait_for`.
    Taken,
}

/// Flat completion storage addressed by token number.
///
/// Tokens are minted by one global counter, so `token - base` indexes a
/// ring of slots; `wait_for(token)` is a bounds check plus an array
/// read. A separate queue records tokens in the order their completions
/// were delivered (virtual-time order), so `next_completion` preserves
/// the stream semantics of the old FIFO; entries taken early by
/// `wait_for` leave a `Taken` tombstone the queue skips. The front of
/// the ring compacts as prefixes drain, keeping its footprint at the
/// outstanding-op span.
#[derive(Clone, Default)]
struct CompletionRing {
    /// Token number of `slots[0]`.
    base: u64,
    slots: VecDeque<RingSlot>,
    /// Tokens in completion-delivery order.
    delivered: VecDeque<OpToken>,
}

impl CompletionRing {
    /// Records a delivered completion.
    fn push(&mut self, c: Completion) {
        let token = c.token;
        let idx = (token.0 - self.base) as usize;
        while self.slots.len() <= idx {
            self.slots.push_back(RingSlot::Pending);
        }
        self.slots[idx] = RingSlot::Ready(c);
        self.delivered.push_back(token);
    }

    /// Takes the completion for `token` if it has been delivered and
    /// not yet picked up.
    fn take(&mut self, token: OpToken) -> Option<Completion> {
        let idx = usize::try_from(token.0.checked_sub(self.base)?).expect("token offset");
        let slot = self.slots.get_mut(idx)?;
        if !matches!(slot, RingSlot::Ready(_)) {
            return None;
        }
        let RingSlot::Ready(c) = std::mem::replace(slot, RingSlot::Taken) else {
            unreachable!("matched Ready above");
        };
        while matches!(self.slots.front(), Some(RingSlot::Taken)) {
            self.slots.pop_front();
            self.base += 1;
        }
        Some(c)
    }

    /// Next completion in delivery order, skipping tombstones.
    fn pop_delivered(&mut self) -> Option<Completion> {
        while let Some(token) = self.delivered.pop_front() {
            if let Some(c) = self.take(token) {
                return Some(c);
            }
        }
        None
    }
}

/// A multi-switch testbed with a shared virtual clock.
///
/// `Clone` produces an independent testbed with identical state and
/// RNG positions: driving the clone through an op sequence yields
/// byte-identical behaviour to driving a freshly built original — what
/// lets experiment sweeps build one lowered world and fan clones out
/// per scheduler.
#[derive(Clone)]
pub struct Testbed {
    sim: Simulator<CtrlEvent>,
    /// Dense switch storage; event payloads index into this.
    switches: Vec<Attached>,
    /// Public-API boundary map: dpid → dense index (also fixes the
    /// sorted order `dpids()` reports).
    index: BTreeMap<Dpid, u32>,
    rng: DetRng,
    next_token: u64,
    /// Completions delivered by the event core, awaiting pickup.
    ring: CompletionRing,
    /// Scratch for agent outputs, reused across every `begin` so the
    /// control channel does not allocate a vector per op.
    agent_outs: Vec<AgentOutput>,
    /// Retired wire buffers awaiting reuse by `encode`.
    spare_bufs: Vec<Vec<u8>>,
    /// Per-testbed telemetry: disabled (a null option) unless
    /// [`Testbed::enable_telemetry`] was called, in which case op spans
    /// and dispatch metrics record here — along with everything the
    /// layers above emit through [`ControlPath::telemetry_mut`].
    telemetry: Telemetry,
}

impl Testbed {
    /// An empty testbed. `seed` drives link jitter.
    #[must_use]
    pub fn new(seed: u64) -> Testbed {
        Testbed {
            sim: Simulator::new(),
            switches: Vec::new(),
            index: BTreeMap::new(),
            rng: DetRng::new(seed),
            next_token: 0,
            ring: CompletionRing::default(),
            agent_outs: Vec::new(),
            spare_bufs: Vec::new(),
            telemetry: Telemetry::off(),
        }
    }

    /// Switches this testbed's telemetry on: a fresh recorder collects
    /// op spans, dispatch metrics, and whatever the layers above emit.
    /// Telemetry observes — it never draws randomness or alters event
    /// timing — so results are identical with it on or off.
    pub fn enable_telemetry(&mut self) {
        self.telemetry = Telemetry::recording();
    }

    /// The testbed's telemetry handle (disabled by default; every method
    /// on a disabled handle is a no-op).
    pub fn telemetry(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Closes out telemetry: snapshots per-switch data-path stats and
    /// simulator/calendar-queue counters into the registry, labels the
    /// export tracks, closes any still-open spans at the current virtual
    /// time, and detaches the recorder. Returns `None` when telemetry
    /// was never enabled.
    pub fn finish_recorder(&mut self) -> Option<Box<Recorder>> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        let mut agg = DataPathStats::default();
        for att in &self.switches {
            let s = att.agent.switch().stats();
            agg.adds_hw += s.adds_hw;
            agg.adds_sw += s.adds_sw;
            agg.add_rejects += s.add_rejects;
            agg.tcam_shift_units += s.tcam_shift_units;
            agg.mods += s.mods;
            agg.deleted_rules += s.deleted_rules;
            agg.expired_rules += s.expired_rules;
            agg.lookups += s.lookups;
            agg.fast_hits += s.fast_hits;
            agg.slow_hits += s.slow_hits;
            agg.misses += s.misses;
        }
        let t = &mut self.telemetry;
        t.count("pipeline/adds_hw", agg.adds_hw);
        t.count("pipeline/adds_sw", agg.adds_sw);
        t.count("pipeline/add_rejects", agg.add_rejects);
        t.count("pipeline/tcam_shift_units", agg.tcam_shift_units);
        t.count("pipeline/mods", agg.mods);
        t.count("pipeline/deleted_rules", agg.deleted_rules);
        t.count("pipeline/expired_rules", agg.expired_rules);
        t.count("pipeline/lookups", agg.lookups);
        t.count("pipeline/fast_hits", agg.fast_hits);
        t.count("pipeline/slow_hits", agg.slow_hits);
        t.count("pipeline/misses", agg.misses);
        t.count("sim/events", self.sim.events_processed());
        let qs = self.sim.queue_stats();
        t.count("sim/cq_overflow_pushes", qs.overflow_pushes);
        t.count("sim/cq_rebuilds", qs.rebuilds);
        t.gauge_max("sim/cq_buckets", qs.buckets);
        t.gauge_max("sim/cq_overflow_pending", qs.overflow_pending);
        let now = self.sim.now();
        let mut rec = self.telemetry.take()?;
        rec.close_all(now);
        rec.name_track(TRACK_CONTROLLER, "controller");
        rec.name_track(TRACK_SCHEDULER, "scheduler");
        for (i, att) in self.switches.iter().enumerate() {
            let track = switch_track(u32::try_from(i).expect("switch count fits u32"));
            rec.name_track(track, format!("switch {i} (dpid {})", att.dpid.0));
        }
        Some(rec)
    }

    /// Attaches a switch built from `profile` behind `ctrl_link`.
    pub fn attach(&mut self, dpid: Dpid, profile: SwitchProfile, ctrl_link: Link) {
        let (seed, link_rng) = chan::attach_streams(&mut self.rng, dpid);
        let switch = Switch::new(profile, dpid, seed);
        let now = self.sim.now();
        let idx = u32::try_from(self.switches.len()).expect("switch count fits u32");
        let prev = self.index.insert(dpid, idx);
        assert!(prev.is_none(), "dpid {dpid:?} attached twice");
        self.switches.push(Attached {
            dpid,
            agent: Agent::new(switch),
            ctrl_link,
            rng: link_rng,
            codec: ChanCodec::new(),
            incoming: VecDeque::new(),
            waiting: VecDeque::new(),
            current: None,
            last_arrival: now,
            quiet_at: now,
        });
    }

    /// Attaches with the default low-latency control channel (0.1 ms one
    /// way — a directly connected management port).
    pub fn attach_default(&mut self, dpid: Dpid, profile: SwitchProfile) {
        self.attach(dpid, profile, Link::control_channel(0.1));
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Advances the shared clock (e.g. to model controller think time).
    pub fn advance(&mut self, d: SimDuration) {
        self.sim.advance(d);
    }

    /// Datapath ids attached, in order.
    #[must_use]
    pub fn dpids(&self) -> Vec<Dpid> {
        self.index.keys().copied().collect()
    }

    /// Dense index for `dpid`.
    fn idx(&self, dpid: Dpid) -> u32 {
        *self.index.get(&dpid).expect("unknown dpid")
    }

    /// Read access to a switch.
    #[must_use]
    pub fn switch(&self, dpid: Dpid) -> &Switch {
        self.switches[self.idx(dpid) as usize].agent.switch()
    }

    /// Encodes `op` into wire bytes on the channel of the switch at
    /// `idx`, assigning xids and drawing both link latencies from the
    /// switch's own stream.
    fn encode(&mut self, idx: u32, op: ControlOp) -> PendingOp {
        let token = OpToken(self.next_token);
        self.next_token += 1;
        let mut bytes = self.spare_bufs.pop().unwrap_or_default();
        bytes.clear();
        let att = &mut self.switches[idx as usize];
        let dpid = att.dpid;
        let kind = att.codec.encode_op(op, &mut bytes);
        let (up, down) =
            chan::draw_latencies(&att.ctrl_link, &mut att.rng, dpid, kind, bytes.len());
        PendingOp {
            token,
            kind,
            bytes,
            up,
            down,
        }
    }

    /// Begins processing `op` on the switch at `idx` at time `start`:
    /// runs the agent, derives the completion, and schedules its `Done`
    /// event. The op's wire buffer retires to the spare pool.
    fn begin(&mut self, idx: u32, op: PendingOp, start: SimTime) {
        let span_name = match op.kind {
            OpKind::FlowMod => "flow_mod",
            OpKind::Batch { .. } => "batch",
            OpKind::Probe => "probe",
            OpKind::Echo { .. } => "echo",
        };
        let span = self
            .telemetry
            .span_begin(switch_track(idx), span_name, start);
        // Reuse one scratch vector for agent outputs across all ops.
        let mut outs = std::mem::take(&mut self.agent_outs);
        outs.clear();
        let att = &mut self.switches[idx as usize];
        att.agent
            .feed_into(&op.bytes, start, &mut outs)
            .expect("well-formed frame");
        let (duration, outcome) = chan::op_completion(op.kind, &outs, att.codec.barriers_mut());
        let done_at = start + duration;
        att.current = Some(InFlight {
            token: op.token,
            done_at,
            acked_at: done_at + op.down,
            outcome,
            span,
        });
        self.agent_outs = outs;
        self.spare_bufs.push(op.bytes);
        self.sim.schedule_at(done_at, CtrlEvent::Done(idx));
    }

    /// Processes one simulator event.
    fn handle(&mut self, at: SimTime, ev: CtrlEvent) {
        match ev {
            CtrlEvent::Arrive(idx) => {
                let att = &mut self.switches[idx as usize];
                let op = att
                    .incoming
                    .pop_front()
                    .expect("arrival event without a pending op");
                if att.current.is_some() {
                    att.waiting.push_back(op);
                    // Depth counts the op on the CPU plus everyone queued.
                    let depth = att.waiting.len() as f64 + 1.0;
                    self.telemetry.observe("switch/queue_depth", depth);
                } else {
                    self.telemetry.observe("switch/queue_depth", 1.0);
                    self.begin(idx, op, at);
                }
            }
            CtrlEvent::Done(idx) => {
                let att = &mut self.switches[idx as usize];
                let inflight = att.current.take().expect("done event without an op");
                att.quiet_at = att.quiet_at.max(inflight.done_at);
                let next = att.waiting.pop_front();
                self.telemetry.span_end(inflight.span, inflight.done_at);
                self.telemetry.count("switch/ops_done", 1);
                self.ring.push(Completion {
                    token: inflight.token,
                    dpid: att.dpid,
                    done_at: inflight.done_at,
                    acked_at: inflight.acked_at,
                    outcome: inflight.outcome,
                });
                if let Some(op) = next {
                    self.begin(idx, op, at);
                }
            }
        }
    }

    /// Synchronously applies one flow-mod: send → process → barrier-ack.
    /// Advances the clock by the full round trip and returns the result
    /// and the elapsed time.
    pub fn flow_mod(&mut self, dpid: Dpid, fm: FlowMod) -> (OpResult, SimDuration) {
        let start = self.sim.now();
        let token = self.submit(dpid, ControlOp::FlowMod(fm), start);
        let c = self.wait_for(token);
        self.warp_to(c.acked_at);
        let result = match c.outcome {
            OpOutcome::FlowMod(r) => r,
            _ => unreachable!("flow-mod submit yields a flow-mod outcome"),
        };
        (result, c.acked_at.since(start))
    }

    /// Synchronously applies a batch of flow-mods followed by a barrier
    /// (the paper's installation-time measurement methodology). Messages
    /// are pipelined: one upstream latency, serial processing, one
    /// downstream latency. Returns (successes, failures, elapsed).
    pub fn batch(&mut self, dpid: Dpid, fms: Vec<FlowMod>) -> (usize, usize, SimDuration) {
        let start = self.sim.now();
        let token = self.submit(dpid, ControlOp::Batch(fms), start);
        let c = self.wait_for(token);
        self.warp_to(c.acked_at);
        let (ok, failed) = match c.outcome {
            OpOutcome::Batch { ok, failed } => (ok, failed),
            _ => unreachable!("batch submit yields a batch outcome"),
        };
        (ok, failed, c.acked_at.since(start))
    }

    /// Sends a probe frame matching `key` through the switch's data
    /// plane via `packet_out`, returning where it was served and the
    /// measured RTT (generator link + forwarding delay). Advances the
    /// clock by the RTT.
    pub fn probe(&mut self, dpid: Dpid, key: &FlowKey) -> (Hit, SimDuration) {
        let start = self.sim.now();
        let token = self.submit(dpid, ControlOp::Probe(*key), start);
        let c = self.wait_for(token);
        self.warp_to(c.done_at);
        let hit = match c.outcome {
            OpOutcome::Probe(hit) => hit,
            _ => unreachable!("probe submit yields a probe outcome"),
        };
        (hit, c.done_at.since(start))
    }

    /// Measures one control-channel round trip with an `echo_request`
    /// of `payload` bytes (the classic liveness/RTT probe). Advances the
    /// clock by the RTT.
    pub fn echo(&mut self, dpid: Dpid, payload: usize) -> SimDuration {
        let start = self.sim.now();
        let token = self.submit(dpid, ControlOp::Echo(payload), start);
        let c = self.wait_for(token);
        self.warp_to(c.acked_at);
        c.acked_at.since(start)
    }

    /// Runs every in-flight operation to completion and returns the time
    /// the network goes quiet (network-wide makespan reference point).
    /// Completions delivered along the way remain available through
    /// [`ControlPath::next_completion`]; the shared clock advances to the
    /// last settled event.
    pub fn all_quiet_at(&mut self) -> SimTime {
        while let Some((at, ev)) = self.sim.next_event() {
            self.handle(at, ev);
        }
        self.switches
            .iter()
            .map(|a| a.quiet_at)
            .max()
            .unwrap_or_else(|| self.sim.now())
            .max(self.sim.now())
    }

    /// Warps the shared clock to `t` (must not go backwards).
    pub fn warp_to(&mut self, t: SimTime) {
        let now = self.sim.now();
        assert!(t >= now, "clock cannot go backwards");
        self.sim.advance(t.since(now));
    }
}

impl ControlPath for Testbed {
    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn submit(&mut self, dpid: Dpid, op: ControlOp, ready_at: SimTime) -> OpToken {
        assert!(
            ready_at >= self.sim.now(),
            "op submitted at {ready_at} before now {}",
            self.sim.now()
        );
        let idx = self.idx(dpid);
        let pending = self.encode(idx, op);
        let token = pending.token;
        self.telemetry.count(
            match pending.kind {
                OpKind::FlowMod => "op/flow_mod",
                OpKind::Batch { .. } => "op/batch",
                OpKind::Probe => "op/probe",
                OpKind::Echo { .. } => "op/echo",
            },
            1,
        );
        let att = &mut self.switches[idx as usize];
        // In-order delivery: a frame cannot overtake an earlier one on
        // the same channel. The clamp is timing-neutral for processing
        // (the CPU queue already serializes) but keeps arrivals FIFO.
        let arrive = (ready_at + pending.up).max(att.last_arrival);
        att.last_arrival = arrive;
        att.incoming.push_back(pending);
        self.sim.schedule_at(arrive, CtrlEvent::Arrive(idx));
        token
    }

    fn next_completion(&mut self) -> Option<Completion> {
        loop {
            if let Some(c) = self.ring.pop_delivered() {
                return Some(c);
            }
            let (at, ev) = self.sim.next_event()?;
            self.handle(at, ev);
        }
    }

    fn wait_for(&mut self, token: OpToken) -> Completion {
        if let Some(c) = self.ring.take(token) {
            return c;
        }
        loop {
            let (at, ev) = self
                .sim
                .next_event()
                .expect("token must identify an in-flight op");
            self.handle(at, ev);
            if let Some(c) = self.ring.take(token) {
                return c;
            }
        }
    }

    fn warp_to(&mut self, t: SimTime) {
        Testbed::warp_to(self, t);
    }

    fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        Some(&mut self.telemetry)
    }

    fn track_of(&self, dpid: Dpid) -> Option<u32> {
        self.index.get(&dpid).map(|&i| switch_track(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::flow_match::FlowMatch;

    fn testbed_with(profile: SwitchProfile) -> (Testbed, Dpid) {
        let mut tb = Testbed::new(1);
        let dpid = Dpid(1);
        tb.attach_default(dpid, profile);
        (tb, dpid)
    }

    #[test]
    fn sync_flow_mod_advances_clock() {
        let (mut tb, dpid) = testbed_with(SwitchProfile::ovs());
        let t0 = tb.now();
        let (res, elapsed) = tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(1), 10));
        assert_eq!(res, OpResult::Ok);
        assert!(elapsed > SimDuration::ZERO);
        assert_eq!(tb.now(), t0 + elapsed);
        assert_eq!(tb.switch(dpid).rule_count(), 1);
    }

    #[test]
    fn batch_reports_rejections() {
        let (mut tb, dpid) = testbed_with(SwitchProfile::vendor3());
        let fms: Vec<FlowMod> = (0..400u32)
            .map(|i| FlowMod::add(FlowMatch::l2l3_for_id(i), 10))
            .collect();
        let (ok, failed, elapsed) = tb.batch(dpid, fms);
        assert_eq!(ok, 369);
        assert_eq!(failed, 400 - 369);
        assert!(elapsed > SimDuration::ZERO);
    }

    #[test]
    fn probe_rtt_reflects_path_level() {
        let (mut tb, dpid) = testbed_with(SwitchProfile::vendor1());
        tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(1), 10));
        let (hit, fast_rtt) = tb.probe(dpid, &FlowMatch::key_for_id(1));
        assert!(matches!(hit, Hit::Table { level: 0, .. }));
        let (miss, ctrl_rtt) = tb.probe(dpid, &FlowMatch::key_for_id(42));
        assert_eq!(miss, Hit::Miss);
        assert!(
            ctrl_rtt.as_millis_f64() > 2.0 * fast_rtt.as_millis_f64(),
            "controller path ({ctrl_rtt}) should dominate fast path ({fast_rtt})"
        );
    }

    #[test]
    fn scheduled_ops_serialize_per_switch() {
        let (mut tb, dpid) = testbed_with(SwitchProfile::vendor1());
        let t0 = tb.now();
        let a = tb.submit(
            dpid,
            ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(1), 10)),
            t0,
        );
        let b = tb.submit(
            dpid,
            ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(2), 10)),
            t0,
        );
        let c1 = tb.wait_for(a);
        let c2 = tb.wait_for(b);
        assert!(c2.done_at > c1.done_at, "ops on one switch serialize");
        assert!(c1.acked_at > c1.done_at);
        // The second op starts exactly when the first finishes.
        assert!(c2.done_at > c1.done_at);
    }

    #[test]
    fn scheduled_ops_on_different_switches_overlap() {
        let mut tb = Testbed::new(3);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::vendor1());
        let t0 = tb.now();
        let a = tb.submit(
            Dpid(1),
            ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(1), 10)),
            t0,
        );
        let b = tb.submit(
            Dpid(2),
            ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(1), 10)),
            t0,
        );
        let c1 = tb.wait_for(a);
        let c2 = tb.wait_for(b);
        // Independent switches start immediately; completions are close.
        let gap = c1.done_at.since(c2.done_at).as_millis_f64().abs()
            + c2.done_at.since(c1.done_at).as_millis_f64().abs();
        assert!(gap < 5.0, "parallel switches should overlap (gap {gap} ms)");
        assert!(tb.all_quiet_at() >= c1.done_at.max(c2.done_at));
    }

    #[test]
    fn completions_surface_in_time_order() {
        let mut tb = Testbed::new(9);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::ovs());
        let t0 = tb.now();
        for i in 0..6u32 {
            let dpid = Dpid(1 + u64::from(i % 2));
            tb.submit(
                dpid,
                ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(i), 10)),
                t0,
            );
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some(c) = tb.next_completion() {
            assert!(c.done_at >= last, "completions must be time-ordered");
            last = c.done_at;
            seen += 1;
        }
        assert_eq!(seen, 6);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut tb, dpid) = testbed_with(SwitchProfile::vendor1());
            for i in 0..20u32 {
                tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(i), 100 - i as u16));
            }
            tb.now()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sync_and_scheduled_flow_mods_agree_on_state() {
        // Installing rules via the synchronous adapter or via raw
        // submit/wait leaves the switch in the same state — they are the
        // same path.
        let state = |scheduled: bool| {
            let (mut tb, dpid) = testbed_with(SwitchProfile::vendor2());
            for i in 0..30u32 {
                let fm = FlowMod::add(FlowMatch::l3_for_id(i), 10 + i as u16);
                if scheduled {
                    let now = tb.now();
                    let tok = tb.submit(dpid, ControlOp::FlowMod(fm), now);
                    let c = tb.wait_for(tok);
                    tb.warp_to(c.acked_at);
                } else {
                    tb.flow_mod(dpid, fm);
                }
            }
            (tb.switch(dpid).rule_count(), tb.now())
        };
        assert_eq!(state(false), state(true));
    }

    #[test]
    fn cloned_testbed_replays_identically() {
        // A clone taken mid-history must behave byte-identically to the
        // original from that point on (the sweep-reuse contract).
        let (mut tb, dpid) = testbed_with(SwitchProfile::vendor2());
        for i in 0..10u32 {
            tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(i), 10));
        }
        let mut tb2 = tb.clone();
        let drive = |tb: &mut Testbed| {
            let mut trace = Vec::new();
            for i in 10..25u32 {
                let (res, d) = tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(i), 10));
                trace.push((res, d));
            }
            trace.push((OpResult::Ok, tb.echo(dpid, 64)));
            (trace, tb.now())
        };
        assert_eq!(drive(&mut tb), drive(&mut tb2));
    }

    #[test]
    fn telemetry_records_op_spans_without_changing_timing() {
        let drive = |traced: bool| {
            let (mut tb, dpid) = testbed_with(SwitchProfile::vendor1());
            if traced {
                tb.enable_telemetry();
            }
            for i in 0..5u32 {
                tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(i), 10));
            }
            tb.probe(dpid, &FlowMatch::key_for_id(1));
            (tb.now(), tb.finish_recorder())
        };
        let (t_off, rec_off) = drive(false);
        let (t_on, rec_on) = drive(true);
        assert!(rec_off.is_none());
        // Telemetry is observation-only: identical virtual end time.
        assert_eq!(t_off, t_on);
        let rec = rec_on.expect("enabled telemetry yields a recorder");
        assert_eq!(rec.open_spans(), 0, "all op spans closed");
        assert_eq!(rec.spans().filter(|s| s.name == "flow_mod").count(), 5);
        assert_eq!(rec.spans().filter(|s| s.name == "probe").count(), 1);
        assert_eq!(rec.counter("op/flow_mod"), 5);
        assert_eq!(rec.counter("switch/ops_done"), 6);
        assert!(rec.counter("sim/events") > 0);
        assert!(rec.counter("pipeline/adds_hw") + rec.counter("pipeline/adds_sw") == 5);
        let m = rec.metrics();
        assert!(m.hists.iter().any(|(k, _)| k == "switch/queue_depth"));
    }

    #[test]
    fn wait_for_out_of_delivery_order() {
        // Picking up a later token first must not lose or reorder the
        // remaining completions (ring tombstone path).
        let mut tb = Testbed::new(5);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::vendor2());
        let t0 = tb.now();
        let a = tb.submit(
            Dpid(1),
            ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(1), 10)),
            t0,
        );
        let b = tb.submit(
            Dpid(2),
            ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(2), 10)),
            t0,
        );
        let cb = tb.wait_for(b);
        let ca = tb.wait_for(a);
        assert_eq!(ca.token, a);
        assert_eq!(cb.token, b);
        assert!(tb.next_completion().is_none(), "no duplicates in stream");
    }
}
