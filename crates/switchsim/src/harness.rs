//! The testbed harness: one or more agent-wrapped switches behind
//! latency-modelled control channels, sharing a virtual clock.
//!
//! Two interaction styles (matching [`simnet::sim::Simulator`]):
//!
//! * **synchronous** — `flow_mod`, `batch`, `probe`: the caller blocks
//!   (virtually) until the operation completes; the clock advances. This
//!   is how the probing engine measures per-switch properties.
//! * **scheduled** — `enqueue_op`: operations are issued at a given time,
//!   serialize on the per-switch control queue, and return their
//!   completion time without advancing the shared clock. This is how the
//!   network-wide schedulers issue concurrent updates to many switches
//!   and measure makespan.

use crate::agent::{Agent, AgentOutput};
use crate::pipeline::Hit;
use crate::profiles::SwitchProfile;
use crate::switch::Switch;
use ofwire::barrier::BarrierTracker;
use ofwire::flow_mod::FlowMod;
use ofwire::message::Message;
use ofwire::packet::{PacketOut, RawFrame};
use ofwire::flow_match::FlowKey;
use ofwire::types::{Dpid, PortNo, Xid};
use simnet::link::Link;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One switch attached to the testbed.
struct Attached {
    agent: Agent,
    ctrl_link: Link,
    /// Time until which the switch's control CPU is busy.
    busy_until: SimTime,
    next_xid: Xid,
    /// Outstanding barrier xids → the batch size they fence.
    barriers: BarrierTracker<usize>,
}

/// The outcome of a synchronous flow-mod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// Applied successfully.
    Ok,
    /// Rejected: all tables full.
    TableFull,
}

/// The completion record of a scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the switch finished applying the op.
    pub done_at: SimTime,
    /// When the controller observes the ack (done + return latency).
    pub acked_at: SimTime,
    /// Whether the op succeeded.
    pub result: OpResult,
}

/// A multi-switch testbed with a shared virtual clock.
pub struct Testbed {
    clock: SimTime,
    switches: BTreeMap<Dpid, Attached>,
    rng: DetRng,
}

impl Testbed {
    /// An empty testbed. `seed` drives link jitter.
    #[must_use]
    pub fn new(seed: u64) -> Testbed {
        Testbed {
            clock: SimTime::ZERO,
            switches: BTreeMap::new(),
            rng: DetRng::new(seed),
        }
    }

    /// Attaches a switch built from `profile` behind `ctrl_link`.
    pub fn attach(&mut self, dpid: Dpid, profile: SwitchProfile, ctrl_link: Link) {
        let seed = self.rng.fork(dpid.0).next_u64_seed();
        let switch = Switch::new(profile, dpid, seed);
        self.switches.insert(
            dpid,
            Attached {
                agent: Agent::new(switch),
                ctrl_link,
                busy_until: SimTime::ZERO,
                next_xid: Xid(1),
                barriers: BarrierTracker::new(),
            },
        );
    }

    /// Attaches with the default low-latency control channel (0.1 ms one
    /// way — a directly connected management port).
    pub fn attach_default(&mut self, dpid: Dpid, profile: SwitchProfile) {
        self.attach(dpid, profile, Link::control_channel(0.1));
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advances the shared clock (e.g. to model controller think time).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
    }

    /// Datapath ids attached, in order.
    #[must_use]
    pub fn dpids(&self) -> Vec<Dpid> {
        self.switches.keys().copied().collect()
    }

    /// Read access to a switch.
    #[must_use]
    pub fn switch(&self, dpid: Dpid) -> &Switch {
        self.switches
            .get(&dpid)
            .expect("unknown dpid")
            .agent
            .switch()
    }

    fn attached(&mut self, dpid: Dpid) -> &mut Attached {
        self.switches.get_mut(&dpid).expect("unknown dpid")
    }

    fn send_and_process(
        &mut self,
        dpid: Dpid,
        msg: &Message,
        at: SimTime,
    ) -> (Vec<AgentOutput>, SimDuration) {
        let mut link_rng = self.rng.fork(dpid.0 ^ 0xa11ce);
        let att = self.switches.get_mut(&dpid).expect("unknown dpid");
        let xid = att.next_xid;
        att.next_xid = xid.next();
        let frame = msg.to_bytes(xid);
        let up = att.ctrl_link.delivery_latency(frame.len(), &mut link_rng);
        let outs = att
            .agent
            .feed(&frame, at + up)
            .expect("well-formed frame");
        (outs, up)
    }

    /// Synchronously applies one flow-mod: send → process → barrier-ack.
    /// Advances the clock by the full round trip and returns the result
    /// and the elapsed time.
    pub fn flow_mod(&mut self, dpid: Dpid, fm: FlowMod) -> (OpResult, SimDuration) {
        let start = self.clock;
        let (outs, up) = self.send_and_process(dpid, &Message::FlowMod(fm), start);
        let mut result = OpResult::Ok;
        let mut cost = SimDuration::ZERO;
        for o in &outs {
            cost += o.cost;
            if matches!(o.reply, Some(Message::Error(_))) {
                result = OpResult::TableFull;
            }
        }
        let down = {
            let mut link_rng = self.rng.fork(dpid.0 ^ 0xd0_17);
            let att = self.attached(dpid);
            att.ctrl_link.delivery_latency(16, &mut link_rng)
        };
        let elapsed = up + cost + down;
        self.clock = start + elapsed;
        let clock = self.clock;
        let att = self.attached(dpid);
        att.busy_until = att.busy_until.max(clock);
        (result, elapsed)
    }

    /// Synchronously applies a batch of flow-mods followed by a barrier
    /// (the paper's installation-time measurement methodology). Messages
    /// are pipelined: one upstream latency, serial processing, one
    /// downstream latency. Returns (successes, failures, elapsed).
    pub fn batch(&mut self, dpid: Dpid, fms: Vec<FlowMod>) -> (usize, usize, SimDuration) {
        let start = self.clock;
        let mut link_rng = self.rng.fork(dpid.0 ^ 0xba7c4);
        let att = self.switches.get_mut(&dpid).expect("unknown dpid");
        let mut bytes = Vec::new();
        for fm in fms {
            let xid = att.next_xid;
            att.next_xid = xid.next();
            bytes.extend(Message::FlowMod(fm).to_bytes(xid));
        }
        let barrier_xid = att.next_xid;
        att.next_xid = barrier_xid.next();
        let batch_size = bytes.len();
        att.barriers.register(barrier_xid, batch_size);
        bytes.extend(Message::BarrierRequest.to_bytes(barrier_xid));
        let up = att.ctrl_link.delivery_latency(bytes.len(), &mut link_rng);
        let outs = att.agent.feed(&bytes, start + up).expect("well-formed");
        let mut ok = 0;
        let mut failed = 0;
        let mut cost = SimDuration::ZERO;
        for o in &outs {
            cost += o.cost;
            match &o.reply {
                Some(Message::Error(_)) => failed += 1,
                Some(Message::BarrierReply) => {
                    // Pair the reply with its request: xid mismatches
                    // would mean the fence got reordered.
                    let fenced = att.barriers.complete(o.xid);
                    assert_eq!(fenced, Some(batch_size), "barrier xid mismatch");
                }
                None => ok += 1,
                _ => {}
            }
        }
        debug_assert!(att.barriers.is_empty(), "no barrier left unanswered");
        let down = att.ctrl_link.delivery_latency(16, &mut link_rng);
        let elapsed = up + cost + down;
        self.clock = start + elapsed;
        let clock = self.clock;
        let att = self.attached(dpid);
        att.busy_until = att.busy_until.max(clock);
        (ok, failed, elapsed)
    }

    /// Sends a probe frame matching `key` through the switch's data
    /// plane via `packet_out`, returning where it was served and the
    /// measured RTT (generator link + forwarding delay). Advances the
    /// clock by the RTT.
    pub fn probe(&mut self, dpid: Dpid, key: &FlowKey) -> (Hit, SimDuration) {
        let start = self.clock;
        let frame = RawFrame::build(key, 46);
        let po = PacketOut::send(frame, PortNo(1));
        let (outs, up) = self.send_and_process(dpid, &Message::PacketOut(po), start);
        let (hit, fwd) = outs
            .iter()
            .find_map(|o| o.forwarded)
            .expect("packet_out produces a forwarding outcome");
        let rtt = up + fwd;
        self.clock = start + rtt;
        (hit, rtt)
    }

    /// Measures one control-channel round trip with an `echo_request`
    /// of `payload` bytes (the classic liveness/RTT probe). Advances the
    /// clock by the RTT.
    pub fn echo(&mut self, dpid: Dpid, payload: usize) -> SimDuration {
        let start = self.clock;
        let msg = Message::EchoRequest(vec![0xec; payload]);
        let (outs, up) = self.send_and_process(dpid, &msg, start);
        debug_assert!(matches!(
            outs.first().and_then(|o| o.reply.as_ref()),
            Some(Message::EchoReply(_))
        ));
        let down = {
            let mut link_rng = self.rng.fork(dpid.0 ^ 0xec0);
            let att = self.attached(dpid);
            att.ctrl_link.delivery_latency(payload + 8, &mut link_rng)
        };
        let rtt = up + down;
        self.clock = start + rtt;
        rtt
    }

    /// Schedules a flow-mod to be issued at `ready_at` (a controller-side
    /// time). The op serializes behind earlier ops on the same switch.
    /// Does not advance the shared clock.
    pub fn enqueue_op(&mut self, dpid: Dpid, fm: FlowMod, ready_at: SimTime) -> Completion {
        let mut link_rng = self.rng.fork(dpid.0 ^ 0xec0);
        let att = self.switches.get_mut(&dpid).expect("unknown dpid");
        let xid = att.next_xid;
        att.next_xid = xid.next();
        let frame = Message::FlowMod(fm).to_bytes(xid);
        let up = att.ctrl_link.delivery_latency(frame.len(), &mut link_rng);
        let arrive = ready_at + up;
        let start = arrive.max(att.busy_until);
        let outs = att.agent.feed(&frame, start).expect("well-formed");
        let cost = outs
            .iter()
            .fold(SimDuration::ZERO, |acc, o| acc + o.cost);
        let result = if outs
            .iter()
            .any(|o| matches!(o.reply, Some(Message::Error(_))))
        {
            OpResult::TableFull
        } else {
            OpResult::Ok
        };
        let done_at = start + cost;
        att.busy_until = done_at;
        let down = att.ctrl_link.delivery_latency(16, &mut link_rng);
        Completion {
            done_at,
            acked_at: done_at + down,
            result,
        }
    }

    /// The time at which every currently scheduled op on every switch has
    /// completed (network-wide makespan reference point).
    #[must_use]
    pub fn all_quiet_at(&self) -> SimTime {
        self.switches
            .values()
            .map(|a| a.busy_until)
            .max()
            .unwrap_or(self.clock)
            .max(self.clock)
    }

    /// Warps the shared clock to `t` (must not go backwards).
    pub fn warp_to(&mut self, t: SimTime) {
        assert!(t >= self.clock, "clock cannot go backwards");
        self.clock = t;
    }
}

/// Extension trait to pull a fresh seed out of a forked RNG.
trait SeedExt {
    fn next_u64_seed(self) -> u64;
}

impl SeedExt for DetRng {
    fn next_u64_seed(mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::flow_match::FlowMatch;

    fn testbed_with(profile: SwitchProfile) -> (Testbed, Dpid) {
        let mut tb = Testbed::new(1);
        let dpid = Dpid(1);
        tb.attach_default(dpid, profile);
        (tb, dpid)
    }

    #[test]
    fn sync_flow_mod_advances_clock() {
        let (mut tb, dpid) = testbed_with(SwitchProfile::ovs());
        let t0 = tb.now();
        let (res, elapsed) = tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(1), 10));
        assert_eq!(res, OpResult::Ok);
        assert!(elapsed > SimDuration::ZERO);
        assert_eq!(tb.now(), t0 + elapsed);
        assert_eq!(tb.switch(dpid).rule_count(), 1);
    }

    #[test]
    fn batch_reports_rejections() {
        let (mut tb, dpid) = testbed_with(SwitchProfile::vendor3());
        let fms: Vec<FlowMod> = (0..400u32)
            .map(|i| FlowMod::add(FlowMatch::l2l3_for_id(i), 10))
            .collect();
        let (ok, failed, elapsed) = tb.batch(dpid, fms);
        assert_eq!(ok, 369);
        assert_eq!(failed, 400 - 369);
        assert!(elapsed > SimDuration::ZERO);
    }

    #[test]
    fn probe_rtt_reflects_path_level() {
        let (mut tb, dpid) = testbed_with(SwitchProfile::vendor1());
        tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(1), 10));
        let (hit, fast_rtt) = tb.probe(dpid, &FlowMatch::key_for_id(1));
        assert!(matches!(hit, Hit::Table { level: 0, .. }));
        let (miss, ctrl_rtt) = tb.probe(dpid, &FlowMatch::key_for_id(42));
        assert_eq!(miss, Hit::Miss);
        assert!(
            ctrl_rtt.as_millis_f64() > 2.0 * fast_rtt.as_millis_f64(),
            "controller path ({ctrl_rtt}) should dominate fast path ({fast_rtt})"
        );
    }

    #[test]
    fn enqueue_serializes_per_switch() {
        let (mut tb, dpid) = testbed_with(SwitchProfile::vendor1());
        let c1 = tb.enqueue_op(dpid, FlowMod::add(FlowMatch::l3_for_id(1), 10), SimTime::ZERO);
        let c2 = tb.enqueue_op(dpid, FlowMod::add(FlowMatch::l3_for_id(2), 10), SimTime::ZERO);
        assert!(c2.done_at > c1.done_at, "ops on one switch serialize");
        assert!(c1.acked_at > c1.done_at);
    }

    #[test]
    fn enqueue_on_different_switches_overlaps() {
        let mut tb = Testbed::new(3);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::vendor1());
        let c1 = tb.enqueue_op(Dpid(1), FlowMod::add(FlowMatch::l3_for_id(1), 10), SimTime::ZERO);
        let c2 = tb.enqueue_op(Dpid(2), FlowMod::add(FlowMatch::l3_for_id(1), 10), SimTime::ZERO);
        // Independent switches start immediately; completions are close.
        let gap = c1.done_at.since(c2.done_at).as_millis_f64().abs()
            + c2.done_at.since(c1.done_at).as_millis_f64().abs();
        assert!(gap < 5.0, "parallel switches should overlap (gap {gap} ms)");
        assert!(tb.all_quiet_at() >= c1.done_at.max(c2.done_at));
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut tb, dpid) = testbed_with(SwitchProfile::vendor1());
            for i in 0..20u32 {
                tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(i), 100 - i as u16));
            }
            tb.now()
        };
        assert_eq!(run(), run());
    }
}
