//! Latency models: control-plane operation costs and data-path delays.
//!
//! These are the distributions that make a simulated switch *behave* like
//! the paper's hardware: priority-shift-sensitive add costs (Fig 3),
//! per-level forwarding delays (Fig 2), and the controller path.

use crate::pipeline::Hit;
use serde::{Deserialize, Serialize};
use simnet::dist::Dist;
use simnet::rng::DetRng;
use simnet::time::SimDuration;

/// Control-plane cost model for one switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlCosts {
    /// Fixed cost of an add that lands in a hardware level.
    pub add_base: Dist,
    /// Fixed cost of an add that lands in a software level.
    pub add_software: Dist,
    /// Extra cost per TCAM entry shifted to keep priority order
    /// (microseconds per shifted entry). Zero for switches like OVS whose
    /// installation time is priority-insensitive (Fig 3c).
    pub shift_us: f64,
    /// Base cost of modifying an entry in place (no shifting).
    pub mod_base: Dist,
    /// Additional modify cost per resident rule, in microseconds — the
    /// switch software walks its tables to find the entry, so mods get
    /// slower as tables fill (reconciles Fig 3b's ~6 ms/mod at 5 000
    /// rules with sub-millisecond mods on lightly loaded switches).
    pub mod_per_resident_us: f64,
    /// Cost of deleting an entry.
    pub del_base: Dist,
}

impl ControlCosts {
    /// Cost of an add given where it landed and how many entries shifted.
    pub fn add_cost(
        &self,
        landed_in_hardware: bool,
        shifts: usize,
        rng: &mut DetRng,
    ) -> SimDuration {
        let base = if landed_in_hardware {
            self.add_base.sample(rng)
        } else {
            self.add_software.sample(rng)
        };
        base + SimDuration::from_micros_f64(self.shift_us * shifts as f64)
    }

    /// Cost of modifying `count` entries while `resident` rules are
    /// installed.
    pub fn mod_cost(&self, count: usize, resident: usize, rng: &mut DetRng) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let walk = SimDuration::from_micros_f64(self.mod_per_resident_us * resident as f64);
        for _ in 0..count.max(1) {
            total += self.mod_base.sample(rng) + walk;
        }
        total
    }

    /// Cost of deleting `count` entries.
    pub fn del_cost(&self, count: usize, rng: &mut DetRng) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for _ in 0..count.max(1) {
            total += self.del_base.sample(rng);
        }
        total
    }
}

/// Data-path delay model: one distribution per table level, plus the
/// controller path for complete misses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPathLatency {
    /// Delay for a packet served by level *i* (level 0 fastest).
    pub levels: Vec<Dist>,
    /// Delay for a packet that misses every table and is handled by the
    /// controller.
    pub controller: Dist,
}

impl DataPathLatency {
    /// Samples the forwarding delay for a lookup outcome.
    pub fn delay(&self, hit: &Hit, rng: &mut DetRng) -> SimDuration {
        match hit {
            Hit::Table { level, .. } => {
                let d = self
                    .levels
                    .get(*level)
                    .copied()
                    .unwrap_or_else(|| *self.levels.last().expect("at least one level"));
                d.sample(rng)
            }
            Hit::Miss => self.controller.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryId;

    fn costs() -> ControlCosts {
        ControlCosts {
            add_base: Dist::Constant(0.2),
            add_software: Dist::Constant(0.05),
            shift_us: 10.0,
            mod_base: Dist::Constant(1.0),
            mod_per_resident_us: 1.0,
            del_base: Dist::Constant(0.5),
        }
    }

    #[test]
    fn add_cost_scales_with_shifts() {
        let c = costs();
        let mut rng = DetRng::new(0);
        let no_shift = c.add_cost(true, 0, &mut rng);
        let with_shift = c.add_cost(true, 100, &mut rng);
        assert_eq!(no_shift, SimDuration::from_micros(200));
        assert_eq!(with_shift, SimDuration::from_micros(200 + 1000));
    }

    #[test]
    fn software_adds_use_software_base() {
        let c = costs();
        let mut rng = DetRng::new(0);
        assert_eq!(c.add_cost(false, 0, &mut rng), SimDuration::from_micros(50));
    }

    #[test]
    fn batch_mod_and_del_costs_accumulate() {
        let c = costs();
        let mut rng = DetRng::new(0);
        assert_eq!(c.mod_cost(3, 0, &mut rng), SimDuration::from_millis(3));
        assert_eq!(c.del_cost(2, &mut rng), SimDuration::from_millis(1));
        // Zero-count operations still charge one unit (the lookup that
        // found nothing).
        assert_eq!(c.mod_cost(0, 0, &mut rng), SimDuration::from_millis(1));
    }

    #[test]
    fn mod_cost_scales_with_residency() {
        let c = costs();
        let mut rng = DetRng::new(0);
        // 1 µs per resident rule: 5 000 residents add 5 ms per mod.
        assert_eq!(c.mod_cost(1, 5000, &mut rng), SimDuration::from_millis(6));
    }

    #[test]
    fn datapath_delay_per_level() {
        let dp = DataPathLatency {
            levels: vec![Dist::Constant(0.4), Dist::Constant(3.7)],
            controller: Dist::Constant(8.0),
        };
        let mut rng = DetRng::new(0);
        let fast = dp.delay(
            &Hit::Table {
                level: 0,
                entry: EntryId(1),
            },
            &mut rng,
        );
        let slow = dp.delay(
            &Hit::Table {
                level: 1,
                entry: EntryId(1),
            },
            &mut rng,
        );
        let ctrl = dp.delay(&Hit::Miss, &mut rng);
        assert_eq!(fast, SimDuration::from_micros(400));
        assert_eq!(slow, SimDuration::from_micros(3700));
        assert_eq!(ctrl, SimDuration::from_millis(8));
        // Out-of-range level falls back to the slowest table level.
        let beyond = dp.delay(
            &Hit::Table {
                level: 9,
                entry: EntryId(1),
            },
            &mut rng,
        );
        assert_eq!(beyond, SimDuration::from_micros(3700));
    }
}
