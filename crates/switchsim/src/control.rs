//! The control-path abstraction: "submit an OpenFlow operation to switch
//! `dpid`, receive a typed completion event later".
//!
//! Every layer above the switch models talks to switches through
//! [`ControlPath`] — the probing engine when it measures one switch, and
//! the network-wide schedulers when they drive many. The first (and so
//! far only) implementation is the in-memory latency-modelled
//! [`Testbed`](crate::harness::Testbed), whose event-driven core runs all
//! attached switches inside one `simnet` simulator; a transport speaking
//! real `ofwire` bytes over a socket would implement the same trait
//! without the layers above noticing.
//!
//! The shape is deliberately asynchronous even though the simulator is
//! single-threaded: operations are *submitted* with a controller-side
//! ready time and identified by an [`OpToken`]; completions surface later
//! in virtual-time order via
//! [`ControlPath::next_completion`]. Synchronous call-and-wait usage is a
//! thin adapter (submit, then drain until your token appears).

use crate::pipeline::Hit;
use ofwire::flow_match::FlowKey;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::telemetry::Telemetry;
use simnet::time::SimTime;

/// Identifies one submitted operation. Tokens are unique per control
/// path for its lifetime and compare/hash cheaply.
///
/// Tokens are minted from one per-path counter: each `submit` returns a
/// sequence number exactly one greater than the previous submit's, with
/// the first at zero. Consumers may rely on this density — the driver
/// runner files in-flight bookkeeping in a flat ring indexed by
/// `seq() - base` instead of a hash map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpToken(pub(crate) u64);

impl OpToken {
    /// The token's position in the control path's global submit order.
    #[must_use]
    pub fn seq(self) -> u64 {
        self.0
    }

    /// Mints the token with the given sequence number. Only
    /// [`ControlPath`] implementations should call this — a transport
    /// outside this crate needs it to mint its own dense token stream,
    /// with the same density contract as [`OpToken::seq`] documents.
    #[must_use]
    pub fn from_seq(seq: u64) -> OpToken {
        OpToken(seq)
    }
}

/// The outcome of a completed flow-mod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// Applied successfully.
    Ok,
    /// Rejected: all tables full.
    TableFull,
}

/// An operation a controller can submit to a switch.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlOp {
    /// One flow-mod, individually barriered.
    FlowMod(FlowMod),
    /// A pipelined batch of flow-mods fenced by a single barrier (the
    /// paper's installation-time measurement methodology).
    Batch(Vec<FlowMod>),
    /// A data-plane probe packet injected via `packet_out`, matching
    /// `key`. Completes when the forwarding outcome is known.
    Probe(FlowKey),
    /// An `echo_request` with a payload of the given size — the classic
    /// control-channel liveness/RTT probe.
    Echo(usize),
}

/// What a completed operation produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpOutcome {
    /// A single flow-mod finished.
    FlowMod(OpResult),
    /// A batch finished; per-op accept/reject tallies.
    Batch {
        /// Operations applied.
        ok: usize,
        /// Operations rejected (table full).
        failed: usize,
    },
    /// A probe came back, served from the given path level.
    Probe(Hit),
    /// An echo reply arrived.
    Echo,
}

/// The completion event of one submitted operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Token returned by the originating submit.
    pub token: OpToken,
    /// Switch that executed the operation.
    pub dpid: Dpid,
    /// When the switch finished applying the op (data-plane visible).
    pub done_at: SimTime,
    /// When the controller observes the result (done + return latency).
    pub acked_at: SimTime,
    /// What the operation produced.
    pub outcome: OpOutcome,
}

impl Completion {
    /// The flow-mod result, treating a fully successful batch as `Ok`.
    /// Panics on probe/echo completions, which carry no accept/reject
    /// semantics.
    #[must_use]
    pub fn result(&self) -> OpResult {
        match self.outcome {
            OpOutcome::FlowMod(r) => r,
            OpOutcome::Batch { failed: 0, .. } => OpResult::Ok,
            OpOutcome::Batch { .. } => OpResult::TableFull,
            OpOutcome::Probe(_) | OpOutcome::Echo => {
                panic!("probe/echo completions have no flow-mod result")
            }
        }
    }
}

/// A transport that carries OpenFlow operations to switches and returns
/// completion events in virtual-time order.
pub trait ControlPath {
    /// The controller-side clock this path is synchronized to.
    fn now(&self) -> SimTime;

    /// Submits `op` to switch `dpid`, leaving the controller at
    /// `ready_at` (which must not precede `now`). The op serializes
    /// behind earlier ops on the same switch's control channel; the
    /// returned token identifies its eventual completion.
    fn submit(&mut self, dpid: Dpid, op: ControlOp, ready_at: SimTime) -> OpToken;

    /// Delivers the next completion in virtual-time order, advancing the
    /// clock to its processing instant. `None` when nothing is in
    /// flight.
    fn next_completion(&mut self) -> Option<Completion>;

    /// Drives the path until `token`'s completion surfaces, buffering
    /// any other completions that finish first. Panics if the token is
    /// not in flight — that is a controller logic error, not a runtime
    /// condition.
    fn wait_for(&mut self, token: OpToken) -> Completion;

    /// Advances the controller-side clock to `t` (which must not precede
    /// `now`). Drivers that consume completions out of band use this to
    /// leave the clock where a synchronous call-and-wait loop would have
    /// left it — at the last acknowledgement they observed.
    fn warp_to(&mut self, t: SimTime);

    /// The path's telemetry handle, if it carries one. Layers above
    /// (drivers, fleet, schedulers) emit their spans and metrics through
    /// this so one recorder per experiment cell collects the whole
    /// stack; the default (`None`) keeps paths without telemetry — and
    /// every test double — untouched.
    fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        None
    }

    /// The export track spans about switch `dpid` should land on, if
    /// the path assigns per-switch tracks. Defaults to `None` (callers
    /// then skip per-switch spans rather than misfile them).
    fn track_of(&self, dpid: Dpid) -> Option<u32> {
        let _ = dpid;
        None
    }
}
