//! # switchsim — emulated diverse OpenFlow switches
//!
//! The paper evaluates Tango against three proprietary hardware switches
//! and Open vSwitch. This crate stands those up in simulation: complete
//! behavioural models whose *observable* properties — table sizes and
//! width modes (Table 1), tiered path delays (Fig 2), priority-shift and
//! op-type control costs (Fig 3), and cache-replacement policies (§5.1) —
//! are calibrated to the paper's measurements.
//!
//! Layering, bottom-up:
//!
//! * [`entry`] — installed rules with the four ATTRIB attributes.
//! * [`cache`] — cache policies as lexicographic attribute orderings
//!   (the paper's ATTRIB/MONOTONE/LEX model, §5.1).
//! * [`tcam`] — slot-width geometry and priority-shift counting.
//! * [`table`] — wildcard tables and the OVS kernel microflow cache.
//! * [`pipeline`] — multilevel-cache flow-table organizations.
//! * [`latency`] — control-plane cost and data-path delay models.
//! * [`profiles`] — calibrated vendor presets (OVS, Switches #1–#3) and
//!   generic policy-cached switches for inference studies.
//! * [`switch`] — the assembled switch.
//! * [`agent`] — the wire-protocol agent (real `ofwire` bytes in/out).
//! * [`control`] — the transport-agnostic control-path abstraction
//!   (submit an OpenFlow op, receive a typed completion event).
//! * [`harness`] — the in-memory control path: a multi-switch testbed
//!   whose event-driven core runs every switch in one simulator.
//!
//! ```
//! use switchsim::prelude::*;
//! use ofwire::prelude::*;
//!
//! let mut tb = Testbed::new(42);
//! tb.attach_default(Dpid(1), SwitchProfile::vendor1());
//! let (res, elapsed) = tb.flow_mod(Dpid(1), FlowMod::add(FlowMatch::l3_for_id(7), 100));
//! assert_eq!(res, OpResult::Ok);
//! assert!(elapsed.as_millis_f64() > 0.0);
//! ```

pub mod agent;
pub mod cache;
pub mod chan;
pub mod control;
pub mod entry;
pub mod expiry;
pub mod harness;
pub mod latency;
pub mod pipeline;
pub mod profiles;
pub mod switch;
pub mod table;
pub mod tcam;

/// Glob-import of the commonly used types.
pub mod prelude {
    pub use crate::agent::{Agent, AgentOutput};
    pub use crate::cache::{Attribute, CachePolicy, Direction, SortKey};
    pub use crate::control::{Completion, ControlOp, ControlPath, OpOutcome, OpResult, OpToken};
    pub use crate::entry::{EntryId, FlowEntry};
    pub use crate::expiry::{Expired, RemovalReason};
    pub use crate::harness::Testbed;
    pub use crate::latency::{ControlCosts, DataPathLatency};
    pub use crate::pipeline::{Hit, Pipeline, TableFull};
    pub use crate::profiles::SwitchProfile;
    pub use crate::switch::{FlowModEffect, FlowModError, Switch};
    pub use crate::table::{FlowTable, MicroflowCache};
    pub use crate::tcam::TcamGeometry;
}
