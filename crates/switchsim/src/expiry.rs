//! Flow-entry expiry: idle and hard timeouts, and the `flow_removed`
//! notifications they generate.
//!
//! OpenFlow switches expire entries whose `hard_timeout` has elapsed
//! since installation or whose `idle_timeout` has elapsed since the last
//! matching packet. The paper's switch model leans on exactly these
//! "usage timers" (§5: "OpenFlow switches keep traffic counters and
//! usage timers that are updated each time the switch receives a
//! packet"), so the simulated switches implement them fully.

use crate::entry::FlowEntry;
use serde::{Deserialize, Serialize};
use simnet::time::SimTime;

/// Why an entry was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemovalReason {
    /// `idle_timeout` seconds passed without a matching packet.
    IdleTimeout,
    /// `hard_timeout` seconds passed since installation.
    HardTimeout,
}

/// A record of one expired entry (the payload of a `flow_removed`
/// notification).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expired {
    /// The removed entry (with final counters).
    pub entry: FlowEntry,
    /// Why it was removed.
    pub reason: RemovalReason,
}

/// Whether `entry` has expired at `now`, and why. Hard timeouts win
/// ties (they are unconditional).
#[must_use]
pub fn expiry_reason(entry: &FlowEntry, now: SimTime) -> Option<RemovalReason> {
    if entry.hard_timeout > 0 {
        let deadline = entry.inserted_at + secs(entry.hard_timeout);
        if now >= deadline {
            return Some(RemovalReason::HardTimeout);
        }
    }
    if entry.idle_timeout > 0 {
        let deadline = entry.last_used_at + secs(entry.idle_timeout);
        if now >= deadline {
            return Some(RemovalReason::IdleTimeout);
        }
    }
    None
}

fn secs(s: u16) -> simnet::time::SimDuration {
    simnet::time::SimDuration::from_secs(u64::from(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryId;
    use ofwire::flow_match::FlowMatch;
    use simnet::time::SimDuration;

    fn entry(idle: u16, hard: u16) -> FlowEntry {
        let mut e = FlowEntry::new(
            EntryId(1),
            FlowMatch::l3_for_id(1),
            10,
            vec![],
            SimTime::ZERO,
        );
        e.idle_timeout = idle;
        e.hard_timeout = hard;
        e
    }

    #[test]
    fn no_timeouts_never_expire() {
        let e = entry(0, 0);
        assert_eq!(expiry_reason(&e, SimTime(u64::MAX / 2)), None);
    }

    #[test]
    fn hard_timeout_fires_regardless_of_traffic() {
        let mut e = entry(0, 5);
        e.touch(SimTime::ZERO + SimDuration::from_secs(4), 64);
        assert_eq!(
            expiry_reason(&e, SimTime::ZERO + SimDuration::from_secs(4)),
            None
        );
        assert_eq!(
            expiry_reason(&e, SimTime::ZERO + SimDuration::from_secs(5)),
            Some(RemovalReason::HardTimeout)
        );
    }

    #[test]
    fn idle_timeout_resets_on_traffic() {
        let mut e = entry(3, 0);
        assert_eq!(
            expiry_reason(&e, SimTime::ZERO + SimDuration::from_secs(2)),
            None
        );
        e.touch(SimTime::ZERO + SimDuration::from_secs(2), 64);
        // Idle clock restarts from the touch.
        assert_eq!(
            expiry_reason(&e, SimTime::ZERO + SimDuration::from_secs(4)),
            None
        );
        assert_eq!(
            expiry_reason(&e, SimTime::ZERO + SimDuration::from_secs(5)),
            Some(RemovalReason::IdleTimeout)
        );
    }

    #[test]
    fn hard_wins_when_both_due() {
        let e = entry(1, 1);
        assert_eq!(
            expiry_reason(&e, SimTime::ZERO + SimDuration::from_secs(1)),
            Some(RemovalReason::HardTimeout)
        );
    }
}
