//! Cache-replacement policies as lexicographic attribute orderings.
//!
//! This is the paper's formal model of switch caching (§5.1) implemented
//! directly:
//!
//! * **ATTRIB** — policies read a subset of {insertion time, use time,
//!   traffic count, priority} ([`Attribute`]).
//! * **MONOTONE** — each attribute is compared monotonically, either
//!   preferring high or low values ([`Direction`]).
//! * **LEX** — a total order is formed lexicographically over a
//!   permutation of the attributes ([`CachePolicy`]), with the stable
//!   entry id as the deterministic final tie-break.
//!
//! Classic policies are instances: FIFO keeps the *oldest* insertions in
//! the fast level (which is exactly the paper's Switch #1, whose software
//! table acts as a FIFO spill buffer for TCAM), LRU keeps the most
//! recently used, LFU the most trafficked, and priority caching keeps the
//! highest priorities.

use crate::entry::FlowEntry;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The per-flow attributes a policy may inspect (paper ATTRIB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// Time the entry was installed.
    InsertionTime,
    /// Time a packet last matched the entry.
    UseTime,
    /// Number of packets matched.
    TrafficCount,
    /// Rule priority.
    Priority,
}

impl Attribute {
    /// All four attributes, in the paper's listing order.
    pub const ALL: [Attribute; 4] = [
        Attribute::InsertionTime,
        Attribute::UseTime,
        Attribute::TrafficCount,
        Attribute::Priority,
    ];

    /// "Serial" attributes take distinct values for every flow (each
    /// install/use happens at a distinct instant), so an ordering on one
    /// of them is already total — Algorithm 2 stops recursing when it
    /// identifies one.
    #[must_use]
    pub fn is_serial(self) -> bool {
        matches!(self, Attribute::InsertionTime | Attribute::UseTime)
    }

    /// Reads this attribute of an entry, widened to `u64` for comparison.
    #[must_use]
    pub fn value_of(self, e: &FlowEntry) -> u64 {
        match self {
            Attribute::InsertionTime => e.inserted_at.0,
            Attribute::UseTime => e.last_used_at.0,
            Attribute::TrafficCount => e.packet_count,
            Attribute::Priority => u64::from(e.priority),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Attribute::InsertionTime => "insertion_time",
            Attribute::UseTime => "use_time",
            Attribute::TrafficCount => "traffic_count",
            Attribute::Priority => "priority",
        };
        f.write_str(s)
    }
}

/// Which extreme of an attribute is *kept* in the fast level (paper
/// MONOTONE: the comparison is monotonic increasing or decreasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Higher values are better (kept); lowest evicted.
    KeepHigh,
    /// Lower values are better (kept); highest evicted.
    KeepLow,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub fn flip(self) -> Direction {
        match self {
            Direction::KeepHigh => Direction::KeepLow,
            Direction::KeepLow => Direction::KeepHigh,
        }
    }
}

/// One sort key: an attribute plus its direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SortKey {
    /// Attribute inspected.
    pub attribute: Attribute,
    /// Which extreme is kept.
    pub direction: Direction,
}

/// A cache policy: a lexicographic ordering over sort keys (paper LEX).
///
/// [`CachePolicy::cmp_entries`] returns [`Ordering::Greater`] when the
/// first entry ranks *better* (more deserving of the fast level).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePolicy {
    /// Sort keys, most significant first.
    pub keys: Vec<SortKey>,
}

impl CachePolicy {
    /// Builds a policy from `(attribute, direction)` pairs.
    #[must_use]
    pub fn new(keys: Vec<SortKey>) -> CachePolicy {
        CachePolicy { keys }
    }

    /// FIFO spill: the oldest insertions stay in the fast level; new
    /// entries overflow to software (paper's Switch #1 behaviour).
    #[must_use]
    pub fn fifo() -> CachePolicy {
        CachePolicy::new(vec![SortKey {
            attribute: Attribute::InsertionTime,
            direction: Direction::KeepLow,
        }])
    }

    /// LRU: most recently used entries stay in the fast level.
    #[must_use]
    pub fn lru() -> CachePolicy {
        CachePolicy::new(vec![SortKey {
            attribute: Attribute::UseTime,
            direction: Direction::KeepHigh,
        }])
    }

    /// LFU: most heavily trafficked entries stay in the fast level.
    #[must_use]
    pub fn lfu() -> CachePolicy {
        CachePolicy::new(vec![SortKey {
            attribute: Attribute::TrafficCount,
            direction: Direction::KeepHigh,
        }])
    }

    /// Priority caching: highest-priority rules stay in the fast level.
    #[must_use]
    pub fn priority() -> CachePolicy {
        CachePolicy::new(vec![SortKey {
            attribute: Attribute::Priority,
            direction: Direction::KeepHigh,
        }])
    }

    /// Priority first, LRU tie-break — a composite LEX policy used to
    /// exercise Algorithm 2's recursion.
    #[must_use]
    pub fn priority_then_lru() -> CachePolicy {
        CachePolicy::new(vec![
            SortKey {
                attribute: Attribute::Priority,
                direction: Direction::KeepHigh,
            },
            SortKey {
                attribute: Attribute::UseTime,
                direction: Direction::KeepHigh,
            },
        ])
    }

    /// Traffic first, FIFO tie-break (an LFU-with-aging flavour).
    #[must_use]
    pub fn lfu_then_fifo() -> CachePolicy {
        CachePolicy::new(vec![
            SortKey {
                attribute: Attribute::TrafficCount,
                direction: Direction::KeepHigh,
            },
            SortKey {
                attribute: Attribute::InsertionTime,
                direction: Direction::KeepLow,
            },
        ])
    }

    /// Compares two entries; `Greater` means `a` is *better* (kept over
    /// `b`). Falls back to entry id (older id better) so the order is
    /// total and deterministic.
    #[must_use]
    pub fn cmp_entries(&self, a: &FlowEntry, b: &FlowEntry) -> Ordering {
        for key in &self.keys {
            let va = key.attribute.value_of(a);
            let vb = key.attribute.value_of(b);
            let ord = match key.direction {
                Direction::KeepHigh => va.cmp(&vb),
                Direction::KeepLow => vb.cmp(&va),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        // Deterministic tie-break: earlier-installed id wins.
        b.id.cmp(&a.id)
    }

    /// Index of the *worst* entry in a slice (the eviction victim).
    /// Returns `None` for an empty slice.
    #[must_use]
    pub fn worst_index(&self, entries: &[FlowEntry]) -> Option<usize> {
        let mut worst: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            match worst {
                None => worst = Some(i),
                Some(w) => {
                    if self.cmp_entries(e, &entries[w]) == Ordering::Less {
                        worst = Some(i);
                    }
                }
            }
        }
        worst
    }

    /// Index of the *best* entry in a slice (the promotion candidate).
    #[must_use]
    pub fn best_index(&self, entries: &[FlowEntry]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            match best {
                None => best = Some(i),
                Some(b) => {
                    if self.cmp_entries(e, &entries[b]) == Ordering::Greater {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Human-readable form, e.g. `"use_time↑"` or `"priority↑,use_time↑"`.
    #[must_use]
    pub fn describe(&self) -> String {
        self.keys
            .iter()
            .map(|k| {
                let arrow = match k.direction {
                    Direction::KeepHigh => "↑",
                    Direction::KeepLow => "↓",
                };
                format!("{}{arrow}", k.attribute)
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryId;
    use ofwire::flow_match::FlowMatch;
    use simnet::time::SimTime;

    fn entry(id: u64, inserted: u64, used: u64, pkts: u64, prio: u16) -> FlowEntry {
        let mut e = FlowEntry::new(
            EntryId(id),
            FlowMatch::l3_for_id(id as u32),
            prio,
            vec![],
            SimTime(inserted),
        );
        e.last_used_at = SimTime(used);
        e.packet_count = pkts;
        e
    }

    #[test]
    fn fifo_keeps_oldest() {
        let p = CachePolicy::fifo();
        let old = entry(1, 10, 10, 0, 5);
        let new = entry(2, 20, 20, 0, 5);
        assert_eq!(p.cmp_entries(&old, &new), Ordering::Greater);
        let v = vec![old, new];
        assert_eq!(p.worst_index(&v), Some(1));
        assert_eq!(p.best_index(&v), Some(0));
    }

    #[test]
    fn lru_keeps_most_recent() {
        let p = CachePolicy::lru();
        let stale = entry(1, 0, 10, 5, 5);
        let fresh = entry(2, 0, 99, 1, 5);
        assert_eq!(p.cmp_entries(&fresh, &stale), Ordering::Greater);
        assert_eq!(p.worst_index(&[stale, fresh]), Some(0));
    }

    #[test]
    fn lfu_keeps_most_trafficked() {
        let p = CachePolicy::lfu();
        let hot = entry(1, 0, 0, 100, 1);
        let cold = entry(2, 0, 0, 2, 9);
        assert_eq!(p.cmp_entries(&hot, &cold), Ordering::Greater);
    }

    #[test]
    fn priority_keeps_highest() {
        let p = CachePolicy::priority();
        let hi = entry(1, 0, 0, 0, 200);
        let lo = entry(2, 0, 0, 0, 100);
        assert_eq!(p.cmp_entries(&hi, &lo), Ordering::Greater);
    }

    #[test]
    fn lex_tie_break_consults_second_key() {
        let p = CachePolicy::priority_then_lru();
        let a = entry(1, 0, 50, 0, 100);
        let b = entry(2, 0, 60, 0, 100); // same priority, fresher use
        assert_eq!(p.cmp_entries(&b, &a), Ordering::Greater);
        // Different priorities: first key decides regardless of use time.
        let c = entry(3, 0, 1, 0, 200);
        assert_eq!(p.cmp_entries(&c, &b), Ordering::Greater);
    }

    #[test]
    fn final_tie_break_is_total_and_deterministic() {
        let p = CachePolicy::lru();
        let a = entry(1, 0, 10, 0, 5);
        let b = entry(2, 0, 10, 0, 5);
        // Identical attributes: lower id (installed earlier) wins.
        assert_eq!(p.cmp_entries(&a, &b), Ordering::Greater);
        assert_eq!(p.cmp_entries(&b, &a), Ordering::Less);
    }

    #[test]
    fn worst_and_best_of_empty() {
        let p = CachePolicy::lru();
        assert_eq!(p.worst_index(&[]), None);
        assert_eq!(p.best_index(&[]), None);
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(CachePolicy::fifo().describe(), "insertion_time↓");
        assert_eq!(
            CachePolicy::priority_then_lru().describe(),
            "priority↑,use_time↑"
        );
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::KeepHigh.flip(), Direction::KeepLow);
        assert_eq!(Direction::KeepLow.flip(), Direction::KeepHigh);
    }

    #[test]
    fn serial_attributes() {
        assert!(Attribute::InsertionTime.is_serial());
        assert!(Attribute::UseTime.is_serial());
        assert!(!Attribute::TrafficCount.is_serial());
        assert!(!Attribute::Priority.is_serial());
    }
}
