//! Cache-replacement policies as lexicographic attribute orderings.
//!
//! This is the paper's formal model of switch caching (§5.1) implemented
//! directly:
//!
//! * **ATTRIB** — policies read a subset of {insertion time, use time,
//!   traffic count, priority} ([`Attribute`]).
//! * **MONOTONE** — each attribute is compared monotonically, either
//!   preferring high or low values ([`Direction`]).
//! * **LEX** — a total order is formed lexicographically over a
//!   permutation of the attributes ([`CachePolicy`]), with the stable
//!   entry id as the deterministic final tie-break.
//!
//! Classic policies are instances: FIFO keeps the *oldest* insertions in
//! the fast level (which is exactly the paper's Switch #1, whose software
//! table acts as a FIFO spill buffer for TCAM), LRU keeps the most
//! recently used, LFU the most trafficked, and priority caching keeps the
//! highest priorities.

use crate::entry::{EntryId, FlowEntry};
use crate::table::FlowTable;
use serde::{Deserialize, Serialize};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;

/// The per-flow attributes a policy may inspect (paper ATTRIB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// Time the entry was installed.
    InsertionTime,
    /// Time a packet last matched the entry.
    UseTime,
    /// Number of packets matched.
    TrafficCount,
    /// Rule priority.
    Priority,
}

impl Attribute {
    /// All four attributes, in the paper's listing order.
    pub const ALL: [Attribute; 4] = [
        Attribute::InsertionTime,
        Attribute::UseTime,
        Attribute::TrafficCount,
        Attribute::Priority,
    ];

    /// "Serial" attributes take distinct values for every flow (each
    /// install/use happens at a distinct instant), so an ordering on one
    /// of them is already total — Algorithm 2 stops recursing when it
    /// identifies one.
    #[must_use]
    pub fn is_serial(self) -> bool {
        matches!(self, Attribute::InsertionTime | Attribute::UseTime)
    }

    /// Reads this attribute of an entry, widened to `u64` for comparison.
    #[must_use]
    pub fn value_of(self, e: &FlowEntry) -> u64 {
        match self {
            Attribute::InsertionTime => e.inserted_at.0,
            Attribute::UseTime => e.last_used_at.0,
            Attribute::TrafficCount => e.packet_count,
            Attribute::Priority => u64::from(e.priority),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Attribute::InsertionTime => "insertion_time",
            Attribute::UseTime => "use_time",
            Attribute::TrafficCount => "traffic_count",
            Attribute::Priority => "priority",
        };
        f.write_str(s)
    }
}

/// Which extreme of an attribute is *kept* in the fast level (paper
/// MONOTONE: the comparison is monotonic increasing or decreasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Higher values are better (kept); lowest evicted.
    KeepHigh,
    /// Lower values are better (kept); highest evicted.
    KeepLow,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub fn flip(self) -> Direction {
        match self {
            Direction::KeepHigh => Direction::KeepLow,
            Direction::KeepLow => Direction::KeepHigh,
        }
    }
}

/// One sort key: an attribute plus its direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SortKey {
    /// Attribute inspected.
    pub attribute: Attribute,
    /// Which extreme is kept.
    pub direction: Direction,
}

/// A cache policy: a lexicographic ordering over sort keys (paper LEX).
///
/// [`CachePolicy::cmp_entries`] returns [`Ordering::Greater`] when the
/// first entry ranks *better* (more deserving of the fast level).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePolicy {
    /// Sort keys, most significant first.
    pub keys: Vec<SortKey>,
}

impl CachePolicy {
    /// Builds a policy from `(attribute, direction)` pairs.
    #[must_use]
    pub fn new(keys: Vec<SortKey>) -> CachePolicy {
        CachePolicy { keys }
    }

    /// FIFO spill: the oldest insertions stay in the fast level; new
    /// entries overflow to software (paper's Switch #1 behaviour).
    #[must_use]
    pub fn fifo() -> CachePolicy {
        CachePolicy::new(vec![SortKey {
            attribute: Attribute::InsertionTime,
            direction: Direction::KeepLow,
        }])
    }

    /// LRU: most recently used entries stay in the fast level.
    #[must_use]
    pub fn lru() -> CachePolicy {
        CachePolicy::new(vec![SortKey {
            attribute: Attribute::UseTime,
            direction: Direction::KeepHigh,
        }])
    }

    /// LFU: most heavily trafficked entries stay in the fast level.
    #[must_use]
    pub fn lfu() -> CachePolicy {
        CachePolicy::new(vec![SortKey {
            attribute: Attribute::TrafficCount,
            direction: Direction::KeepHigh,
        }])
    }

    /// Priority caching: highest-priority rules stay in the fast level.
    #[must_use]
    pub fn priority() -> CachePolicy {
        CachePolicy::new(vec![SortKey {
            attribute: Attribute::Priority,
            direction: Direction::KeepHigh,
        }])
    }

    /// Priority first, LRU tie-break — a composite LEX policy used to
    /// exercise Algorithm 2's recursion.
    #[must_use]
    pub fn priority_then_lru() -> CachePolicy {
        CachePolicy::new(vec![
            SortKey {
                attribute: Attribute::Priority,
                direction: Direction::KeepHigh,
            },
            SortKey {
                attribute: Attribute::UseTime,
                direction: Direction::KeepHigh,
            },
        ])
    }

    /// Traffic first, FIFO tie-break (an LFU-with-aging flavour).
    #[must_use]
    pub fn lfu_then_fifo() -> CachePolicy {
        CachePolicy::new(vec![
            SortKey {
                attribute: Attribute::TrafficCount,
                direction: Direction::KeepHigh,
            },
            SortKey {
                attribute: Attribute::InsertionTime,
                direction: Direction::KeepLow,
            },
        ])
    }

    /// Flattens an entry into a totally ordered key whose natural `Ord`
    /// is exactly [`CachePolicy::cmp_entries`]: greater key ⇔ better
    /// entry. `KeepLow` attributes are bitwise-complemented (which
    /// reverses `u64` order), unused key slots are a constant, and the
    /// complemented id is the final component, so ties are impossible
    /// between distinct entries. This is what lets an [`EvictionIndex`]
    /// keep policy order in plain binary heaps.
    ///
    /// Attributes are deduplicated (first occurrence wins) so policies
    /// with repeated attributes still fit the four slots: a repeated
    /// attribute can never influence `cmp_entries` after its first
    /// appearance.
    #[must_use]
    pub fn sort_key(&self, e: &FlowEntry) -> PolicyKey {
        let mut slots = [0u64; 4];
        let mut seen: [Option<Attribute>; 4] = [None; 4];
        let mut n = 0;
        for key in &self.keys {
            if seen[..n].contains(&Some(key.attribute)) {
                continue;
            }
            seen[n] = Some(key.attribute);
            let v = key.attribute.value_of(e);
            slots[n] = match key.direction {
                Direction::KeepHigh => v,
                Direction::KeepLow => !v,
            };
            n += 1;
            if n == 4 {
                break;
            }
        }
        PolicyKey {
            slots,
            id_rank: !e.id.0,
        }
    }

    /// Compares two entries; `Greater` means `a` is *better* (kept over
    /// `b`). Falls back to entry id (older id better) so the order is
    /// total and deterministic.
    #[must_use]
    pub fn cmp_entries(&self, a: &FlowEntry, b: &FlowEntry) -> Ordering {
        for key in &self.keys {
            let va = key.attribute.value_of(a);
            let vb = key.attribute.value_of(b);
            let ord = match key.direction {
                Direction::KeepHigh => va.cmp(&vb),
                Direction::KeepLow => vb.cmp(&va),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        // Deterministic tie-break: earlier-installed id wins.
        b.id.cmp(&a.id)
    }

    /// Index of the *worst* entry in a slice (the eviction victim).
    /// Returns `None` for an empty slice.
    ///
    /// Linear scan — this is the reference oracle. Hot paths route
    /// victim selection through [`EvictionIndex::worst`], which answers
    /// the same question in O(log n) amortized.
    #[must_use]
    pub fn worst_index(&self, entries: &[FlowEntry]) -> Option<usize> {
        let mut worst: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            match worst {
                None => worst = Some(i),
                Some(w) => {
                    if self.cmp_entries(e, &entries[w]) == Ordering::Less {
                        worst = Some(i);
                    }
                }
            }
        }
        worst
    }

    /// Index of the *best* entry in a slice (the promotion candidate).
    ///
    /// Linear scan — the reference oracle for [`EvictionIndex::best`].
    #[must_use]
    pub fn best_index(&self, entries: &[FlowEntry]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            match best {
                None => best = Some(i),
                Some(b) => {
                    if self.cmp_entries(e, &entries[b]) == Ordering::Greater {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Human-readable form, e.g. `"use_time↑"` or `"priority↑,use_time↑"`.
    #[must_use]
    pub fn describe(&self) -> String {
        self.keys
            .iter()
            .map(|k| {
                let arrow = match k.direction {
                    Direction::KeepHigh => "↑",
                    Direction::KeepLow => "↓",
                };
                format!("{}{arrow}", k.attribute)
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// An entry's position in a policy's total order, flattened to plain
/// integers (see [`CachePolicy::sort_key`]): lexicographically greater ⇔
/// better. The complemented entry id makes keys unique per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PolicyKey {
    /// Direction-transformed attribute values, most significant first;
    /// unused slots are zero (constant, so they never break ties).
    slots: [u64; 4],
    /// `!id` — smaller ids (installed earlier) rank better.
    id_rank: u64,
}

/// Incrementally repaired victim/promotion index for one cache level.
///
/// Two lazy binary heaps hold `(PolicyKey, id)` snapshots: a min-heap
/// whose top is the policy's *worst* resident (the eviction victim) and a
/// max-heap whose top is the *best* (the backfill candidate). Snapshots
/// are pushed on insert and whenever a touch changes an entry's
/// attributes; removals and touches invalidate old snapshots *lazily* —
/// a popped snapshot is discarded unless the entry is still installed
/// with exactly that key. Queries are therefore O(log n) amortized
/// (each stale snapshot is paid for by the push that created it), and
/// always return precisely what the linear
/// [`CachePolicy::worst_index`]/[`CachePolicy::best_index`] oracles
/// would, because [`PolicyKey`] order equals `cmp_entries` order.
#[derive(Debug, Clone, Default)]
pub struct EvictionIndex {
    /// Min-heap: worst snapshot on top.
    worst: BinaryHeap<Reverse<(PolicyKey, EntryId)>>,
    /// Max-heap: best snapshot on top.
    best: BinaryHeap<(PolicyKey, EntryId)>,
}

impl EvictionIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> EvictionIndex {
        EvictionIndex::default()
    }

    /// Snapshots (live + stale) currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.worst.len().max(self.best.len())
    }

    /// True when no snapshots are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.worst.is_empty() && self.best.is_empty()
    }

    /// Records the current key of an entry — on insert, and again after
    /// every attribute change (the old snapshot turns stale).
    pub fn note(&mut self, key: PolicyKey, id: EntryId) {
        self.worst.push(Reverse((key, id)));
        self.best.push((key, id));
    }

    /// Drops every snapshot and re-records all current residents. Called
    /// when stale snapshots outnumber live entries too heavily, bounding
    /// heap growth under touch-heavy workloads.
    pub fn rebuild(&mut self, policy: &CachePolicy, table: &FlowTable) {
        self.worst.clear();
        self.best.clear();
        for e in table.iter() {
            self.note(policy.sort_key(e), e.id);
        }
    }

    /// A snapshot is live iff its entry is still installed with exactly
    /// the recorded key (touched entries re-record under the new key).
    fn validate(
        policy: &CachePolicy,
        table: &FlowTable,
        key: PolicyKey,
        id: EntryId,
    ) -> Option<usize> {
        let pos = table.position_of(id)?;
        (policy.sort_key(table.get(pos)) == key).then_some(pos)
    }

    /// Position of the worst resident of `table` (the eviction victim),
    /// equal to `policy.worst_index(&table.snapshot())`.
    pub fn worst(&mut self, policy: &CachePolicy, table: &FlowTable) -> Option<usize> {
        while let Some(&Reverse((key, id))) = self.worst.peek() {
            match Self::validate(policy, table, key, id) {
                Some(pos) => return Some(pos),
                None => {
                    self.worst.pop();
                }
            }
        }
        None
    }

    /// Position of the best resident of `table` (the backfill/promotion
    /// candidate), equal to `policy.best_index(&table.snapshot())`.
    pub fn best(&mut self, policy: &CachePolicy, table: &FlowTable) -> Option<usize> {
        while let Some(&(key, id)) = self.best.peek() {
            match Self::validate(policy, table, key, id) {
                Some(pos) => return Some(pos),
                None => {
                    self.best.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryId;
    use ofwire::flow_match::FlowMatch;
    use simnet::time::SimTime;

    fn entry(id: u64, inserted: u64, used: u64, pkts: u64, prio: u16) -> FlowEntry {
        let mut e = FlowEntry::new(
            EntryId(id),
            FlowMatch::l3_for_id(id as u32),
            prio,
            vec![],
            SimTime(inserted),
        );
        e.last_used_at = SimTime(used);
        e.packet_count = pkts;
        e
    }

    #[test]
    fn fifo_keeps_oldest() {
        let p = CachePolicy::fifo();
        let old = entry(1, 10, 10, 0, 5);
        let new = entry(2, 20, 20, 0, 5);
        assert_eq!(p.cmp_entries(&old, &new), Ordering::Greater);
        let v = vec![old, new];
        assert_eq!(p.worst_index(&v), Some(1));
        assert_eq!(p.best_index(&v), Some(0));
    }

    #[test]
    fn lru_keeps_most_recent() {
        let p = CachePolicy::lru();
        let stale = entry(1, 0, 10, 5, 5);
        let fresh = entry(2, 0, 99, 1, 5);
        assert_eq!(p.cmp_entries(&fresh, &stale), Ordering::Greater);
        assert_eq!(p.worst_index(&[stale, fresh]), Some(0));
    }

    #[test]
    fn lfu_keeps_most_trafficked() {
        let p = CachePolicy::lfu();
        let hot = entry(1, 0, 0, 100, 1);
        let cold = entry(2, 0, 0, 2, 9);
        assert_eq!(p.cmp_entries(&hot, &cold), Ordering::Greater);
    }

    #[test]
    fn priority_keeps_highest() {
        let p = CachePolicy::priority();
        let hi = entry(1, 0, 0, 0, 200);
        let lo = entry(2, 0, 0, 0, 100);
        assert_eq!(p.cmp_entries(&hi, &lo), Ordering::Greater);
    }

    #[test]
    fn lex_tie_break_consults_second_key() {
        let p = CachePolicy::priority_then_lru();
        let a = entry(1, 0, 50, 0, 100);
        let b = entry(2, 0, 60, 0, 100); // same priority, fresher use
        assert_eq!(p.cmp_entries(&b, &a), Ordering::Greater);
        // Different priorities: first key decides regardless of use time.
        let c = entry(3, 0, 1, 0, 200);
        assert_eq!(p.cmp_entries(&c, &b), Ordering::Greater);
    }

    #[test]
    fn final_tie_break_is_total_and_deterministic() {
        let p = CachePolicy::lru();
        let a = entry(1, 0, 10, 0, 5);
        let b = entry(2, 0, 10, 0, 5);
        // Identical attributes: lower id (installed earlier) wins.
        assert_eq!(p.cmp_entries(&a, &b), Ordering::Greater);
        assert_eq!(p.cmp_entries(&b, &a), Ordering::Less);
    }

    #[test]
    fn worst_and_best_of_empty() {
        let p = CachePolicy::lru();
        assert_eq!(p.worst_index(&[]), None);
        assert_eq!(p.best_index(&[]), None);
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(CachePolicy::fifo().describe(), "insertion_time↓");
        assert_eq!(
            CachePolicy::priority_then_lru().describe(),
            "priority↑,use_time↑"
        );
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::KeepHigh.flip(), Direction::KeepLow);
        assert_eq!(Direction::KeepLow.flip(), Direction::KeepHigh);
    }

    #[test]
    fn serial_attributes() {
        assert!(Attribute::InsertionTime.is_serial());
        assert!(Attribute::UseTime.is_serial());
        assert!(!Attribute::TrafficCount.is_serial());
        assert!(!Attribute::Priority.is_serial());
    }
}
