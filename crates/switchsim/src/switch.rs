//! The assembled switch: pipeline + latency models + per-switch RNG,
//! exposing the operations a control channel drives.

use crate::entry::{EntryId, FlowEntry};
use crate::expiry::Expired;
use crate::latency::{ControlCosts, DataPathLatency};
use crate::pipeline::{Hit, ModOutcome, Pipeline, TableFull};
use crate::profiles::{ReportedFeatures, SwitchProfile};
use ofwire::features::{FeaturesReply, PhyPort};
use ofwire::flow_match::FlowKey;
use ofwire::flow_mod::{FlowMod, FlowModCommand};
use ofwire::stats::{FlowStatsEntry, TableStatsEntry};
use ofwire::types::Dpid;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

/// Why a flow-mod was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModError {
    /// Every table is full (`FlowModFailed/ALL_TABLES_FULL`).
    TableFull,
}

/// What a successful flow-mod did (used for cost attribution and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModEffect {
    /// A rule was added at the given level.
    Added {
        /// Level index where the new rule landed.
        level: usize,
        /// True if that level is hardware-backed.
        hardware: bool,
        /// TCAM entries shifted.
        shifts: usize,
        /// Id of the new entry.
        id: EntryId,
    },
    /// Rules were modified in place.
    Modified(usize),
    /// Rules were deleted.
    Deleted(usize),
}

/// Plain counters of everything the data path did over a switch's
/// lifetime — the observable residue of the pipeline's add/evict/delete
/// cascades and lookup promotions. Maintained unconditionally (a few
/// u64 increments on paths that already charge microseconds of virtual
/// latency) and snapshotted into the telemetry metrics registry per
/// experiment cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPathStats {
    /// Rules added into a hardware-backed level.
    pub adds_hw: u64,
    /// Rules added into a software level.
    pub adds_sw: u64,
    /// Adds rejected with all tables full.
    pub add_rejects: u64,
    /// TCAM capacity units shifted by priority-ordered adds (the Fig 3b
    /// cost driver).
    pub tcam_shift_units: u64,
    /// Rules modified in place.
    pub mods: u64,
    /// Rules removed by explicit deletes.
    pub deleted_rules: u64,
    /// Rules removed by idle/hard timeout (cache evictions included —
    /// expiry is how cached entries leave policy-cached pipelines).
    pub expired_rules: u64,
    /// Data-plane lookups injected.
    pub lookups: u64,
    /// Lookups served by the fastest (level-0) table — the flow-table
    /// index hit count; `fast_hits / lookups` is the hit rate.
    pub fast_hits: u64,
    /// Lookups served by a slower level.
    pub slow_hits: u64,
    /// Lookups that missed every level (controller punt).
    pub misses: u64,
}

/// A simulated OpenFlow switch.
#[derive(Debug, Clone)]
pub struct Switch {
    /// Datapath id.
    pub dpid: Dpid,
    /// Profile name (for reporting).
    pub profile_name: String,
    pipeline: Pipeline,
    control: ControlCosts,
    datapath: DataPathLatency,
    reported: ReportedFeatures,
    rng: DetRng,
    next_entry_id: u64,
    lookup_count: u64,
    matched_count: u64,
    expired_queue: Vec<Expired>,
    stats: DataPathStats,
}

impl Switch {
    /// Instantiates a switch from a profile with a deterministic seed.
    ///
    /// If the profile preinstalls a default (table-miss punt) route, one
    /// capacity unit of the fastest hardware level is reserved for it —
    /// reproducing Switch #1's observable 2047-of-2048 usable slots
    /// (Fig 2b) — without shadowing real rules in lookups.
    #[must_use]
    pub fn new(profile: SwitchProfile, dpid: Dpid, seed: u64) -> Switch {
        let mut pipeline = profile.pipeline;
        if profile.preinstalled_default_route {
            if let Pipeline::PolicyCached { levels, .. } = &mut pipeline {
                if let Some(g) = levels.first_mut().and_then(|l| l.geometry.as_mut()) {
                    g.capacity_units = g.capacity_units.saturating_sub(1);
                }
            }
        }
        Switch {
            dpid,
            profile_name: profile.name,
            pipeline,
            control: profile.control,
            datapath: profile.datapath,
            reported: profile.reported,
            rng: DetRng::new(seed ^ dpid.0),
            next_entry_id: 1,
            lookup_count: 0,
            matched_count: 0,
            expired_queue: Vec::new(),
            stats: DataPathStats::default(),
        }
    }

    /// Lifetime data-path counters (adds, evictions, shifts, hit rates).
    #[must_use]
    pub fn stats(&self) -> DataPathStats {
        self.stats
    }

    /// Removes timed-out entries as of `now`, queueing `flow_removed`
    /// records for [`Switch::take_expired`]. Called lazily before every
    /// control or data operation (and callable explicitly).
    pub fn expire(&mut self, now: SimTime) {
        let expired = self.pipeline.expire(now);
        self.stats.expired_rules += expired.len() as u64;
        self.expired_queue.extend(expired);
    }

    /// Drains the queued expiry notifications.
    pub fn take_expired(&mut self) -> Vec<Expired> {
        std::mem::take(&mut self.expired_queue)
    }

    /// Applies a flow-mod, returning its effect and processing cost.
    pub fn apply_flow_mod(
        &mut self,
        fm: &FlowMod,
        now: SimTime,
    ) -> (Result<FlowModEffect, FlowModError>, SimDuration) {
        self.expire(now);
        match fm.command {
            FlowModCommand::Add => {
                let entry = self.make_entry(fm, now);
                match self.pipeline.add(entry) {
                    Ok(out) => {
                        self.note_add(out.hardware, out.shifts);
                        let cost = self
                            .control
                            .add_cost(out.hardware, out.shifts, &mut self.rng);
                        (
                            Ok(FlowModEffect::Added {
                                level: out.level,
                                hardware: out.hardware,
                                shifts: out.shifts,
                                id: out.id,
                            }),
                            cost,
                        )
                    }
                    Err(TableFull) => {
                        self.stats.add_rejects += 1;
                        // A rejected add still costs the switch a lookup.
                        let cost = self.control.add_cost(false, 0, &mut self.rng);
                        (Err(FlowModError::TableFull), cost)
                    }
                }
            }
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict = fm.command == FlowModCommand::ModifyStrict;
                let fallback = self.make_entry(fm, now);
                let resident = self.pipeline.rule_count();
                match self.pipeline.modify(
                    &fm.flow_match,
                    fm.priority,
                    strict,
                    &fm.actions,
                    fallback,
                ) {
                    Ok(ModOutcome::Modified(n)) => {
                        self.stats.mods += n as u64;
                        let cost = self.control.mod_cost(n, resident, &mut self.rng);
                        (Ok(FlowModEffect::Modified(n)), cost)
                    }
                    Ok(ModOutcome::AddedInstead(out)) => {
                        self.note_add(out.hardware, out.shifts);
                        let cost = self
                            .control
                            .add_cost(out.hardware, out.shifts, &mut self.rng);
                        (
                            Ok(FlowModEffect::Added {
                                level: out.level,
                                hardware: out.hardware,
                                shifts: out.shifts,
                                id: out.id,
                            }),
                            cost,
                        )
                    }
                    Err(TableFull) => {
                        let cost = self.control.mod_cost(0, resident, &mut self.rng);
                        (Err(FlowModError::TableFull), cost)
                    }
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = fm.command == FlowModCommand::DeleteStrict;
                let n = self
                    .pipeline
                    .delete(&fm.flow_match, fm.priority, strict, fm.out_port);
                self.stats.deleted_rules += n as u64;
                let cost = self.control.del_cost(n, &mut self.rng);
                (Ok(FlowModEffect::Deleted(n)), cost)
            }
        }
    }

    fn note_add(&mut self, hardware: bool, shifts: usize) {
        if hardware {
            self.stats.adds_hw += 1;
        } else {
            self.stats.adds_sw += 1;
        }
        self.stats.tcam_shift_units += shifts as u64;
    }

    fn make_entry(&mut self, fm: &FlowMod, now: SimTime) -> FlowEntry {
        let id = EntryId(self.next_entry_id);
        self.next_entry_id += 1;
        let mut e = FlowEntry::new(id, fm.flow_match, fm.priority, fm.actions.clone(), now);
        e.cookie = fm.cookie;
        e.idle_timeout = fm.idle_timeout;
        e.hard_timeout = fm.hard_timeout;
        e
    }

    /// Injects a data packet, returning where it was served and the
    /// forwarding delay (the per-level delays of Fig 2).
    pub fn inject(&mut self, key: &FlowKey, now: SimTime, bytes: u64) -> (Hit, SimDuration) {
        self.expire(now);
        self.lookup_count += 1;
        self.stats.lookups += 1;
        let hit = self.pipeline.lookup_touch(key, now, bytes);
        match hit {
            Hit::Table { level: 0, .. } => {
                self.matched_count += 1;
                self.stats.fast_hits += 1;
            }
            Hit::Table { .. } => {
                self.matched_count += 1;
                self.stats.slow_hits += 1;
            }
            Hit::Miss => self.stats.misses += 1,
        }
        let delay = self.datapath.delay(&hit, &mut self.rng);
        (hit, delay)
    }

    /// Self-reported features (may be inaccurate, per the paper).
    #[must_use]
    pub fn features_reply(&self, n_ports: u16) -> FeaturesReply {
        FeaturesReply {
            datapath_id: self.dpid,
            n_buffers: self.reported.n_buffers,
            n_tables: self.reported.n_tables,
            capabilities: 0x87,
            actions: 0xfff,
            ports: (1..=n_ports).map(PhyPort::gigabit).collect(),
        }
    }

    /// Per-flow statistics for every installed rule.
    #[must_use]
    pub fn flow_stats(&self, now: SimTime) -> Vec<FlowStatsEntry> {
        self.pipeline
            .entries()
            .into_iter()
            .map(|(level, e)| {
                let age = now.since(e.inserted_at);
                FlowStatsEntry {
                    table_id: level as u8,
                    flow_match: e.flow_match,
                    duration_sec: (age.0 / 1_000_000_000) as u32,
                    duration_nsec: (age.0 % 1_000_000_000) as u32,
                    priority: e.priority,
                    idle_timeout: e.idle_timeout,
                    hard_timeout: e.hard_timeout,
                    cookie: e.cookie,
                    packet_count: e.packet_count,
                    byte_count: e.byte_count,
                    actions: e.actions.clone(),
                }
            })
            .collect()
    }

    /// Per-table statistics. `max_entries` repeats the *reported*
    /// capacity, not reality.
    #[must_use]
    pub fn table_stats(&self) -> Vec<TableStatsEntry> {
        let names: Vec<String> = match &self.pipeline {
            Pipeline::PolicyCached { levels, .. } => {
                levels.iter().map(|l| l.name.clone()).collect()
            }
            Pipeline::OvsMicroflow { .. } => vec!["kernel".into(), "userspace".into()],
        };
        names
            .into_iter()
            .enumerate()
            .map(|(i, name)| TableStatsEntry {
                table_id: i as u8,
                name,
                wildcards: 0x3f_ffff,
                max_entries: self.reported.max_entries,
                active_count: self.pipeline.level_occupancy(i) as u32,
                lookup_count: self.lookup_count,
                matched_count: self.matched_count,
            })
            .collect()
    }

    /// Total installed rules.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.pipeline.rule_count()
    }

    /// Rules resident at a level (see [`Pipeline::level_occupancy`]).
    #[must_use]
    pub fn level_occupancy(&self, level: usize) -> usize {
        self.pipeline.level_occupancy(level)
    }

    /// Level currently holding an entry.
    #[must_use]
    pub fn level_of(&self, id: EntryId) -> Option<usize> {
        self.pipeline.level_of(id)
    }

    /// Number of lookup levels.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.pipeline.level_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::flow_match::FlowMatch;

    fn switch(profile: SwitchProfile) -> Switch {
        Switch::new(profile, Dpid(1), 42)
    }

    #[test]
    fn vendor2_rejects_at_capacity() {
        let mut s = switch(SwitchProfile::vendor2());
        let mut installed = 0;
        for i in 0.. {
            let fm = FlowMod::add(FlowMatch::l3_for_id(i), 100);
            let (res, _) = s.apply_flow_mod(&fm, SimTime(u64::from(i)));
            match res {
                Ok(_) => installed += 1,
                Err(FlowModError::TableFull) => break,
            }
        }
        assert_eq!(installed, 2560);
    }

    #[test]
    fn vendor1_default_route_reserves_one_unit() {
        let mut s = switch(SwitchProfile::vendor1());
        // Double-wide entries: 2047 fit in TCAM, the rest spill.
        for i in 0..3000u32 {
            let fm = FlowMod::add(FlowMatch::l2l3_for_id(i), 100);
            let (res, _) = s.apply_flow_mod(&fm, SimTime(u64::from(i)));
            assert!(res.is_ok(), "software table is unbounded");
        }
        assert_eq!(s.level_occupancy(0), 2047);
        assert_eq!(s.level_occupancy(1), 3000 - 2047);
    }

    #[test]
    fn inject_reports_tiered_delays() {
        let mut s = switch(SwitchProfile::vendor1());
        let fm = FlowMod::add(FlowMatch::l3_for_id(1), 100);
        s.apply_flow_mod(&fm, SimTime(0)).0.unwrap();
        let (hit, fast) = s.inject(&FlowMatch::key_for_id(1), SimTime(10), 64);
        assert!(matches!(hit, Hit::Table { level: 0, .. }));
        let (miss, ctrl) = s.inject(&FlowMatch::key_for_id(999), SimTime(20), 64);
        assert_eq!(miss, Hit::Miss);
        assert!(ctrl > fast, "controller path slower than fast path");
    }

    #[test]
    fn mod_cheaper_than_shifted_add() {
        // The Fig 3b asymmetry: adds into a populated TCAM shift entries;
        // mods touch in place.
        let mut s = switch(SwitchProfile::vendor1());
        // Preinstall 1000 rules at descending priority so later adds
        // shift a lot.
        for i in 0..1000u32 {
            let fm = FlowMod::add(FlowMatch::l3_for_id(i), 5000 - i as u16);
            s.apply_flow_mod(&fm, SimTime(u64::from(i))).0.unwrap();
        }
        let (_, add_cost) =
            s.apply_flow_mod(&FlowMod::add(FlowMatch::l3_for_id(5000), 1), SimTime(5000));
        let (_, mod_cost) = s.apply_flow_mod(
            &FlowMod::modify_strict(FlowMatch::l3_for_id(5), 4995, vec![]),
            SimTime(5001),
        );
        assert!(
            add_cost > mod_cost,
            "low-priority add ({add_cost}) should out-cost a mod ({mod_cost})"
        );
    }

    #[test]
    fn delete_returns_count_and_cost() {
        let mut s = switch(SwitchProfile::ovs());
        for i in 0..10u32 {
            s.apply_flow_mod(&FlowMod::add(FlowMatch::l3_for_id(i), 10), SimTime(0))
                .0
                .unwrap();
        }
        let (res, cost) = s.apply_flow_mod(&FlowMod::delete_all(), SimTime(1));
        assert_eq!(res, Ok(FlowModEffect::Deleted(10)));
        assert!(cost > SimDuration::ZERO);
        assert_eq!(s.rule_count(), 0);
    }

    #[test]
    fn stats_reflect_traffic() {
        let mut s = switch(SwitchProfile::ovs());
        s.apply_flow_mod(&FlowMod::add(FlowMatch::l3_for_id(1), 10), SimTime(0))
            .0
            .unwrap();
        s.inject(&FlowMatch::key_for_id(1), SimTime(1_500_000_000), 100);
        s.inject(&FlowMatch::key_for_id(1), SimTime(2_000_000_000), 100);
        let stats = s.flow_stats(SimTime(3_000_000_000));
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].packet_count, 2);
        assert_eq!(stats[0].byte_count, 200);
        assert_eq!(stats[0].duration_sec, 3);
        let tables = s.table_stats();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].lookup_count, 2);
    }

    #[test]
    fn datapath_stats_track_cascades_and_hits() {
        let mut s = switch(SwitchProfile::vendor1());
        // Descending priorities: each add lands below the resident
        // rules, shifting TCAM entries (the Fig 3b cost driver).
        for i in 0..10u32 {
            let fm = FlowMod::add(FlowMatch::l3_for_id(i), 200 - i as u16);
            s.apply_flow_mod(&fm, SimTime(u64::from(i))).0.unwrap();
        }
        let st = s.stats();
        assert_eq!(st.adds_hw + st.adds_sw, 10);
        assert!(st.tcam_shift_units > 0, "descending priorities must shift");
        s.inject(&FlowMatch::key_for_id(1), SimTime(100), 64);
        s.inject(&FlowMatch::key_for_id(999), SimTime(101), 64);
        let st = s.stats();
        assert_eq!(st.lookups, 2);
        assert_eq!(st.fast_hits, 1);
        assert_eq!(st.misses, 1);
        s.apply_flow_mod(&FlowMod::delete_all(), SimTime(200))
            .0
            .unwrap();
        assert_eq!(s.stats().deleted_rules, 10);
    }

    #[test]
    fn features_reply_uses_reported_numbers() {
        let s = switch(SwitchProfile::vendor1());
        let fr = s.features_reply(4);
        assert_eq!(fr.datapath_id, Dpid(1));
        assert_eq!(fr.n_tables, 2);
        assert_eq!(fr.ports.len(), 4);
    }

    #[test]
    fn determinism_same_seed_same_costs() {
        let run = || {
            let mut s = Switch::new(SwitchProfile::vendor1(), Dpid(7), 99);
            let mut total = SimDuration::ZERO;
            for i in 0..50u32 {
                let fm = FlowMod::add(FlowMatch::l3_for_id(i), 1000 - i as u16);
                let (_, c) = s.apply_flow_mod(&fm, SimTime(u64::from(i)));
                total += c;
            }
            total
        };
        assert_eq!(run(), run());
    }
}
