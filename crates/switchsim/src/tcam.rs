//! TCAM geometry: slot-width accounting and priority-shift cost counting.
//!
//! Two hardware realities from the paper are modelled here:
//!
//! 1. **Width modes** (§3, Table 1) — how many slot units an entry
//!    consumes depends on which layers it matches and on how the TCAM is
//!    configured: Switch #1's single-wide mode fits 4K L2-only/L3-only
//!    rules but only 2K combined rules; Switch #2 is fixed double-wide
//!    (2560 whatever you install); Switch #3 adapts per entry type
//!    (767 vs 369).
//! 2. **Priority shifting** (§3, Fig 3) — TCAM entries are kept sorted by
//!    priority, so inserting an entry below existing higher-priority
//!    entries forces those to shift. Inserting in ascending priority
//!    order never shifts; descending order shifts everything every time.

use ofwire::flow_match::EntryKind;
use serde::{Deserialize, Serialize};

/// Slot-width accounting for a TCAM.
///
/// Capacity is expressed in abstract *units*; each entry kind costs a
/// number of units. This uniformly expresses all three vendor behaviours
/// (see constructors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcamGeometry {
    /// Total capacity in units.
    pub capacity_units: u64,
    /// Units consumed by an L2-only entry.
    pub cost_l2: u64,
    /// Units consumed by an L3-only entry.
    pub cost_l3: u64,
    /// Units consumed by a combined L2+L3 entry.
    pub cost_l2l3: u64,
}

impl TcamGeometry {
    /// Single-wide mode with `slots` physical slots: L2-only or L3-only
    /// entries take one slot, combined entries take two (Switch #1:
    /// 4K single / 2K double).
    #[must_use]
    pub fn single_wide(slots: u64) -> TcamGeometry {
        TcamGeometry {
            capacity_units: slots,
            cost_l2: 1,
            cost_l3: 1,
            cost_l2l3: 2,
        }
    }

    /// Fixed double-wide mode: every entry occupies a double-wide slot,
    /// so capacity is the same regardless of entry kind (Switch #2:
    /// 2560 always).
    #[must_use]
    pub fn double_wide(entries: u64) -> TcamGeometry {
        TcamGeometry {
            capacity_units: entries,
            cost_l2: 1,
            cost_l3: 1,
            cost_l2l3: 1,
        }
    }

    /// Adaptive mode calibrated by observed capacities: `narrow` entries
    /// of a single layer fit, or `wide` combined entries (Switch #3:
    /// 767 vs 369). Implemented with cross-multiplied unit costs so both
    /// capacities are hit exactly and mixes interpolate linearly.
    #[must_use]
    pub fn adaptive(narrow: u64, wide: u64) -> TcamGeometry {
        TcamGeometry {
            capacity_units: narrow * wide,
            cost_l2: wide,
            cost_l3: wide,
            cost_l2l3: narrow,
        }
    }

    /// Units consumed by one entry of the given kind.
    #[must_use]
    pub fn cost(&self, kind: EntryKind) -> u64 {
        match kind {
            EntryKind::L2Only => self.cost_l2,
            EntryKind::L3Only => self.cost_l3,
            EntryKind::L2L3 => self.cost_l2l3,
        }
    }

    /// How many entries of a single kind fit in an empty TCAM.
    #[must_use]
    pub fn capacity_for(&self, kind: EntryKind) -> u64 {
        self.capacity_units / self.cost(kind)
    }

    /// Whether an entry of `kind` fits given `used` units already
    /// consumed.
    #[must_use]
    pub fn fits(&self, used: u64, kind: EntryKind) -> bool {
        used + self.cost(kind) <= self.capacity_units
    }
}

/// Counts how many installed entries a new entry of priority
/// `new_priority` forces to shift: every entry strictly above it in the
/// priority sort. Matches the observed behaviour that ascending-priority
/// insertion never shifts and descending always does (§3, Fig 3c).
///
/// This linear scan is the reference oracle; tables keep a
/// [`PriorityIndex`] incrementally so the hot path answers the same
/// question in O(log 65536).
#[must_use]
pub fn shift_count<'a>(
    existing_priorities: impl Iterator<Item = &'a u16>,
    new_priority: u16,
) -> usize {
    existing_priorities.filter(|&&p| p > new_priority).count()
}

/// Fenwick (binary indexed) tree over the 16-bit priority space.
///
/// Maintains the multiset of installed priorities so "how many entries
/// sit strictly above priority `p`" — the per-insert shift cost of a
/// priority-sorted TCAM — is O(log 65536) instead of a table scan.
/// Updated on every insert/remove/evict; the array is allocated lazily on
/// first insert so empty tables stay a few machine words.
#[derive(Clone, Default)]
pub struct PriorityIndex {
    /// 1-based Fenwick array over priorities 0..=65535 (empty until the
    /// first insert). `tree[i]` covers a power-of-two span ending at
    /// priority `i - 1`.
    tree: Vec<u32>,
    /// Total number of recorded priorities.
    total: usize,
}

/// Fenwick positions run 1..=SPAN where position `p + 1` is priority `p`.
const PRIORITY_SPAN: usize = 1 << 16;

impl PriorityIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> PriorityIndex {
        PriorityIndex::default()
    }

    /// Number of recorded priorities (with multiplicity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if nothing is recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Records one entry at `priority`.
    pub fn add(&mut self, priority: u16) {
        if self.tree.is_empty() {
            self.tree = vec![0; PRIORITY_SPAN + 1];
        }
        let mut i = usize::from(priority) + 1;
        while i <= PRIORITY_SPAN {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
        self.total += 1;
    }

    /// Removes one previously recorded entry at `priority`.
    pub fn remove(&mut self, priority: u16) {
        debug_assert!(self.total > 0, "remove from empty priority index");
        let mut i = usize::from(priority) + 1;
        while i <= PRIORITY_SPAN {
            debug_assert!(self.tree[i] > 0, "priority {priority} not recorded");
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
        self.total -= 1;
    }

    /// Forgets everything (the backing array is kept for reuse).
    pub fn clear(&mut self) {
        self.tree.fill(0);
        self.total = 0;
    }

    /// How many recorded priorities are `<= priority` (prefix count).
    #[must_use]
    fn count_at_most(&self, priority: u16) -> usize {
        let mut i = usize::from(priority) + 1;
        let mut sum = 0usize;
        while i > 0 {
            sum += self.tree.get(i).copied().unwrap_or(0) as usize;
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// How many recorded priorities are strictly above `priority` — the
    /// indexed equivalent of [`shift_count`].
    #[must_use]
    pub fn count_above(&self, priority: u16) -> usize {
        self.total - self.count_at_most(priority)
    }
}

impl std::fmt::Debug for PriorityIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The 64 Ki-slot Fenwick array is noise in debug output; report
        // only the population.
        f.debug_struct("PriorityIndex")
            .field("total", &self.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wide_matches_switch1() {
        let g = TcamGeometry::single_wide(4096);
        assert_eq!(g.capacity_for(EntryKind::L2Only), 4096);
        assert_eq!(g.capacity_for(EntryKind::L3Only), 4096);
        assert_eq!(g.capacity_for(EntryKind::L2L3), 2048);
    }

    #[test]
    fn double_wide_matches_switch2() {
        let g = TcamGeometry::double_wide(2560);
        assert_eq!(g.capacity_for(EntryKind::L2Only), 2560);
        assert_eq!(g.capacity_for(EntryKind::L3Only), 2560);
        assert_eq!(g.capacity_for(EntryKind::L2L3), 2560);
    }

    #[test]
    fn adaptive_matches_switch3() {
        let g = TcamGeometry::adaptive(767, 369);
        assert_eq!(g.capacity_for(EntryKind::L2Only), 767);
        assert_eq!(g.capacity_for(EntryKind::L3Only), 767);
        assert_eq!(g.capacity_for(EntryKind::L2L3), 369);
    }

    #[test]
    fn fits_accounts_used_units() {
        let g = TcamGeometry::single_wide(4);
        assert!(g.fits(0, EntryKind::L2L3));
        assert!(g.fits(2, EntryKind::L2L3));
        assert!(!g.fits(3, EntryKind::L2L3));
        assert!(g.fits(3, EntryKind::L2Only));
        assert!(!g.fits(4, EntryKind::L2Only));
    }

    #[test]
    fn shift_counting() {
        let prios = [10u16, 20, 30, 30, 40];
        // Highest priority: nothing above it, no shift.
        assert_eq!(shift_count(prios.iter(), 50), 0);
        // Equal to the max: still nothing strictly above.
        assert_eq!(shift_count(prios.iter(), 40), 0);
        // Lowest: everything shifts.
        assert_eq!(shift_count(prios.iter(), 5), 5);
        // Middle: entries strictly above shift.
        assert_eq!(shift_count(prios.iter(), 30), 1);
        assert_eq!(shift_count(prios.iter(), 25), 3);
    }

    #[test]
    fn ascending_insertion_never_shifts() {
        let mut prios: Vec<u16> = Vec::new();
        let mut total = 0;
        for p in 0..100u16 {
            total += shift_count(prios.iter(), p);
            prios.push(p);
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn descending_insertion_always_shifts() {
        let mut prios: Vec<u16> = Vec::new();
        let mut total = 0;
        for p in (0..100u16).rev() {
            total += shift_count(prios.iter(), p);
            prios.push(p);
        }
        // i-th insert shifts i existing entries: 0+1+..+99.
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn priority_index_agrees_with_linear_oracle() {
        let mut idx = PriorityIndex::new();
        let mut prios: Vec<u16> = Vec::new();
        // Deterministic pseudo-random add/remove churn.
        let mut state = 0x9e37u32;
        for step in 0..500 {
            state = state.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            let p = (state >> 7) as u16;
            if step % 3 == 2 && !prios.is_empty() {
                let victim = prios.swap_remove((state as usize >> 3) % prios.len());
                idx.remove(victim);
            } else {
                idx.add(p);
                prios.push(p);
            }
            let probe = (state >> 13) as u16;
            assert_eq!(idx.count_above(probe), shift_count(prios.iter(), probe));
            assert_eq!(idx.len(), prios.len());
        }
    }

    #[test]
    fn priority_index_boundaries() {
        let mut idx = PriorityIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.count_above(0), 0);
        idx.add(0);
        idx.add(u16::MAX);
        assert_eq!(idx.count_above(0), 1);
        assert_eq!(idx.count_above(u16::MAX), 0);
        assert_eq!(idx.count_above(u16::MAX - 1), 1);
        idx.remove(u16::MAX);
        assert_eq!(idx.count_above(0), 0);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.count_above(0), 0);
    }
}
