//! The control-channel wire discipline, shared by every transport.
//!
//! The in-memory [`Testbed`](crate::harness::Testbed) and the real-TCP
//! transport (`tango-net`) must put byte-identical frames on their
//! channels and replay identical latency/derivation streams, or the
//! inference results diverge. Everything that fixes those bytes and
//! draws lives here, in one place both transports call:
//!
//! * [`ChanCodec`] — per-switch xid assignment, op → frame encoding,
//!   and barrier bookkeeping (registration at encode, pairing at
//!   completion).
//! * [`draw_latencies`] — the per-op link-latency draws, including the
//!   exact fork-label discipline that makes a switch's jitter depend
//!   only on its own operation history.
//! * [`op_completion`] — folding the agent's outputs for one op into
//!   its typed [`OpOutcome`] and control-CPU processing cost.
//! * [`attach_streams`] — deriving a switch's datapath seed and link
//!   RNG from the master stream (attach-order sensitive).
//! * [`VirtualTimeline`] — the per-switch arrival/start/done arithmetic
//!   a real transport replays to reproduce the testbed's virtual
//!   timestamps op by op.

use crate::agent::AgentOutput;
use crate::control::{ControlOp, OpOutcome, OpResult};
use ofwire::barrier::BarrierTracker;
use ofwire::message::Message;
use ofwire::packet::{PacketOut, RawFrame};
use ofwire::types::{Dpid, PortNo, Xid};
use simnet::link::Link;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

/// Telemetry counter keys for the wire plane, shared by every transport
/// that reports through [`simnet::telemetry`]. Keys live here — next to
/// the wire discipline both transports already import — so the real-TCP
/// reactor and any future transport aggregate under identical names.
pub mod wire_keys {
    /// Bytes read off sockets.
    pub const BYTES_IN: &str = "wire/bytes_in";
    /// Bytes written to sockets.
    pub const BYTES_OUT: &str = "wire/bytes_out";
    /// Reactor sweeps that moved at least one byte.
    pub const WAKEUPS: &str = "wire/wakeups";
    /// Socket reads/writes that returned `WouldBlock`.
    pub const WOULD_BLOCK: &str = "wire/would_block";
    /// Reads refused because a connection was over its high watermark.
    pub const WATERMARK_STALLS: &str = "wire/watermark_stalls";
    /// Connections bound to this shard over its lifetime.
    pub const CONNS: &str = "wire/conns";
    /// Messages dispatched / ops completed.
    pub const OPS: &str = "wire/ops";
}

/// Classification of an encoded operation: what travelled, stripped of
/// the bytes themselves. Fixed at encode time; consumed when drawing
/// latencies and deriving the completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// One flow-mod frame.
    FlowMod,
    /// Flow-mod frames fenced by one barrier.
    Batch {
        /// Byte length of the fenced flow-mod frames (barrier excluded);
        /// checked when the barrier reply is paired.
        size: usize,
    },
    /// One `packet_out` probe frame.
    Probe,
    /// One `echo_request` frame.
    Echo {
        /// Echo payload length in bytes (sizes the return leg).
        payload: usize,
    },
}

impl OpKind {
    /// How many wire frames an encoding of `op` produces.
    #[must_use]
    pub fn frames_of(op: &ControlOp) -> usize {
        match op {
            ControlOp::Batch(fms) => fms.len() + 1,
            _ => 1,
        }
    }
}

/// Per-switch controller-side encoder: assigns xids in stream order and
/// tracks outstanding barriers. One instance per attached switch; its
/// state is part of the channel's identity (clone it, and the clone
/// continues the same xid stream).
#[derive(Debug, Clone)]
pub struct ChanCodec {
    next_xid: Xid,
    barriers: BarrierTracker<usize>,
}

impl Default for ChanCodec {
    fn default() -> ChanCodec {
        ChanCodec::new()
    }
}

impl ChanCodec {
    /// A fresh channel codec; xids start at 1 (0 is reserved for
    /// unsolicited switch notifications).
    #[must_use]
    pub fn new() -> ChanCodec {
        ChanCodec {
            next_xid: Xid(1),
            barriers: BarrierTracker::new(),
        }
    }

    fn take_xid(&mut self) -> Xid {
        let xid = self.next_xid;
        self.next_xid = xid.next();
        xid
    }

    /// Encodes `op` as wire frames appended to `bytes` (whose existing
    /// contents are kept — clear it first for a fresh op), assigning
    /// xids from this channel's stream. Batch ops register their barrier
    /// so [`op_completion`] can pair the reply.
    pub fn encode_op(&mut self, op: ControlOp, bytes: &mut Vec<u8>) -> OpKind {
        match op {
            ControlOp::FlowMod(fm) => {
                let xid = self.take_xid();
                Message::FlowMod(fm).encode_frame_into(xid, bytes);
                OpKind::FlowMod
            }
            ControlOp::Batch(fms) => {
                let start = bytes.len();
                // All frames build into one reused buffer: no
                // per-message intermediate allocation on the batch path.
                for fm in fms {
                    let xid = self.take_xid();
                    Message::FlowMod(fm).encode_frame_into(xid, bytes);
                }
                let barrier_xid = self.take_xid();
                let size = bytes.len() - start;
                self.barriers.register(barrier_xid, size);
                Message::BarrierRequest.encode_frame_into(barrier_xid, bytes);
                OpKind::Batch { size }
            }
            ControlOp::Probe(key) => {
                let xid = self.take_xid();
                let frame = RawFrame::build(&key, 46);
                let po = PacketOut::send(frame, PortNo(1));
                Message::PacketOut(po).encode_frame_into(xid, bytes);
                OpKind::Probe
            }
            ControlOp::Echo(payload) => {
                let xid = self.take_xid();
                Message::EchoRequest(vec![0xec; payload]).encode_frame_into(xid, bytes);
                OpKind::Echo { payload }
            }
        }
    }

    /// The barrier registry (switch-side pairing when both ends share
    /// one codec, as the in-memory testbed does).
    pub fn barriers_mut(&mut self) -> &mut BarrierTracker<usize> {
        &mut self.barriers
    }
}

/// Draws the (up, down) link latencies for one encoded op, replaying
/// the exact fork-label discipline of the in-memory testbed: each op
/// kind forks fixed labels off the switch's latency stream, so the
/// draws depend only on the switch's own operation history — the
/// property that makes concurrent multi-switch runs reproduce
/// sequential ones, and lets a remote transport replay them.
///
/// `wire_len` is the full encoded length of the op (every frame,
/// barrier included).
pub fn draw_latencies(
    link: &Link,
    rng: &mut DetRng,
    dpid: Dpid,
    kind: OpKind,
    wire_len: usize,
) -> (SimDuration, SimDuration) {
    match kind {
        OpKind::FlowMod => {
            let mut up_rng = rng.fork(dpid.0 ^ 0xa11ce);
            let up = link.delivery_latency(wire_len, &mut up_rng);
            let mut down_rng = rng.fork(dpid.0 ^ 0xd0_17);
            let down = link.delivery_latency(16, &mut down_rng);
            (up, down)
        }
        OpKind::Batch { .. } => {
            let mut link_rng = rng.fork(dpid.0 ^ 0xba7c4);
            let up = link.delivery_latency(wire_len, &mut link_rng);
            let down = link.delivery_latency(16, &mut link_rng);
            (up, down)
        }
        OpKind::Probe => {
            let mut up_rng = rng.fork(dpid.0 ^ 0xa11ce);
            let up = link.delivery_latency(wire_len, &mut up_rng);
            (up, SimDuration::ZERO)
        }
        OpKind::Echo { payload } => {
            let mut up_rng = rng.fork(dpid.0 ^ 0xa11ce);
            let up = link.delivery_latency(wire_len, &mut up_rng);
            let mut down_rng = rng.fork(dpid.0 ^ 0xec0);
            let down = link.delivery_latency(payload + 8, &mut down_rng);
            (up, down)
        }
    }
}

/// Folds the agent outputs of one op into its control-CPU processing
/// duration and typed outcome. `barriers` pairs batch fences with their
/// registration (a mismatch means the fence got reordered — a framing
/// bug, so it panics).
pub fn op_completion(
    kind: OpKind,
    outs: &[AgentOutput],
    barriers: &mut BarrierTracker<usize>,
) -> (SimDuration, OpOutcome) {
    match kind {
        OpKind::FlowMod => {
            let cost = total_cost(outs);
            let result = if any_error(outs) {
                OpResult::TableFull
            } else {
                OpResult::Ok
            };
            (cost, OpOutcome::FlowMod(result))
        }
        OpKind::Batch { size } => {
            let mut ok = 0;
            let mut failed = 0;
            let cost = total_cost(outs);
            for o in outs {
                match &o.reply {
                    Some(Message::Error(_)) => failed += 1,
                    Some(Message::BarrierReply) => {
                        let fenced = barriers.complete(o.xid);
                        assert_eq!(fenced, Some(size), "barrier xid mismatch");
                    }
                    None => ok += 1,
                    _ => {}
                }
            }
            (cost, OpOutcome::Batch { ok, failed })
        }
        OpKind::Probe => {
            let (hit, fwd) = outs
                .iter()
                .find_map(|o| o.forwarded)
                .expect("packet_out produces a forwarding outcome");
            (fwd, OpOutcome::Probe(hit))
        }
        OpKind::Echo { .. } => {
            debug_assert!(matches!(
                outs.first().and_then(|o| o.reply.as_ref()),
                Some(Message::EchoReply(_))
            ));
            (SimDuration::ZERO, OpOutcome::Echo)
        }
    }
}

/// Sum of control-plane processing costs across one op's outputs.
#[must_use]
pub fn total_cost(outs: &[AgentOutput]) -> SimDuration {
    outs.iter().fold(SimDuration::ZERO, |acc, o| acc + o.cost)
}

fn any_error(outs: &[AgentOutput]) -> bool {
    outs.iter()
        .any(|o| matches!(o.reply, Some(Message::Error(_))))
}

/// Derives a switch's (datapath seed, link-latency RNG) from the master
/// stream, exactly as the testbed does at attach. Attach order matters:
/// each derivation advances `master`, so transports must attach the
/// same dpids in the same order to reproduce a testbed's streams.
pub fn attach_streams(master: &mut DetRng, dpid: Dpid) -> (u64, DetRng) {
    use rand::RngCore;
    let seed = master.fork(dpid.0).next_u64();
    let link_rng = master.fork(dpid.0 ^ 0xc417);
    (seed, link_rng)
}

/// Per-switch virtual-time bookkeeping for replaying the testbed's
/// timing model over a real transport.
///
/// The testbed's event core gives each op on a switch:
///
/// ```text
/// arrive = max(ready_at + up, last_arrival)   // in-order delivery
/// start  = max(arrive, previous op's done)    // one control CPU
/// done   = start + processing cost
/// acked  = done + down
/// ```
///
/// Per-switch timelines are fully independent (the only cross-switch
/// state is the shared clock, which never influences these values), so
/// a transport that processes each connection's ops in FIFO order can
/// recompute them with this little accumulator and land on the exact
/// timestamps the in-memory testbed would have produced.
#[derive(Debug, Clone, Default)]
pub struct VirtualTimeline {
    last_arrival: SimTime,
    prev_done: SimTime,
}

impl VirtualTimeline {
    /// A timeline starting at virtual time zero (a switch attached to a
    /// freshly built testbed).
    #[must_use]
    pub fn new() -> VirtualTimeline {
        VirtualTimeline::default()
    }

    /// Admits the next op in channel order; returns the virtual time
    /// its processing starts.
    pub fn admit(&mut self, ready_at: SimTime, up: SimDuration) -> SimTime {
        let arrive = (ready_at + up).max(self.last_arrival);
        self.last_arrival = arrive;
        arrive.max(self.prev_done)
    }

    /// Completes the op admitted last; returns `(done_at, acked_at)`.
    pub fn complete(
        &mut self,
        start: SimTime,
        cost: SimDuration,
        down: SimDuration,
    ) -> (SimTime, SimTime) {
        let done = start + cost;
        self.prev_done = done;
        (done, done + down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::flow_match::FlowMatch;
    use ofwire::flow_mod::FlowMod;

    #[test]
    fn encode_assigns_sequential_xids() {
        let mut codec = ChanCodec::new();
        let mut bytes = Vec::new();
        let kind = codec.encode_op(
            ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(1), 10)),
            &mut bytes,
        );
        assert_eq!(kind, OpKind::FlowMod);
        let (h, _) = Message::from_bytes(&bytes).unwrap();
        assert_eq!(h.xid, Xid(1));
        bytes.clear();
        let fms = (0..3u32)
            .map(|i| FlowMod::add(FlowMatch::l3_for_id(i), 10))
            .collect();
        let kind = codec.encode_op(ControlOp::Batch(fms), &mut bytes);
        let OpKind::Batch { size } = kind else {
            panic!("batch encodes as batch");
        };
        // The fenced span is everything before the barrier frame.
        let (bh, bm) = Message::from_bytes(&bytes[size..]).unwrap();
        assert_eq!(bm, Message::BarrierRequest);
        assert_eq!(bh.xid, Xid(5), "xids 2..4 went to the flow-mods");
    }

    #[test]
    fn timeline_reproduces_serialization_and_fifo_clamp() {
        let mut tl = VirtualTimeline::new();
        let up = SimDuration::from_millis_f64(1.0);
        let cost = SimDuration::from_millis_f64(5.0);
        let down = SimDuration::from_millis_f64(1.0);
        // Two ops submitted back-to-back at t=0: the second arrives at
        // the same instant but waits for the CPU.
        let s1 = tl.admit(SimTime::ZERO, up);
        let (d1, a1) = tl.complete(s1, cost, down);
        assert_eq!(s1, SimTime::ZERO + up);
        assert_eq!(d1, s1 + cost);
        assert_eq!(a1, d1 + down);
        let s2 = tl.admit(SimTime::ZERO, up);
        assert_eq!(s2, d1, "second op starts when the first finishes");
        let (d2, _) = tl.complete(s2, cost, down);
        // A later op with a faster draw still cannot arrive before an
        // earlier one (in-order delivery clamp).
        let s3 = tl.admit(SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(s3, d2);
    }
}
