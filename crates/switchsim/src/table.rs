//! Flow tables: a priority-ordered wildcard-match table, and the
//! exact-match microflow cache that OVS-style switches maintain in the
//! kernel.

use crate::entry::{EntryId, FlowEntry};
use crate::tcam::PriorityIndex;
use ofwire::action::Action;
use ofwire::flow_match::{FlowKey, FlowMatch};
use ofwire::types::PortNo;
use simnet::time::SimTime;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Word-at-a-time multiply-rotate hash (FxHash-style). The strict
/// index hashes a `(FlowMatch, u16)` on every insert/remove/find — a
/// small fixed-size key from simulation state, so SipHash's flooding
/// resistance buys nothing and costs the hot path several fold. The
/// derived `Hash` impls emit one `write_uN` call per field, so the
/// integer specializations below (one mix each, no byte loop) are what
/// the flow-mod path actually hits.
#[derive(Default)]
pub struct FnvHasher(u64);

impl FnvHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        // Firefox's FxHash constant: pi's fraction bits, odd.
        const K: u64 = 0x517c_c1b7_2722_0a95;
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Zero-pad the tail; length is mixed so "ab" != "ab\0\0".
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(tail));
            self.mix(bytes.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    fn finish(&self) -> u64 {
        // Buckets take the hash's low bits; the fields that vary
        // (flow ids) were mixed with a rotate that keeps their entropy
        // high, so fold the high half down.
        self.0 ^ (self.0 >> 32)
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// A slot bucket for the side indexes: up to two slots inline, spilling
/// to the heap beyond that. Ids are unique and strict/cover collisions
/// are contractually rare, so virtually every bucket is a singleton —
/// the inline form makes the insert/remove rotate allocation-free.
/// Derefs to `&[u32]` for all read access.
#[derive(Clone, Debug)]
enum Bucket {
    Inline(u8, [u32; 2]),
    Spill(Vec<u32>),
}

impl Default for Bucket {
    fn default() -> Bucket {
        Bucket::Inline(0, [0; 2])
    }
}

impl std::ops::Deref for Bucket {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            Bucket::Inline(n, a) => &a[..*n as usize],
            Bucket::Spill(v) => v,
        }
    }
}

impl<'a> IntoIterator for &'a Bucket {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Bucket {
    fn push(&mut self, slot: u32) {
        match self {
            Bucket::Inline(2, a) => *self = Bucket::Spill(vec![a[0], a[1], slot]),
            Bucket::Inline(n, a) => {
                a[*n as usize] = slot;
                *n += 1;
            }
            Bucket::Spill(v) => v.push(slot),
        }
    }

    /// Removes the element at `index`, preserving order. A spilled
    /// bucket never shrinks back to inline (it is already off the hot
    /// path).
    fn remove(&mut self, index: usize) -> u32 {
        match self {
            Bucket::Inline(n, a) => {
                debug_assert!(index < *n as usize);
                let out = a[index];
                if index == 0 {
                    a[0] = a[1];
                }
                *n -= 1;
                out
            }
            Bucket::Spill(v) => v.remove(index),
        }
    }
}

/// A wildcard-match flow table.
///
/// Lookup returns the highest-priority covering entry; among equal
/// priorities the earliest-installed entry wins (deterministic, and the
/// common hardware behaviour).
///
/// # Storage layout
///
/// Entries live in a **slot-stable slab**: once installed, an entry never
/// moves until it is removed, so every side index can record the entry's
/// slot id and stay valid across arbitrary churn elsewhere in the table.
/// The public API still speaks *positions* (insertion order among current
/// residents — what `remove_at`, `get`, and the policy oracles index by);
/// a dense `order` deque maps position → slot and a reverse `pos` array
/// maps slot → a bias-adjusted position (see the field docs), so a
/// structural change only touches those integer arrays — O(min) from
/// either end — instead of repairing every bucket of every index (the
/// old layout's `index_shift_down` walked all of them per removal, which
/// put an O(n·buckets) tax on each cache promotion/demotion).
///
/// The per-event hot fields are split out of `FlowEntry` into parallel
/// **SoA arrays** indexed by slot — `prio`, `id`, `seq` (install order),
/// and the timeout-participation flag — so the packet-lookup and expiry
/// paths touch a few packed words per candidate instead of dragging whole
/// `FlowEntry` cache lines through the comparisons. These fields are
/// immutable for the lifetime of a slot (see the invariant below), so the
/// copies can never go stale.
///
/// Side indexes keep the control-path hot spots off the linear scan:
/// a strict-match map `(match, priority) → slots` makes
/// [`FlowTable::find_strict`] O(1); a tuple-space cover index (wildcard
/// shape → canonical match → slots) lets [`FlowTable::lookup`]
/// hash-probe one projected key per resident match shape instead of
/// running `covers` per entry; an id map makes [`FlowTable::position_of`]
/// O(1); and a Fenwick tree over the priority space answers
/// [`FlowTable::count_above`] (the TCAM shift cost of an insert) in
/// O(log 65536).
///
/// Invariant: `flow_match`, `priority`, and the timeout fields of an
/// installed entry are immutable. [`FlowTable::get_mut`] exists for
/// attribute updates (counters, timestamps, actions) only — mutating a
/// key field through it desynchronizes the indexes and the SoA arrays.
/// OpenFlow has no "change the match in place" operation, so no caller
/// needs to.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    /// Slot-stable entry storage; `None` marks a free slot.
    slots: Vec<Option<FlowEntry>>,
    /// Free slot ids available for reuse.
    free: Vec<u32>,
    /// Position → slot, in installation order among residents. A deque
    /// so the FIFO churn pattern (delete the oldest entry — what strict
    /// deletes against a rotating id space do) pops the front in O(1).
    order: VecDeque<u32>,
    /// Slot → `base`-biased position (undefined for free slots). The
    /// current dense position is `pos[slot] - base`; removals near the
    /// front adjust `base` instead of rewriting every resident's entry,
    /// so a removal at index i costs O(min(i, n-i)) updates.
    pos: Vec<u64>,
    /// Bias subtracted from `pos` values to obtain dense positions.
    base: u64,
    /// Slot → per-table install sequence (monotonic; orders buckets).
    seq: Vec<u64>,
    /// Slot → entry priority (SoA hot field for lookup comparisons).
    prio: Vec<u16>,
    /// Slot → entry id (SoA hot field for lookup tie-breaks).
    id: Vec<u64>,
    /// Slot → whether the entry participates in expiry.
    timeout: Vec<bool>,
    next_seq: u64,
    /// `(match, priority)` → slots holding exactly that pair, in
    /// install-seq order (so `first()` is the earliest-installed
    /// resident, matching the old linear `position` semantics).
    strict: FnvMap<(FlowMatch, u16), Bucket>,
    /// entry id → slots, in install-seq order (ids are unique per
    /// switch, so buckets are singletons in practice; the vector form
    /// mirrors `strict` and keeps first-position semantics under
    /// duplicates).
    by_id: FnvMap<EntryId, Bucket>,
    /// Tuple-space cover index: wildcard word (the match *shape*: which
    /// fields are constrained, at which prefix lengths) → canonical
    /// match → slots. A lookup projects the packet key once per
    /// resident shape and hash-probes, instead of running `covers`
    /// against every entry of a priority bucket; real tables hold a
    /// handful of shapes, so a lookup is a handful of hashes.
    cover: FnvMap<u32, FnvMap<FlowMatch, Bucket>>,
    /// Multiset of installed priorities for O(log) shift counting.
    prio_counts: PriorityIndex,
    /// How many installed entries carry a nonzero idle or hard timeout —
    /// lets the per-op expiry sweep skip tables that can never expire.
    timeout_entries: usize,
}

/// Whether an entry participates in expiry at all.
fn has_timeout(e: &FlowEntry) -> bool {
    e.idle_timeout > 0 || e.hard_timeout > 0
}

impl FlowTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no entries are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates entries in installation order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.order
            .iter()
            .map(|&s| self.slots[s as usize].as_ref().expect("resident slot"))
    }

    /// Clones the resident entries in installation order — the
    /// test/debug bridge for oracles written against a contiguous
    /// slice (the slab itself has no contiguous view).
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlowEntry> {
        self.iter().cloned().collect()
    }

    fn strict_key(e: &FlowEntry) -> (FlowMatch, u16) {
        (e.flow_match, e.priority)
    }

    /// Drops `slot` from one bucket (sorted by install seq), deleting
    /// the bucket when emptied. Returns whether the bucket survives.
    fn bucket_drop(bucket: &mut Bucket, slot: u32, seq: &[u64]) -> bool {
        if let Ok(p) = bucket.binary_search_by_key(&seq[slot as usize], |&s| seq[s as usize]) {
            bucket.remove(p);
        }
        !bucket.is_empty()
    }

    /// Allocates a slot for `entry` and records its SoA hot fields.
    fn alloc_slot(&mut self, entry: FlowEntry) -> u32 {
        let prio = entry.priority;
        let id = entry.id.0;
        let to = has_timeout(&entry);
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.free.pop() {
            Some(s) => {
                let i = s as usize;
                self.slots[i] = Some(entry);
                self.seq[i] = seq;
                self.prio[i] = prio;
                self.id[i] = id;
                self.timeout[i] = to;
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Some(entry));
                self.pos.push(0);
                self.seq.push(seq);
                self.prio.push(prio);
                self.id.push(id);
                self.timeout.push(to);
                s
            }
        }
    }

    /// Unhooks `slot` from every index and counter and frees it,
    /// returning the entry. The caller has already dropped the slot
    /// from `order`/`pos`.
    fn detach_slot(&mut self, slot: u32) -> FlowEntry {
        let e = self.slots[slot as usize].take().expect("resident slot");
        let e_key = Self::strict_key(&e);
        if let Some(bucket) = self.strict.get_mut(&e_key) {
            if !Self::bucket_drop(bucket, slot, &self.seq) {
                self.strict.remove(&e_key);
            }
        }
        if let Some(bucket) = self.by_id.get_mut(&e.id) {
            if !Self::bucket_drop(bucket, slot, &self.seq) {
                self.by_id.remove(&e.id);
            }
        }
        let shape = e_key.0.wildcards();
        if let Some(group) = self.cover.get_mut(&shape) {
            let canon = e_key.0.canonical();
            if let Some(bucket) = group.get_mut(&canon) {
                if !Self::bucket_drop(bucket, slot, &self.seq) {
                    group.remove(&canon);
                }
            }
            if group.is_empty() {
                self.cover.remove(&shape);
            }
        }
        self.prio_counts.remove(e_key.1);
        if self.timeout[slot as usize] {
            self.timeout_entries -= 1;
        }
        self.free.push(slot);
        e
    }

    /// Installs an entry.
    pub fn insert(&mut self, entry: FlowEntry) {
        let key = Self::strict_key(&entry);
        let id = entry.id;
        if has_timeout(&entry) {
            self.timeout_entries += 1;
        }
        let slot = self.alloc_slot(entry);
        self.pos[slot as usize] = self.base + self.order.len() as u64;
        self.order.push_back(slot);
        // Fresh slots carry the table's maximum seq, so appending keeps
        // every bucket sorted by install order.
        self.strict.entry(key).or_default().push(slot);
        self.by_id.entry(id).or_default().push(slot);
        self.cover
            .entry(key.0.wildcards())
            .or_default()
            .entry(key.0.canonical())
            .or_default()
            .push(slot);
        self.prio_counts.add(key.1);
    }

    /// Removes and returns the entry at `index`.
    pub fn remove_at(&mut self, index: usize) -> FlowEntry {
        let slot = self.order.remove(index).expect("index in range");
        // Only integer positions move; every slot-keyed bucket stays
        // untouched. Fix up whichever side of the removal point is
        // shorter: either the tail's positions all drop by one, or —
        // equivalently — the bias rises by one and the head's positions
        // rise to compensate. FIFO churn (index 0) is O(1).
        if index <= self.order.len() / 2 {
            self.base += 1;
            for &s in self.order.range(..index) {
                self.pos[s as usize] += 1;
            }
        } else {
            for &s in self.order.range(index..) {
                self.pos[s as usize] -= 1;
            }
        }
        self.detach_slot(slot)
    }

    /// Index of the matching entry for `key`: maximal priority, then
    /// earliest entry id.
    ///
    /// Tuple-space search: projects the key once per resident match
    /// shape (wildcard word) and hash-probes that shape's canonical-match
    /// map, so cost scales with the number of *distinct shapes* rather
    /// than the number of entries sharing a priority. Candidate
    /// comparisons read the SoA `prio`/`id` arrays, never the entries.
    /// Cover-bucket collisions (identical canonical match at different
    /// priorities or ids) are resolved by the same (priority, id) order
    /// the old bucket scan applied.
    #[must_use]
    pub fn lookup(&self, key: &FlowKey) -> Option<usize> {
        let mut best: Option<u32> = None;
        for (&shape, group) in &self.cover {
            let probe = FlowMatch::project(key, shape);
            let Some(bucket) = group.get(&probe) else {
                continue;
            };
            for &s in bucket {
                debug_assert!(
                    self.slots[s as usize]
                        .as_ref()
                        .expect("resident slot")
                        .flow_match
                        .covers(key),
                    "stale cover index slot {s}"
                );
                match best {
                    None => best = Some(s),
                    Some(b) => {
                        let (sp, bp) = (self.prio[s as usize], self.prio[b as usize]);
                        if sp > bp || (sp == bp && self.id[s as usize] < self.id[b as usize]) {
                            best = Some(s);
                        }
                    }
                }
            }
        }
        best.map(|s| (self.pos[s as usize] - self.base) as usize)
    }

    /// Mutable access by index. Key fields (`flow_match`, `priority`,
    /// timeouts) must not be changed through this — see the type-level
    /// invariant.
    pub fn get_mut(&mut self, index: usize) -> &mut FlowEntry {
        self.slots[self.order[index] as usize]
            .as_mut()
            .expect("resident slot")
    }

    /// Read access by index.
    #[must_use]
    pub fn get(&self, index: usize) -> &FlowEntry {
        self.slots[self.order[index] as usize]
            .as_ref()
            .expect("resident slot")
    }

    /// Finds the entry that *strictly* equals the given match and
    /// priority (OpenFlow strict semantics). O(1) via the strict index.
    #[must_use]
    pub fn find_strict(&self, flow_match: &FlowMatch, priority: u16) -> Option<usize> {
        self.strict
            .get(&(*flow_match, priority))
            .and_then(|bucket| bucket.first())
            .map(|&s| (self.pos[s as usize] - self.base) as usize)
    }

    /// Indices of entries selected by a non-strict filter: entries whose
    /// match is subsumed by `filter`, optionally restricted to entries
    /// with an output action to `out_port`.
    #[must_use]
    pub fn select_loose(&self, filter: &FlowMatch, out_port: PortNo) -> Vec<usize> {
        self.order
            .iter()
            .enumerate()
            .map(|(i, &s)| (i, self.slots[s as usize].as_ref().expect("resident slot")))
            .filter(|(_, e)| filter.subsumes(&e.flow_match))
            .filter(|(_, e)| {
                out_port == PortNo::NONE
                    || e.actions
                        .iter()
                        .any(|a| matches!(a, Action::Output { port, .. } if *port == out_port))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Removes a set of indices (any order), returning the removed
    /// entries in descending index order.
    ///
    /// One compaction pass over the order vector (the slot-keyed
    /// buckets never need a global remap): O(n + k·bucket).
    pub fn remove_indices(&mut self, mut indices: Vec<usize>) -> Vec<FlowEntry> {
        indices.sort_unstable_by(|a, b| b.cmp(a));
        indices.dedup();
        if indices.is_empty() {
            return Vec::new();
        }
        // Single-index removals (the strict-delete hot path: OVS rotate
        // workloads are ~50% deletes) skip the mask allocation and the
        // full order rebuild; only the tail after `index` shifts.
        if indices.len() == 1 {
            return vec![self.remove_at(indices[0])];
        }
        let mut mask = vec![false; self.order.len()];
        for &i in &indices {
            mask[i] = true;
        }
        let old_order = std::mem::take(&mut self.order);
        self.order.reserve(old_order.len() - indices.len());
        self.base = 0;
        let mut removed_slots = Vec::with_capacity(indices.len());
        for (i, s) in old_order.into_iter().enumerate() {
            if mask[i] {
                removed_slots.push(s);
            } else {
                self.pos[s as usize] = self.order.len() as u64;
                self.order.push_back(s);
            }
        }
        // `indices` is descending; `removed_slots` collected ascending.
        removed_slots
            .into_iter()
            .rev()
            .map(|s| self.detach_slot(s))
            .collect()
    }

    /// Removes every entry, returning them in installation order.
    pub fn drain_all(&mut self) -> Vec<FlowEntry> {
        self.strict.clear();
        self.by_id.clear();
        self.cover.clear();
        self.prio_counts.clear();
        self.timeout_entries = 0;
        self.free.clear();
        let slots = &mut self.slots;
        let out: Vec<FlowEntry> = self
            .order
            .drain(..)
            .map(|s| slots[s as usize].take().expect("resident slot"))
            .collect();
        self.slots.clear();
        self.pos.clear();
        self.base = 0;
        self.seq.clear();
        self.prio.clear();
        self.id.clear();
        self.timeout.clear();
        out
    }

    /// Finds an entry by id. O(1) via the id index; under (contractually
    /// absent) duplicate ids, returns the earliest position like the old
    /// linear scan.
    #[must_use]
    pub fn position_of(&self, id: EntryId) -> Option<usize> {
        self.by_id
            .get(&id)
            .and_then(|bucket| bucket.first())
            .map(|&s| (self.pos[s as usize] - self.base) as usize)
    }

    /// How many installed entries have priority strictly above
    /// `priority` — the TCAM shift cost of inserting at that priority.
    /// O(log 65536) via the Fenwick index; [`crate::tcam::shift_count`]
    /// is the linear oracle.
    #[must_use]
    pub fn count_above(&self, priority: u16) -> usize {
        self.prio_counts.count_above(priority)
    }

    /// How many installed entries carry a nonzero idle or hard timeout.
    /// Zero means no expiry sweep can ever remove anything here, so
    /// per-op sweeps skip the table entirely.
    #[must_use]
    pub fn timeout_count(&self) -> usize {
        self.timeout_entries
    }

    /// Reference oracle: the pre-index linear scan `lookup`. Kept under
    /// `cfg(test)` so property tests can assert the indexed path agrees.
    #[cfg(test)]
    #[must_use]
    pub fn lookup_linear(&self, key: &FlowKey) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.iter().enumerate() {
            if !e.flow_match.covers(key) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let cur = self.get(b);
                    if e.priority > cur.priority || (e.priority == cur.priority && e.id < cur.id) {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Reference oracle: the pre-index linear scan `find_strict`.
    #[cfg(test)]
    #[must_use]
    pub fn find_strict_linear(&self, flow_match: &FlowMatch, priority: u16) -> Option<usize> {
        (0..self.len()).find(|&i| {
            let e = self.get(i);
            e.priority == priority && e.flow_match == *flow_match
        })
    }

    /// Reference oracle: the pre-index linear scan `position_of`.
    #[cfg(test)]
    #[must_use]
    pub fn position_of_linear(&self, id: EntryId) -> Option<usize> {
        (0..self.len()).find(|&i| self.get(i).id == id)
    }

    /// Test hook: verifies the indexes and SoA arrays describe exactly
    /// the resident entries.
    #[cfg(test)]
    pub fn assert_index_consistent(&self) {
        // order/pos are mutual inverses over residents.
        for (p, &s) in self.order.iter().enumerate() {
            assert!(self.slots[s as usize].is_some(), "free slot {s} in order");
            assert_eq!(
                (self.pos[s as usize] - self.base) as usize,
                p,
                "pos/order disagree at {p}"
            );
        }
        // SoA copies match the entries; seq is strictly increasing in
        // position order.
        let mut last_seq = None;
        for &s in &self.order {
            let e = self.slots[s as usize].as_ref().unwrap();
            assert_eq!(self.prio[s as usize], e.priority, "stale SoA prio {s}");
            assert_eq!(self.id[s as usize], e.id.0, "stale SoA id {s}");
            assert_eq!(
                self.timeout[s as usize],
                has_timeout(e),
                "stale SoA timeout {s}"
            );
            assert!(last_seq < Some(self.seq[s as usize]), "seq not increasing");
            last_seq = Some(self.seq[s as usize]);
        }
        let mut strict_count = 0;
        for (key, bucket) in &self.strict {
            assert!(!bucket.is_empty(), "empty strict bucket for {key:?}");
            assert!(
                bucket
                    .windows(2)
                    .all(|w| self.seq[w[0] as usize] < self.seq[w[1] as usize]),
                "strict bucket not in install order: {bucket:?}"
            );
            for &s in bucket {
                let e = self.slots[s as usize].as_ref().expect("free slot indexed");
                assert_eq!((e.flow_match, e.priority), *key, "stale strict index {s}");
            }
            strict_count += bucket.len();
        }
        assert_eq!(strict_count, self.len());
        let mut id_count = 0;
        for (&id, bucket) in &self.by_id {
            assert!(!bucket.is_empty(), "empty id bucket for {id:?}");
            assert!(
                bucket
                    .windows(2)
                    .all(|w| self.seq[w[0] as usize] < self.seq[w[1] as usize]),
                "id bucket not in install order: {bucket:?}"
            );
            for &s in bucket {
                let e = self.slots[s as usize].as_ref().expect("free slot indexed");
                assert_eq!(e.id, id, "stale id index {s}");
            }
            id_count += bucket.len();
        }
        assert_eq!(id_count, self.len());
        let mut cover_count = 0;
        for (&shape, group) in &self.cover {
            assert!(!group.is_empty(), "empty cover group for {shape:#x}");
            for (canon, bucket) in group {
                assert!(!bucket.is_empty(), "empty cover bucket for {canon:?}");
                for &s in bucket {
                    let m = self.slots[s as usize]
                        .as_ref()
                        .expect("free slot indexed")
                        .flow_match;
                    assert_eq!(m.wildcards(), shape, "stale cover shape {s}");
                    assert_eq!(m.canonical(), *canon, "stale cover key {s}");
                }
                cover_count += bucket.len();
            }
        }
        assert_eq!(cover_count, self.len());
        // Fenwick priority counts and the timeout counter must match a
        // recompute from scratch.
        assert_eq!(self.prio_counts.len(), self.len());
        for probe in self.iter().map(|e| e.priority).take(64) {
            for p in [probe.saturating_sub(1), probe, probe.saturating_add(1)] {
                assert_eq!(
                    self.count_above(p),
                    crate::tcam::shift_count(self.iter().map(|e| &e.priority), p),
                    "fenwick disagrees at priority {p}"
                );
            }
        }
        assert_eq!(
            self.timeout_entries,
            self.iter().filter(|e| has_timeout(e)).count()
        );
    }
}

/// An exact-match microflow entry in the kernel cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroflowEntry {
    /// The userspace entry this microflow was cloned from.
    pub parent: EntryId,
    /// When the microflow was installed.
    pub installed_at: SimTime,
    /// When it last matched a packet.
    pub last_used_at: SimTime,
}

/// OVS-style kernel cache: exact [`FlowKey`] → microflow entries, with
/// LRU eviction at a configurable capacity. This implements the paper's
/// "1-to-N mapping (one user space entry could map to multiple kernel
/// space entries)".
#[derive(Debug, Clone)]
pub struct MicroflowCache {
    map: HashMap<FlowKey, MicroflowEntry>,
    capacity: usize,
}

impl MicroflowCache {
    /// A cache holding at most `capacity` microflows.
    #[must_use]
    pub fn new(capacity: usize) -> MicroflowCache {
        MicroflowCache {
            map: HashMap::new(),
            capacity,
        }
    }

    /// Number of cached microflows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up an exact key, refreshing its LRU stamp on hit.
    pub fn lookup_touch(&mut self, key: &FlowKey, now: SimTime) -> Option<EntryId> {
        let e = self.map.get_mut(key)?;
        e.last_used_at = now;
        Some(e.parent)
    }

    /// Installs a microflow for `key`, evicting the least recently used
    /// entry if at capacity.
    pub fn install(&mut self, key: FlowKey, parent: EntryId, now: SimTime) {
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used_at)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            MicroflowEntry {
                parent,
                installed_at: now,
                last_used_at: now,
            },
        );
    }

    /// Drops every microflow cloned from `parent` (used when the parent
    /// rule is deleted or modified, to preserve semantics).
    pub fn invalidate_parent(&mut self, parent: EntryId) {
        self.map.retain(|_, e| e.parent != parent);
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, m: FlowMatch, prio: u16) -> FlowEntry {
        FlowEntry::new(EntryId(id), m, prio, vec![Action::output(1)], SimTime(id))
    }

    #[test]
    fn lookup_prefers_priority_then_age() {
        let mut t = FlowTable::new();
        let key = FlowMatch::key_for_id(7);
        t.insert(entry(1, FlowMatch::l3_for_id(7), 10));
        t.insert(entry(2, FlowMatch::l2_for_id(7), 20));
        t.insert(entry(3, FlowMatch::any(), 20)); // same prio as #2, later id
        let hit = t.lookup(&key).unwrap();
        assert_eq!(t.get(hit).id, EntryId(2));
    }

    #[test]
    fn lookup_miss() {
        let mut t = FlowTable::new();
        t.insert(entry(1, FlowMatch::l3_for_id(5), 10));
        assert!(t.lookup(&FlowMatch::key_for_id(6)).is_none());
    }

    #[test]
    fn strict_find_requires_priority_and_match() {
        let mut t = FlowTable::new();
        let m = FlowMatch::l3_for_id(1);
        t.insert(entry(1, m, 10));
        assert!(t.find_strict(&m, 10).is_some());
        assert!(t.find_strict(&m, 11).is_none());
        assert!(t.find_strict(&FlowMatch::l3_for_id(2), 10).is_none());
    }

    #[test]
    fn loose_selection_uses_subsumption_and_out_port() {
        let mut t = FlowTable::new();
        t.insert(entry(1, FlowMatch::l3_for_id(1), 10)); // output:1
        let mut e2 = entry(2, FlowMatch::l3_for_id(2), 10);
        e2.actions = vec![Action::output(9)];
        t.insert(e2);
        // The wildcard filter subsumes both.
        let all = t.select_loose(&FlowMatch::any(), PortNo::NONE);
        assert_eq!(all.len(), 2);
        // Out-port restriction narrows to the entry forwarding to 9.
        let only9 = t.select_loose(&FlowMatch::any(), PortNo(9));
        assert_eq!(only9.len(), 1);
        assert_eq!(t.get(only9[0]).id, EntryId(2));
        // A specific filter selects only what it subsumes.
        let one = t.select_loose(&FlowMatch::l3_for_id(1), PortNo::NONE);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn remove_indices_handles_unsorted_dupes() {
        let mut t = FlowTable::new();
        for i in 0..5 {
            t.insert(entry(i, FlowMatch::l3_for_id(i as u32), 1));
        }
        let removed = t.remove_indices(vec![3, 1, 3]);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 3);
        let left: Vec<u64> = t.iter().map(|e| e.id.0).collect();
        assert_eq!(left, vec![0, 2, 4]);
    }

    #[test]
    fn indexed_lookup_agrees_with_linear_oracle() {
        let mut t = FlowTable::new();
        // Mixed priorities, overlapping covers, churn via remove_at.
        for i in 0..32u64 {
            let m = match i % 4 {
                0 => FlowMatch::any(),
                1 => FlowMatch::l2_for_id((i / 4) as u32),
                2 => FlowMatch::l3_for_id((i / 4) as u32),
                _ => FlowMatch::l3_for_id((i / 2) as u32),
            };
            t.insert(entry(i, m, (i % 5) as u16 * 10));
        }
        t.remove_at(7);
        t.remove_at(0);
        t.remove_indices(vec![4, 12, 4, 20]);
        t.assert_index_consistent();
        for id in 0..20u32 {
            let key = FlowMatch::key_for_id(id);
            assert_eq!(t.lookup(&key), t.lookup_linear(&key), "key {id}");
        }
        for id in 0..20u32 {
            for prio in [0u16, 10, 20, 30, 40] {
                let m = FlowMatch::l3_for_id(id);
                assert_eq!(
                    t.find_strict(&m, prio),
                    t.find_strict_linear(&m, prio),
                    "strict {id}/{prio}"
                );
            }
        }
    }

    #[test]
    fn index_survives_duplicate_strict_keys() {
        let mut t = FlowTable::new();
        let m = FlowMatch::l3_for_id(9);
        t.insert(entry(1, m, 10));
        t.insert(entry(2, m, 10)); // duplicate (match, priority)
        t.assert_index_consistent();
        // Strict find returns the earliest position, like the old scan.
        assert_eq!(t.find_strict(&m, 10), Some(0));
        t.remove_at(0);
        t.assert_index_consistent();
        assert_eq!(t.find_strict(&m, 10), Some(0));
        assert_eq!(t.get(0).id, EntryId(2));
    }

    #[test]
    fn drain_all_resets_indexes() {
        let mut t = FlowTable::new();
        for i in 0..4 {
            t.insert(entry(i, FlowMatch::l3_for_id(i as u32), 5));
        }
        let drained = t.drain_all();
        assert_eq!(drained.len(), 4);
        assert!(t.is_empty());
        t.assert_index_consistent();
        assert!(t.find_strict(&FlowMatch::l3_for_id(1), 5).is_none());
        t.insert(entry(9, FlowMatch::l3_for_id(1), 5));
        assert_eq!(t.find_strict(&FlowMatch::l3_for_id(1), 5), Some(0));
    }

    #[test]
    fn slots_are_stable_across_removals() {
        // Removing one entry must not invalidate index answers for the
        // survivors (the property the slab layout exists for).
        let mut t = FlowTable::new();
        for i in 0..8 {
            t.insert(entry(i, FlowMatch::l3_for_id(i as u32), 10 + i as u16));
        }
        t.remove_at(0);
        t.remove_at(3);
        t.assert_index_consistent();
        for i in [1u64, 2, 3, 5, 6, 7] {
            let p = t.position_of(EntryId(i)).expect("survivor indexed");
            assert_eq!(t.get(p).id, EntryId(i));
        }
        // Freed slots get reused without confusing the indexes.
        t.insert(entry(100, FlowMatch::l3_for_id(100), 7));
        t.assert_index_consistent();
        assert_eq!(t.position_of(EntryId(100)), Some(t.len() - 1));
    }

    #[test]
    fn microflow_lru_eviction() {
        let mut c = MicroflowCache::new(2);
        let k1 = FlowMatch::key_for_id(1);
        let k2 = FlowMatch::key_for_id(2);
        let k3 = FlowMatch::key_for_id(3);
        c.install(k1, EntryId(1), SimTime(10));
        c.install(k2, EntryId(1), SimTime(20));
        // Touch k1 so k2 becomes LRU.
        assert_eq!(c.lookup_touch(&k1, SimTime(30)), Some(EntryId(1)));
        c.install(k3, EntryId(2), SimTime(40));
        assert_eq!(c.len(), 2);
        assert!(c.lookup_touch(&k2, SimTime(50)).is_none());
        assert!(c.lookup_touch(&k1, SimTime(50)).is_some());
        assert!(c.lookup_touch(&k3, SimTime(50)).is_some());
    }

    #[test]
    fn microflow_parent_invalidation() {
        let mut c = MicroflowCache::new(10);
        c.install(FlowMatch::key_for_id(1), EntryId(1), SimTime(0));
        c.install(FlowMatch::key_for_id(2), EntryId(1), SimTime(0));
        c.install(FlowMatch::key_for_id(3), EntryId(2), SimTime(0));
        c.invalidate_parent(EntryId(1));
        assert_eq!(c.len(), 1);
        assert!(c
            .lookup_touch(&FlowMatch::key_for_id(3), SimTime(1))
            .is_some());
    }
}
