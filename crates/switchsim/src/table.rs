//! Flow tables: a priority-ordered wildcard-match table, and the
//! exact-match microflow cache that OVS-style switches maintain in the
//! kernel.

use crate::entry::{EntryId, FlowEntry};
use ofwire::action::Action;
use ofwire::flow_match::{FlowKey, FlowMatch};
use ofwire::types::PortNo;
use simnet::time::SimTime;
use std::collections::HashMap;

/// A wildcard-match flow table.
///
/// Lookup returns the highest-priority covering entry; among equal
/// priorities the earliest-installed entry wins (deterministic, and the
/// common hardware behaviour).
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
}

impl FlowTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in installation order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Iterates entries mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut FlowEntry> {
        self.entries.iter_mut()
    }

    /// Read access to the backing slice (for policy scans).
    #[must_use]
    pub fn as_slice(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Installs an entry.
    pub fn insert(&mut self, entry: FlowEntry) {
        self.entries.push(entry);
    }

    /// Removes and returns the entry at `index`.
    pub fn remove_at(&mut self, index: usize) -> FlowEntry {
        self.entries.remove(index)
    }

    /// Index of the matching entry for `key`: maximal priority, then
    /// earliest entry id.
    #[must_use]
    pub fn lookup(&self, key: &FlowKey) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.flow_match.covers(key) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let cur = &self.entries[b];
                    if e.priority > cur.priority || (e.priority == cur.priority && e.id < cur.id) {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Mutable access by index.
    pub fn get_mut(&mut self, index: usize) -> &mut FlowEntry {
        &mut self.entries[index]
    }

    /// Read access by index.
    #[must_use]
    pub fn get(&self, index: usize) -> &FlowEntry {
        &self.entries[index]
    }

    /// Finds the entry that *strictly* equals the given match and
    /// priority (OpenFlow strict semantics).
    #[must_use]
    pub fn find_strict(&self, flow_match: &FlowMatch, priority: u16) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.priority == priority && e.flow_match == *flow_match)
    }

    /// Indices of entries selected by a non-strict filter: entries whose
    /// match is subsumed by `filter`, optionally restricted to entries
    /// with an output action to `out_port`.
    #[must_use]
    pub fn select_loose(&self, filter: &FlowMatch, out_port: PortNo) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| filter.subsumes(&e.flow_match))
            .filter(|(_, e)| {
                out_port == PortNo::NONE
                    || e.actions
                        .iter()
                        .any(|a| matches!(a, Action::Output { port, .. } if *port == out_port))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Removes a set of indices (any order), returning the removed
    /// entries in descending index order.
    pub fn remove_indices(&mut self, mut indices: Vec<usize>) -> Vec<FlowEntry> {
        indices.sort_unstable_by(|a, b| b.cmp(a));
        indices.dedup();
        indices
            .into_iter()
            .map(|i| self.entries.remove(i))
            .collect()
    }

    /// Removes every entry, returning them.
    pub fn drain_all(&mut self) -> Vec<FlowEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Finds an entry by id.
    #[must_use]
    pub fn position_of(&self, id: EntryId) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }
}

/// An exact-match microflow entry in the kernel cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroflowEntry {
    /// The userspace entry this microflow was cloned from.
    pub parent: EntryId,
    /// When the microflow was installed.
    pub installed_at: SimTime,
    /// When it last matched a packet.
    pub last_used_at: SimTime,
}

/// OVS-style kernel cache: exact [`FlowKey`] → microflow entries, with
/// LRU eviction at a configurable capacity. This implements the paper's
/// "1-to-N mapping (one user space entry could map to multiple kernel
/// space entries)".
#[derive(Debug, Clone)]
pub struct MicroflowCache {
    map: HashMap<FlowKey, MicroflowEntry>,
    capacity: usize,
}

impl MicroflowCache {
    /// A cache holding at most `capacity` microflows.
    #[must_use]
    pub fn new(capacity: usize) -> MicroflowCache {
        MicroflowCache {
            map: HashMap::new(),
            capacity,
        }
    }

    /// Number of cached microflows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up an exact key, refreshing its LRU stamp on hit.
    pub fn lookup_touch(&mut self, key: &FlowKey, now: SimTime) -> Option<EntryId> {
        let e = self.map.get_mut(key)?;
        e.last_used_at = now;
        Some(e.parent)
    }

    /// Installs a microflow for `key`, evicting the least recently used
    /// entry if at capacity.
    pub fn install(&mut self, key: FlowKey, parent: EntryId, now: SimTime) {
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used_at)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            MicroflowEntry {
                parent,
                installed_at: now,
                last_used_at: now,
            },
        );
    }

    /// Drops every microflow cloned from `parent` (used when the parent
    /// rule is deleted or modified, to preserve semantics).
    pub fn invalidate_parent(&mut self, parent: EntryId) {
        self.map.retain(|_, e| e.parent != parent);
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, m: FlowMatch, prio: u16) -> FlowEntry {
        FlowEntry::new(EntryId(id), m, prio, vec![Action::output(1)], SimTime(id))
    }

    #[test]
    fn lookup_prefers_priority_then_age() {
        let mut t = FlowTable::new();
        let key = FlowMatch::key_for_id(7);
        t.insert(entry(1, FlowMatch::l3_for_id(7), 10));
        t.insert(entry(2, FlowMatch::l2_for_id(7), 20));
        t.insert(entry(3, FlowMatch::any(), 20)); // same prio as #2, later id
        let hit = t.lookup(&key).unwrap();
        assert_eq!(t.get(hit).id, EntryId(2));
    }

    #[test]
    fn lookup_miss() {
        let mut t = FlowTable::new();
        t.insert(entry(1, FlowMatch::l3_for_id(5), 10));
        assert!(t.lookup(&FlowMatch::key_for_id(6)).is_none());
    }

    #[test]
    fn strict_find_requires_priority_and_match() {
        let mut t = FlowTable::new();
        let m = FlowMatch::l3_for_id(1);
        t.insert(entry(1, m, 10));
        assert!(t.find_strict(&m, 10).is_some());
        assert!(t.find_strict(&m, 11).is_none());
        assert!(t.find_strict(&FlowMatch::l3_for_id(2), 10).is_none());
    }

    #[test]
    fn loose_selection_uses_subsumption_and_out_port() {
        let mut t = FlowTable::new();
        t.insert(entry(1, FlowMatch::l3_for_id(1), 10)); // output:1
        let mut e2 = entry(2, FlowMatch::l3_for_id(2), 10);
        e2.actions = vec![Action::output(9)];
        t.insert(e2);
        // The wildcard filter subsumes both.
        let all = t.select_loose(&FlowMatch::any(), PortNo::NONE);
        assert_eq!(all.len(), 2);
        // Out-port restriction narrows to the entry forwarding to 9.
        let only9 = t.select_loose(&FlowMatch::any(), PortNo(9));
        assert_eq!(only9.len(), 1);
        assert_eq!(t.get(only9[0]).id, EntryId(2));
        // A specific filter selects only what it subsumes.
        let one = t.select_loose(&FlowMatch::l3_for_id(1), PortNo::NONE);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn remove_indices_handles_unsorted_dupes() {
        let mut t = FlowTable::new();
        for i in 0..5 {
            t.insert(entry(i, FlowMatch::l3_for_id(i as u32), 1));
        }
        let removed = t.remove_indices(vec![3, 1, 3]);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 3);
        let left: Vec<u64> = t.iter().map(|e| e.id.0).collect();
        assert_eq!(left, vec![0, 2, 4]);
    }

    #[test]
    fn microflow_lru_eviction() {
        let mut c = MicroflowCache::new(2);
        let k1 = FlowMatch::key_for_id(1);
        let k2 = FlowMatch::key_for_id(2);
        let k3 = FlowMatch::key_for_id(3);
        c.install(k1, EntryId(1), SimTime(10));
        c.install(k2, EntryId(1), SimTime(20));
        // Touch k1 so k2 becomes LRU.
        assert_eq!(c.lookup_touch(&k1, SimTime(30)), Some(EntryId(1)));
        c.install(k3, EntryId(2), SimTime(40));
        assert_eq!(c.len(), 2);
        assert!(c.lookup_touch(&k2, SimTime(50)).is_none());
        assert!(c.lookup_touch(&k1, SimTime(50)).is_some());
        assert!(c.lookup_touch(&k3, SimTime(50)).is_some());
    }

    #[test]
    fn microflow_parent_invalidation() {
        let mut c = MicroflowCache::new(10);
        c.install(FlowMatch::key_for_id(1), EntryId(1), SimTime(0));
        c.install(FlowMatch::key_for_id(2), EntryId(1), SimTime(0));
        c.install(FlowMatch::key_for_id(3), EntryId(2), SimTime(0));
        c.invalidate_parent(EntryId(1));
        assert_eq!(c.len(), 1);
        assert!(c
            .lookup_touch(&FlowMatch::key_for_id(3), SimTime(1))
            .is_some());
    }
}
