//! Flow tables: a priority-ordered wildcard-match table, and the
//! exact-match microflow cache that OVS-style switches maintain in the
//! kernel.

use crate::entry::{EntryId, FlowEntry};
use crate::tcam::PriorityIndex;
use ofwire::action::Action;
use ofwire::flow_match::{FlowKey, FlowMatch};
use ofwire::types::PortNo;
use simnet::time::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a. The strict index hashes a `(FlowMatch, u16)` on every
/// insert/remove/find — a small fixed-size key from simulation state,
/// so SipHash's flooding resistance buys nothing and costs the hot
/// path several fold.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = if self.0 == 0 { OFFSET } else { self.0 };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// A wildcard-match flow table.
///
/// Lookup returns the highest-priority covering entry; among equal
/// priorities the earliest-installed entry wins (deterministic, and the
/// common hardware behaviour).
///
/// Side indexes keep the control-path hot spots off the linear scan:
/// a strict-match map `(match, priority) → indices` makes
/// [`FlowTable::find_strict`] O(1); a tuple-space cover index (wildcard
/// shape → canonical match → indices) lets [`FlowTable::lookup`]
/// hash-probe one projected key per resident match shape instead of
/// running `covers` per entry; an id map makes [`FlowTable::position_of`] O(1);
/// and a Fenwick tree over the priority space answers
/// [`FlowTable::count_above`] (the TCAM shift cost of an insert) in
/// O(log 65536). All positional indexes hold positions into the entry
/// vector and are repaired on every structural change.
///
/// Invariant: `flow_match` and `priority` of an installed entry are
/// immutable. [`FlowTable::get_mut`]/[`FlowTable::iter_mut`] exist for
/// attribute updates (counters, timestamps, actions) only — mutating a
/// key field through them desynchronizes the indexes. OpenFlow has no
/// "change the match in place" operation, so no caller needs to. The
/// timeout fields are likewise fixed at insert: [`FlowTable::timeout_count`]
/// counts them once, so flipping a zero timeout to nonzero in place
/// would make the expiry sweep skip the entry.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    /// `(match, priority)` → entry indices holding exactly that pair,
    /// ascending (so `first()` is the earliest-installed position,
    /// matching the old linear `position` semantics).
    strict: FnvMap<(FlowMatch, u16), Vec<usize>>,
    /// priority → entry indices at that priority, ascending.
    prio_buckets: BTreeMap<u16, Vec<usize>>,
    /// entry id → entry indices, ascending (ids are unique per switch, so
    /// buckets are singletons in practice; the vector form mirrors
    /// `strict` and keeps first-position semantics under duplicates).
    by_id: FnvMap<EntryId, Vec<usize>>,
    /// Tuple-space cover index: wildcard word (the match *shape*: which
    /// fields are constrained, at which prefix lengths) → canonical
    /// match → entry indices, ascending. A lookup projects the packet
    /// key once per resident shape and hash-probes, instead of running
    /// `covers` against every entry of a priority bucket; real tables
    /// hold a handful of shapes, so a lookup is a handful of hashes.
    cover: FnvMap<u32, FnvMap<FlowMatch, Vec<usize>>>,
    /// Multiset of installed priorities for O(log) shift counting.
    prio_counts: PriorityIndex,
    /// How many installed entries carry a nonzero idle or hard timeout —
    /// lets the per-op expiry sweep skip tables that can never expire.
    timeout_entries: usize,
}

/// Whether an entry participates in expiry at all.
fn has_timeout(e: &FlowEntry) -> bool {
    e.idle_timeout > 0 || e.hard_timeout > 0
}

impl FlowTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in installation order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Iterates entries mutably. Key fields (`flow_match`, `priority`)
    /// must not be changed through this — see the type-level invariant.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut FlowEntry> {
        self.entries.iter_mut()
    }

    /// Read access to the backing slice (for policy scans).
    #[must_use]
    pub fn as_slice(&self) -> &[FlowEntry] {
        &self.entries
    }

    fn strict_key(e: &FlowEntry) -> (FlowMatch, u16) {
        (e.flow_match, e.priority)
    }

    /// Drops `index` from one bucket, deleting the bucket when emptied.
    /// Returns whether the bucket survives (for map `retain`-style use).
    fn bucket_drop(bucket: &mut Vec<usize>, index: usize) -> bool {
        if let Ok(pos) = bucket.binary_search(&index) {
            bucket.remove(pos);
        }
        !bucket.is_empty()
    }

    /// Decrements every position in `bucket` strictly above `removed` —
    /// pure integer work, no re-hashing. The removed position itself is
    /// already gone from its buckets, so the strictly-greater suffix
    /// stays sorted and duplicate-free.
    fn bucket_shift_down(bucket: &mut [usize], removed: usize) {
        let from = bucket.partition_point(|&i| i <= removed);
        for i in &mut bucket[from..] {
            *i -= 1;
        }
    }

    /// Rewrites `bucket` through `new_of_old` (old position →
    /// `usize::MAX` if removed, else new position) after a compaction.
    /// The mapping is monotone on surviving positions, so the bucket
    /// stays sorted. Returns whether the bucket survives.
    fn bucket_remap(bucket: &mut Vec<usize>, new_of_old: &[usize]) -> bool {
        let mut w = 0;
        for r in 0..bucket.len() {
            let mapped = new_of_old[bucket[r]];
            if mapped != usize::MAX {
                bucket[w] = mapped;
                w += 1;
            }
        }
        bucket.truncate(w);
        !bucket.is_empty()
    }

    /// Adds `index` (the current maximum) to every positional index for
    /// `e`, and records its priority/timeout in the counters.
    fn index_insert(&mut self, e_key: (FlowMatch, u16), id: EntryId, index: usize) {
        self.strict.entry(e_key).or_default().push(index);
        self.prio_buckets.entry(e_key.1).or_default().push(index);
        self.by_id.entry(id).or_default().push(index);
        self.cover
            .entry(e_key.0.wildcards())
            .or_default()
            .entry(e_key.0.canonical())
            .or_default()
            .push(index);
        self.prio_counts.add(e_key.1);
    }

    /// Drops `index` from every positional index for the removed entry
    /// `e`, and forgets its priority/timeout from the counters.
    fn index_remove(&mut self, e: &FlowEntry, index: usize) {
        let e_key = Self::strict_key(e);
        if let Some(bucket) = self.strict.get_mut(&e_key) {
            if !Self::bucket_drop(bucket, index) {
                self.strict.remove(&e_key);
            }
        }
        if let Some(bucket) = self.prio_buckets.get_mut(&e_key.1) {
            if !Self::bucket_drop(bucket, index) {
                self.prio_buckets.remove(&e_key.1);
            }
        }
        if let Some(bucket) = self.by_id.get_mut(&e.id) {
            if !Self::bucket_drop(bucket, index) {
                self.by_id.remove(&e.id);
            }
        }
        let shape = e_key.0.wildcards();
        if let Some(group) = self.cover.get_mut(&shape) {
            let canon = e_key.0.canonical();
            if let Some(bucket) = group.get_mut(&canon) {
                if !Self::bucket_drop(bucket, index) {
                    group.remove(&canon);
                }
            }
            if group.is_empty() {
                self.cover.remove(&shape);
            }
        }
        self.prio_counts.remove(e_key.1);
        if has_timeout(e) {
            self.timeout_entries -= 1;
        }
    }

    /// After the entry at `removed` was taken out of the vector, every
    /// stored position above it is off by one.
    fn index_shift_down(&mut self, removed: usize) {
        for bucket in self.strict.values_mut() {
            Self::bucket_shift_down(bucket, removed);
        }
        for bucket in self.prio_buckets.values_mut() {
            Self::bucket_shift_down(bucket, removed);
        }
        for bucket in self.by_id.values_mut() {
            Self::bucket_shift_down(bucket, removed);
        }
        for group in self.cover.values_mut() {
            for bucket in group.values_mut() {
                Self::bucket_shift_down(bucket, removed);
            }
        }
    }

    /// Remaps every positional index through `new_of_old` after a
    /// compaction; emptied buckets are dropped.
    fn index_remap(&mut self, new_of_old: &[usize]) {
        self.strict
            .retain(|_, bucket| Self::bucket_remap(bucket, new_of_old));
        self.prio_buckets
            .retain(|_, bucket| Self::bucket_remap(bucket, new_of_old));
        self.by_id
            .retain(|_, bucket| Self::bucket_remap(bucket, new_of_old));
        self.cover.retain(|_, group| {
            group.retain(|_, bucket| Self::bucket_remap(bucket, new_of_old));
            !group.is_empty()
        });
    }

    /// Installs an entry.
    pub fn insert(&mut self, entry: FlowEntry) {
        let key = Self::strict_key(&entry);
        let id = entry.id;
        if has_timeout(&entry) {
            self.timeout_entries += 1;
        }
        let index = self.entries.len();
        self.entries.push(entry);
        self.index_insert(key, id, index);
    }

    /// Removes and returns the entry at `index`.
    pub fn remove_at(&mut self, index: usize) -> FlowEntry {
        let e = self.entries.remove(index);
        self.index_remove(&e, index);
        self.index_shift_down(index);
        e
    }

    /// Index of the matching entry for `key`: maximal priority, then
    /// earliest entry id.
    ///
    /// Tuple-space search: projects the key once per resident match
    /// shape (wildcard word) and hash-probes that shape's canonical-match
    /// map, so cost scales with the number of *distinct shapes* rather
    /// than the number of entries sharing a priority. Cover-bucket
    /// collisions (identical canonical match at different priorities or
    /// ids) are resolved by the same (priority, id) order the old
    /// bucket scan applied.
    #[must_use]
    pub fn lookup(&self, key: &FlowKey) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (&shape, group) in &self.cover {
            let probe = FlowMatch::project(key, shape);
            let Some(bucket) = group.get(&probe) else {
                continue;
            };
            for &i in bucket {
                let e = &self.entries[i];
                debug_assert!(e.flow_match.covers(key), "stale cover index {i}");
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let cur = &self.entries[b];
                        if e.priority > cur.priority
                            || (e.priority == cur.priority && e.id < cur.id)
                        {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        best
    }

    /// Mutable access by index. Key fields (`flow_match`, `priority`)
    /// must not be changed through this — see the type-level invariant.
    pub fn get_mut(&mut self, index: usize) -> &mut FlowEntry {
        &mut self.entries[index]
    }

    /// Read access by index.
    #[must_use]
    pub fn get(&self, index: usize) -> &FlowEntry {
        &self.entries[index]
    }

    /// Finds the entry that *strictly* equals the given match and
    /// priority (OpenFlow strict semantics). O(1) via the strict index.
    #[must_use]
    pub fn find_strict(&self, flow_match: &FlowMatch, priority: u16) -> Option<usize> {
        self.strict
            .get(&(*flow_match, priority))
            .and_then(|bucket| bucket.first().copied())
    }

    /// Indices of entries selected by a non-strict filter: entries whose
    /// match is subsumed by `filter`, optionally restricted to entries
    /// with an output action to `out_port`.
    #[must_use]
    pub fn select_loose(&self, filter: &FlowMatch, out_port: PortNo) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| filter.subsumes(&e.flow_match))
            .filter(|(_, e)| {
                out_port == PortNo::NONE
                    || e.actions
                        .iter()
                        .any(|a| matches!(a, Action::Output { port, .. } if *port == out_port))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Removes a set of indices (any order), returning the removed
    /// entries in descending index order.
    ///
    /// Single mark-and-compact pass: O(n + k log k) instead of the
    /// k·O(n) of repeated `Vec::remove`.
    pub fn remove_indices(&mut self, mut indices: Vec<usize>) -> Vec<FlowEntry> {
        indices.sort_unstable_by(|a, b| b.cmp(a));
        indices.dedup();
        if indices.is_empty() {
            return Vec::new();
        }
        let mut mask = vec![false; self.entries.len()];
        for &i in &indices {
            mask[i] = true;
        }
        let mut new_of_old = vec![usize::MAX; self.entries.len()];
        let mut kept_count = 0;
        for (i, &dead) in mask.iter().enumerate() {
            if !dead {
                new_of_old[i] = kept_count;
                kept_count += 1;
            }
        }
        let mut removed = Vec::with_capacity(indices.len());
        let mut kept = Vec::with_capacity(kept_count);
        for (i, e) in self.entries.drain(..).enumerate() {
            if mask[i] {
                removed.push(e);
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;
        // Compaction collects ascending; the documented contract returns
        // descending index order.
        removed.reverse();
        self.index_remap(&new_of_old);
        for e in &removed {
            self.prio_counts.remove(e.priority);
            if has_timeout(e) {
                self.timeout_entries -= 1;
            }
        }
        removed
    }

    /// Removes every entry, returning them.
    pub fn drain_all(&mut self) -> Vec<FlowEntry> {
        self.strict.clear();
        self.prio_buckets.clear();
        self.by_id.clear();
        self.cover.clear();
        self.prio_counts.clear();
        self.timeout_entries = 0;
        std::mem::take(&mut self.entries)
    }

    /// Finds an entry by id. O(1) via the id index; under (contractually
    /// absent) duplicate ids, returns the earliest position like the old
    /// linear scan.
    #[must_use]
    pub fn position_of(&self, id: EntryId) -> Option<usize> {
        self.by_id
            .get(&id)
            .and_then(|bucket| bucket.first().copied())
    }

    /// How many installed entries have priority strictly above
    /// `priority` — the TCAM shift cost of inserting at that priority.
    /// O(log 65536) via the Fenwick index; [`crate::tcam::shift_count`]
    /// is the linear oracle.
    #[must_use]
    pub fn count_above(&self, priority: u16) -> usize {
        self.prio_counts.count_above(priority)
    }

    /// How many installed entries carry a nonzero idle or hard timeout.
    /// Zero means no expiry sweep can ever remove anything here, so
    /// per-op sweeps skip the table entirely.
    #[must_use]
    pub fn timeout_count(&self) -> usize {
        self.timeout_entries
    }

    /// Reference oracle: the pre-index linear scan `lookup`. Kept under
    /// `cfg(test)` so property tests can assert the indexed path agrees.
    #[cfg(test)]
    #[must_use]
    pub fn lookup_linear(&self, key: &FlowKey) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.flow_match.covers(key) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let cur = &self.entries[b];
                    if e.priority > cur.priority || (e.priority == cur.priority && e.id < cur.id) {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Reference oracle: the pre-index linear scan `find_strict`.
    #[cfg(test)]
    #[must_use]
    pub fn find_strict_linear(&self, flow_match: &FlowMatch, priority: u16) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.priority == priority && e.flow_match == *flow_match)
    }

    /// Reference oracle: the pre-index linear scan `position_of`.
    #[cfg(test)]
    #[must_use]
    pub fn position_of_linear(&self, id: EntryId) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    /// Test hook: verifies both indexes describe exactly the entries.
    #[cfg(test)]
    pub fn assert_index_consistent(&self) {
        let mut strict_count = 0;
        for (key, bucket) in &self.strict {
            assert!(!bucket.is_empty(), "empty strict bucket for {key:?}");
            assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "strict bucket not sorted: {bucket:?}"
            );
            for &i in bucket {
                let e = &self.entries[i];
                assert_eq!((e.flow_match, e.priority), *key, "stale strict index {i}");
            }
            strict_count += bucket.len();
        }
        assert_eq!(strict_count, self.entries.len());
        let mut prio_count = 0;
        for (&prio, bucket) in &self.prio_buckets {
            assert!(!bucket.is_empty(), "empty priority bucket for {prio}");
            assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "priority bucket not sorted: {bucket:?}"
            );
            for &i in bucket {
                assert_eq!(self.entries[i].priority, prio, "stale priority index {i}");
            }
            prio_count += bucket.len();
        }
        assert_eq!(prio_count, self.entries.len());
        let mut id_count = 0;
        for (&id, bucket) in &self.by_id {
            assert!(!bucket.is_empty(), "empty id bucket for {id:?}");
            assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "id bucket not sorted: {bucket:?}"
            );
            for &i in bucket {
                assert_eq!(self.entries[i].id, id, "stale id index {i}");
            }
            id_count += bucket.len();
        }
        assert_eq!(id_count, self.entries.len());
        let mut cover_count = 0;
        for (&shape, group) in &self.cover {
            assert!(!group.is_empty(), "empty cover group for {shape:#x}");
            for (canon, bucket) in group {
                assert!(!bucket.is_empty(), "empty cover bucket for {canon:?}");
                assert!(
                    bucket.windows(2).all(|w| w[0] < w[1]),
                    "cover bucket not sorted: {bucket:?}"
                );
                for &i in bucket {
                    let m = self.entries[i].flow_match;
                    assert_eq!(m.wildcards(), shape, "stale cover shape {i}");
                    assert_eq!(m.canonical(), *canon, "stale cover key {i}");
                }
                cover_count += bucket.len();
            }
        }
        assert_eq!(cover_count, self.entries.len());
        // Fenwick priority counts and the timeout counter must match a
        // recompute from scratch.
        assert_eq!(self.prio_counts.len(), self.entries.len());
        for probe in self.entries.iter().map(|e| e.priority).take(64) {
            for p in [probe.saturating_sub(1), probe, probe.saturating_add(1)] {
                assert_eq!(
                    self.count_above(p),
                    crate::tcam::shift_count(self.entries.iter().map(|e| &e.priority), p),
                    "fenwick disagrees at priority {p}"
                );
            }
        }
        assert_eq!(
            self.timeout_entries,
            self.entries.iter().filter(|e| has_timeout(e)).count()
        );
    }
}

/// An exact-match microflow entry in the kernel cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroflowEntry {
    /// The userspace entry this microflow was cloned from.
    pub parent: EntryId,
    /// When the microflow was installed.
    pub installed_at: SimTime,
    /// When it last matched a packet.
    pub last_used_at: SimTime,
}

/// OVS-style kernel cache: exact [`FlowKey`] → microflow entries, with
/// LRU eviction at a configurable capacity. This implements the paper's
/// "1-to-N mapping (one user space entry could map to multiple kernel
/// space entries)".
#[derive(Debug, Clone)]
pub struct MicroflowCache {
    map: HashMap<FlowKey, MicroflowEntry>,
    capacity: usize,
}

impl MicroflowCache {
    /// A cache holding at most `capacity` microflows.
    #[must_use]
    pub fn new(capacity: usize) -> MicroflowCache {
        MicroflowCache {
            map: HashMap::new(),
            capacity,
        }
    }

    /// Number of cached microflows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up an exact key, refreshing its LRU stamp on hit.
    pub fn lookup_touch(&mut self, key: &FlowKey, now: SimTime) -> Option<EntryId> {
        let e = self.map.get_mut(key)?;
        e.last_used_at = now;
        Some(e.parent)
    }

    /// Installs a microflow for `key`, evicting the least recently used
    /// entry if at capacity.
    pub fn install(&mut self, key: FlowKey, parent: EntryId, now: SimTime) {
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used_at)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            MicroflowEntry {
                parent,
                installed_at: now,
                last_used_at: now,
            },
        );
    }

    /// Drops every microflow cloned from `parent` (used when the parent
    /// rule is deleted or modified, to preserve semantics).
    pub fn invalidate_parent(&mut self, parent: EntryId) {
        self.map.retain(|_, e| e.parent != parent);
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, m: FlowMatch, prio: u16) -> FlowEntry {
        FlowEntry::new(EntryId(id), m, prio, vec![Action::output(1)], SimTime(id))
    }

    #[test]
    fn lookup_prefers_priority_then_age() {
        let mut t = FlowTable::new();
        let key = FlowMatch::key_for_id(7);
        t.insert(entry(1, FlowMatch::l3_for_id(7), 10));
        t.insert(entry(2, FlowMatch::l2_for_id(7), 20));
        t.insert(entry(3, FlowMatch::any(), 20)); // same prio as #2, later id
        let hit = t.lookup(&key).unwrap();
        assert_eq!(t.get(hit).id, EntryId(2));
    }

    #[test]
    fn lookup_miss() {
        let mut t = FlowTable::new();
        t.insert(entry(1, FlowMatch::l3_for_id(5), 10));
        assert!(t.lookup(&FlowMatch::key_for_id(6)).is_none());
    }

    #[test]
    fn strict_find_requires_priority_and_match() {
        let mut t = FlowTable::new();
        let m = FlowMatch::l3_for_id(1);
        t.insert(entry(1, m, 10));
        assert!(t.find_strict(&m, 10).is_some());
        assert!(t.find_strict(&m, 11).is_none());
        assert!(t.find_strict(&FlowMatch::l3_for_id(2), 10).is_none());
    }

    #[test]
    fn loose_selection_uses_subsumption_and_out_port() {
        let mut t = FlowTable::new();
        t.insert(entry(1, FlowMatch::l3_for_id(1), 10)); // output:1
        let mut e2 = entry(2, FlowMatch::l3_for_id(2), 10);
        e2.actions = vec![Action::output(9)];
        t.insert(e2);
        // The wildcard filter subsumes both.
        let all = t.select_loose(&FlowMatch::any(), PortNo::NONE);
        assert_eq!(all.len(), 2);
        // Out-port restriction narrows to the entry forwarding to 9.
        let only9 = t.select_loose(&FlowMatch::any(), PortNo(9));
        assert_eq!(only9.len(), 1);
        assert_eq!(t.get(only9[0]).id, EntryId(2));
        // A specific filter selects only what it subsumes.
        let one = t.select_loose(&FlowMatch::l3_for_id(1), PortNo::NONE);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn remove_indices_handles_unsorted_dupes() {
        let mut t = FlowTable::new();
        for i in 0..5 {
            t.insert(entry(i, FlowMatch::l3_for_id(i as u32), 1));
        }
        let removed = t.remove_indices(vec![3, 1, 3]);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 3);
        let left: Vec<u64> = t.iter().map(|e| e.id.0).collect();
        assert_eq!(left, vec![0, 2, 4]);
    }

    #[test]
    fn indexed_lookup_agrees_with_linear_oracle() {
        let mut t = FlowTable::new();
        // Mixed priorities, overlapping covers, churn via remove_at.
        for i in 0..32u64 {
            let m = match i % 4 {
                0 => FlowMatch::any(),
                1 => FlowMatch::l2_for_id((i / 4) as u32),
                2 => FlowMatch::l3_for_id((i / 4) as u32),
                _ => FlowMatch::l3_for_id((i / 2) as u32),
            };
            t.insert(entry(i, m, (i % 5) as u16 * 10));
        }
        t.remove_at(7);
        t.remove_at(0);
        t.remove_indices(vec![4, 12, 4, 20]);
        t.assert_index_consistent();
        for id in 0..20u32 {
            let key = FlowMatch::key_for_id(id);
            assert_eq!(t.lookup(&key), t.lookup_linear(&key), "key {id}");
        }
        for id in 0..20u32 {
            for prio in [0u16, 10, 20, 30, 40] {
                let m = FlowMatch::l3_for_id(id);
                assert_eq!(
                    t.find_strict(&m, prio),
                    t.find_strict_linear(&m, prio),
                    "strict {id}/{prio}"
                );
            }
        }
    }

    #[test]
    fn index_survives_duplicate_strict_keys() {
        let mut t = FlowTable::new();
        let m = FlowMatch::l3_for_id(9);
        t.insert(entry(1, m, 10));
        t.insert(entry(2, m, 10)); // duplicate (match, priority)
        t.assert_index_consistent();
        // Strict find returns the earliest position, like the old scan.
        assert_eq!(t.find_strict(&m, 10), Some(0));
        t.remove_at(0);
        t.assert_index_consistent();
        assert_eq!(t.find_strict(&m, 10), Some(0));
        assert_eq!(t.get(0).id, EntryId(2));
    }

    #[test]
    fn drain_all_resets_indexes() {
        let mut t = FlowTable::new();
        for i in 0..4 {
            t.insert(entry(i, FlowMatch::l3_for_id(i as u32), 5));
        }
        let drained = t.drain_all();
        assert_eq!(drained.len(), 4);
        assert!(t.is_empty());
        t.assert_index_consistent();
        assert!(t.find_strict(&FlowMatch::l3_for_id(1), 5).is_none());
        t.insert(entry(9, FlowMatch::l3_for_id(1), 5));
        assert_eq!(t.find_strict(&FlowMatch::l3_for_id(1), 5), Some(0));
    }

    #[test]
    fn microflow_lru_eviction() {
        let mut c = MicroflowCache::new(2);
        let k1 = FlowMatch::key_for_id(1);
        let k2 = FlowMatch::key_for_id(2);
        let k3 = FlowMatch::key_for_id(3);
        c.install(k1, EntryId(1), SimTime(10));
        c.install(k2, EntryId(1), SimTime(20));
        // Touch k1 so k2 becomes LRU.
        assert_eq!(c.lookup_touch(&k1, SimTime(30)), Some(EntryId(1)));
        c.install(k3, EntryId(2), SimTime(40));
        assert_eq!(c.len(), 2);
        assert!(c.lookup_touch(&k2, SimTime(50)).is_none());
        assert!(c.lookup_touch(&k1, SimTime(50)).is_some());
        assert!(c.lookup_touch(&k3, SimTime(50)).is_some());
    }

    #[test]
    fn microflow_parent_invalidation() {
        let mut c = MicroflowCache::new(10);
        c.install(FlowMatch::key_for_id(1), EntryId(1), SimTime(0));
        c.install(FlowMatch::key_for_id(2), EntryId(1), SimTime(0));
        c.install(FlowMatch::key_for_id(3), EntryId(2), SimTime(0));
        c.invalidate_parent(EntryId(1));
        assert_eq!(c.len(), 1);
        assert!(c
            .lookup_touch(&FlowMatch::key_for_id(3), SimTime(1))
            .is_some());
    }
}
