//! Property test: the indexed `FlowTable` agrees with a naive
//! linear-scan oracle on random operation sequences.
//!
//! The oracle reimplements the pre-index semantics (scan everything,
//! max priority then min id; strict find = first position) on a plain
//! `Vec<FlowEntry>`. Every operation — insert, strict modify, strict
//! delete, loose delete, lookup — is applied to both tables and their
//! observable state compared, so any index-maintenance bug (stale
//! position, unsorted bucket, missed compaction fix-up) surfaces as a
//! divergence.

use ofwire::action::Action;
use ofwire::flow_match::{FlowKey, FlowMatch};
use ofwire::types::PortNo;
use proptest::prelude::*;
use simnet::time::SimTime;
use switchsim::entry::{EntryId, FlowEntry};
use switchsim::table::FlowTable;

/// The pre-index linear-scan semantics, kept deliberately naive.
#[derive(Default)]
struct NaiveTable {
    entries: Vec<FlowEntry>,
}

impl NaiveTable {
    fn insert(&mut self, entry: FlowEntry) {
        self.entries.push(entry);
    }

    fn lookup(&self, key: &FlowKey) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.flow_match.covers(key) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let cur = &self.entries[b];
                    if e.priority > cur.priority || (e.priority == cur.priority && e.id < cur.id) {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    fn find_strict(&self, flow_match: &FlowMatch, priority: u16) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.priority == priority && e.flow_match == *flow_match)
    }

    fn select_loose(&self, filter: &FlowMatch) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| filter.subsumes(&e.flow_match))
            .map(|(i, _)| i)
            .collect()
    }

    fn remove_at(&mut self, index: usize) -> FlowEntry {
        self.entries.remove(index)
    }

    fn remove_indices(&mut self, mut indices: Vec<usize>) -> Vec<FlowEntry> {
        indices.sort_unstable_by(|a, b| b.cmp(a));
        indices.dedup();
        indices
            .into_iter()
            .map(|i| self.entries.remove(i))
            .collect()
    }
}

fn a_match(fid: u32) -> FlowMatch {
    // A small family with genuine overlap: wildcards cover everything,
    // L2/L3 matches collide across ids modulo a narrow range.
    match fid % 4 {
        0 => FlowMatch::any(),
        1 => FlowMatch::l2_for_id(fid / 4 % 6),
        2 => FlowMatch::l3_for_id(fid / 4 % 6),
        _ => FlowMatch::l2l3_for_id(fid / 4 % 6),
    }
}

/// Compares every observable of the two tables.
fn assert_agree(indexed: &FlowTable, naive: &NaiveTable) {
    assert_eq!(indexed.snapshot(), naive.entries, "entry order");
    for fid in 0..8u32 {
        let key = FlowMatch::key_for_id(fid);
        assert_eq!(indexed.lookup(&key), naive.lookup(&key), "lookup fid={fid}");
        for prio in 0..4u16 {
            let m = a_match(fid);
            assert_eq!(
                indexed.find_strict(&m, prio),
                naive.find_strict(&m, prio),
                "strict fid={fid} prio={prio}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_table_matches_linear_oracle(
        ops in proptest::collection::vec((0u8..5, any::<u32>(), 0u16..4), 1..120)
    ) {
        let mut indexed = FlowTable::new();
        let mut naive = NaiveTable::default();
        let mut next_id = 0u64;
        for (step, (op, fid, prio)) in ops.into_iter().enumerate() {
            match op {
                // Insert (weighted: two opcodes) — duplicates of the
                // same (match, priority) are allowed and exercised.
                0 | 1 => {
                    let e = FlowEntry::new(
                        EntryId(next_id),
                        a_match(fid),
                        prio,
                        vec![Action::output(1)],
                        SimTime(step as u64),
                    );
                    next_id += 1;
                    indexed.insert(e.clone());
                    naive.insert(e);
                }
                // Strict modify: rewrite actions in place (key fields
                // are immutable per the table contract).
                2 => {
                    let m = a_match(fid);
                    let at = indexed.find_strict(&m, prio);
                    prop_assert_eq!(at, naive.find_strict(&m, prio));
                    if let Some(i) = at {
                        indexed.get_mut(i).actions = vec![Action::output(9)];
                        naive.entries[i].actions = vec![Action::output(9)];
                    }
                }
                // Strict delete.
                3 => {
                    let m = a_match(fid);
                    if let Some(i) = indexed.find_strict(&m, prio) {
                        let a = indexed.remove_at(i);
                        let b = naive.remove_at(i);
                        prop_assert_eq!(a, b);
                    }
                }
                // Loose delete: everything a narrower filter subsumes.
                _ => {
                    let filter = a_match(fid);
                    let sel = indexed.select_loose(&filter, PortNo::NONE);
                    prop_assert_eq!(&sel, &naive.select_loose(&filter));
                    let a = indexed.remove_indices(sel.clone());
                    let b = naive.remove_indices(sel);
                    prop_assert_eq!(a, b);
                }
            }
            assert_agree(&indexed, &naive);
        }
    }
}
