//! Property-based pinning of the incremental data-path indexes against
//! recompute-from-scratch oracles.
//!
//! The pipeline maintains three pieces of derived state that the hot
//! paths rely on instead of scanning: per-level `used_units`, a Fenwick
//! count over installed priorities (TCAM shift costs), and a lazy
//! eviction index (victim/backfill selection). Random
//! add/remove/touch/expire sequences must keep every one of them in
//! exact agreement with the linear recomputation at every step.

use ofwire::flow_match::FlowMatch;
use ofwire::types::PortNo;
use proptest::prelude::*;
use simnet::time::{SimDuration, SimTime};
use switchsim::cache::{Attribute, CachePolicy, Direction, SortKey};
use switchsim::entry::{EntryId, FlowEntry};
use switchsim::pipeline::{CacheLevel, Pipeline};
use switchsim::tcam::{shift_count, TcamGeometry};

fn arb_policy() -> impl Strategy<Value = CachePolicy> {
    let key = (0usize..4, prop::bool::ANY).prop_map(|(a, high)| SortKey {
        attribute: Attribute::ALL[a],
        direction: if high {
            Direction::KeepHigh
        } else {
            Direction::KeepLow
        },
    });
    proptest::collection::vec(key, 1..4).prop_map(|mut keys| {
        // LEX orders do not repeat attributes.
        let mut seen = Vec::new();
        keys.retain(|k| {
            if seen.contains(&k.attribute) {
                false
            } else {
                seen.push(k.attribute);
                true
            }
        });
        CachePolicy::new(keys)
    })
}

#[derive(Debug, Clone)]
enum Op {
    Add {
        fid: u32,
        prio: u16,
        idle: u16,
        hard: u16,
        l2l3: bool,
    },
    Touch {
        which: usize,
    },
    Delete {
        which: usize,
    },
    Expire {
        advance_secs: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Adds and touches are listed twice to weight the mix toward them.
    prop_oneof![
        (0u32..64, 0u16..8, 0u16..4, 0u16..4, prop::bool::ANY).prop_map(
            |(fid, prio, idle, hard, l2l3)| Op::Add {
                fid,
                prio,
                idle,
                hard,
                l2l3
            }
        ),
        (64u32..128, 0u16..8, 0u16..4, 0u16..4, prop::bool::ANY).prop_map(
            |(fid, prio, idle, hard, l2l3)| Op::Add {
                fid,
                prio,
                idle,
                hard,
                l2l3
            }
        ),
        (0usize..64).prop_map(|which| Op::Touch { which }),
        (1usize..63).prop_map(|which| Op::Touch { which }),
        (0usize..64).prop_map(|which| Op::Delete { which }),
        (0u64..5).prop_map(|advance_secs| Op::Expire { advance_secs }),
    ]
}

/// Recomputes every incrementally maintained quantity of `level` from
/// its entry slice and asserts agreement.
fn check_level(level: &mut CacheLevel, policy: &CachePolicy) {
    let entries: Vec<FlowEntry> = level.table.snapshot();

    // used_units: recompute as the sum of per-entry geometry costs.
    if let Some(g) = level.geometry {
        let expect: u64 = entries.iter().map(|e| g.cost(e.kind())).sum();
        prop_assert_eq!(level.used_units(), expect, "used_units diverged");
        prop_assert!(level.used_units() <= g.capacity_units, "over capacity");
    }

    // Fenwick priority counts: probe around every resident priority and
    // the domain edges.
    let prios: Vec<u16> = entries.iter().map(|e| e.priority).collect();
    let mut probes: Vec<u16> = vec![0, u16::MAX];
    for &p in &prios {
        probes.extend([p.saturating_sub(1), p, p.saturating_add(1)]);
    }
    for probe in probes {
        prop_assert_eq!(
            level.table.count_above(probe),
            shift_count(prios.iter(), probe),
            "count_above({}) diverged",
            probe
        );
    }

    // Eviction index vs the linear victim/backfill scans.
    prop_assert_eq!(
        level.worst_pos(policy),
        policy.worst_index(&entries),
        "worst_pos diverged"
    );
    prop_assert_eq!(
        level.best_pos(policy),
        policy.best_index(&entries),
        "best_pos diverged"
    );

    // Timeout population and id positions.
    let timeouts = entries
        .iter()
        .filter(|e| e.idle_timeout > 0 || e.hard_timeout > 0)
        .count();
    prop_assert_eq!(level.table.timeout_count(), timeouts, "timeout_count");
    for (i, e) in entries.iter().enumerate() {
        prop_assert_eq!(level.table.position_of(e.id), Some(i), "position_of");
    }
}

fn run_sequence(mut pipe: Pipeline, ops: &[Op]) {
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    let mut fids: Vec<u32> = Vec::new();
    for op in ops {
        now += SimDuration::from_secs(1);
        match *op {
            Op::Add {
                fid,
                prio,
                idle,
                hard,
                l2l3,
            } => {
                let m = if l2l3 {
                    FlowMatch::l2l3_for_id(fid)
                } else {
                    FlowMatch::l3_for_id(fid)
                };
                let mut e = FlowEntry::new(EntryId(next_id), m, prio, vec![], now);
                next_id += 1;
                e.idle_timeout = idle;
                e.hard_timeout = hard;
                let _ = pipe.add(e);
                fids.push(fid);
            }
            Op::Touch { which } => {
                if !fids.is_empty() {
                    let fid = fids[which % fids.len()];
                    let key = FlowMatch::key_for_id(fid);
                    pipe.lookup_touch(&key, now, 64);
                }
            }
            Op::Delete { which } => {
                if !fids.is_empty() {
                    let fid = fids[which % fids.len()];
                    // Loose delete: removes every entry for this flow id
                    // regardless of priority.
                    pipe.delete(&FlowMatch::l3_for_id(fid), 0, false, PortNo::NONE);
                }
            }
            Op::Expire { advance_secs } => {
                now += SimDuration::from_secs(advance_secs);
                pipe.expire(now);
            }
        }
        if let Pipeline::PolicyCached { levels, policy } = &mut pipe {
            let policy = policy.clone();
            for level in levels.iter_mut() {
                check_level(level, &policy);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn two_level_indexes_agree_with_oracles(
        policy in arb_policy(),
        ops in proptest::collection::vec(arb_op(), 1..100),
    ) {
        // A tight TCAM over unbounded software: adds overflow and swap
        // constantly, exercising eviction, demotion, and backfill.
        let pipe = Pipeline::cached(TcamGeometry::single_wide(12), policy);
        run_sequence(pipe, &ops);
    }

    #[test]
    fn three_level_indexes_agree_with_oracles(
        policy in arb_policy(),
        ops in proptest::collection::vec(arb_op(), 1..80),
    ) {
        // Two bounded levels cascade into software; the middle level is
        // double-wide so L2+L3 entries cost the same as narrow ones.
        let pipe = Pipeline::PolicyCached {
            levels: vec![
                CacheLevel::hardware("tcam0", TcamGeometry::single_wide(6)),
                CacheLevel::hardware("tcam1", TcamGeometry::double_wide(10)),
                CacheLevel::software("userspace"),
            ],
            policy,
        };
        run_sequence(pipe, &ops);
    }
}
