//! Property-based invariants of the switch model.
//!
//! * Rule conservation: installed = added − deleted, always.
//! * Capacity: a bounded level never exceeds its unit capacity.
//! * The cache policy relation is a strict total order (antisymmetric,
//!   transitive, total) for arbitrary attribute values.
//! * Lookup is deterministic and respects priority.

use ofwire::flow_match::FlowMatch;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use proptest::prelude::*;
use simnet::time::SimTime;
use switchsim::cache::{Attribute, CachePolicy, Direction, SortKey};
use switchsim::entry::{EntryId, FlowEntry};
use switchsim::profiles::SwitchProfile;
use switchsim::switch::{FlowModEffect, Switch};

fn arb_policy() -> impl Strategy<Value = CachePolicy> {
    let key = (0usize..4, prop::bool::ANY).prop_map(|(a, high)| SortKey {
        attribute: Attribute::ALL[a],
        direction: if high {
            Direction::KeepHigh
        } else {
            Direction::KeepLow
        },
    });
    proptest::collection::vec(key, 1..4).prop_map(|mut keys| {
        // LEX orders do not repeat attributes.
        let mut seen = Vec::new();
        keys.retain(|k| {
            if seen.contains(&k.attribute) {
                false
            } else {
                seen.push(k.attribute);
                true
            }
        });
        CachePolicy::new(keys)
    })
}

fn arb_entry(id: u64) -> impl Strategy<Value = FlowEntry> {
    (any::<u32>(), 0u64..100, 0u64..100, 0u64..50, any::<u16>()).prop_map(
        move |(fid, ins, used, pkts, prio)| {
            let mut e = FlowEntry::new(
                EntryId(id),
                FlowMatch::l3_for_id(fid),
                prio,
                vec![],
                SimTime(ins),
            );
            e.last_used_at = SimTime(ins + used);
            e.packet_count = pkts;
            e
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn policy_is_a_strict_total_order(
        policy in arb_policy(),
        e1 in arb_entry(1),
        e2 in arb_entry(2),
        e3 in arb_entry(3),
    ) {
        use std::cmp::Ordering;
        // Totality & antisymmetry (distinct ids guarantee no Equal).
        for (a, b) in [(&e1, &e2), (&e1, &e3), (&e2, &e3)] {
            let ab = policy.cmp_entries(a, b);
            let ba = policy.cmp_entries(b, a);
            prop_assert_ne!(ab, Ordering::Equal);
            prop_assert_eq!(ab, ba.reverse());
        }
        // Transitivity over the triple.
        let mut sorted = [&e1, &e2, &e3];
        sorted.sort_by(|a, b| policy.cmp_entries(a, b));
        for w in sorted.windows(2) {
            prop_assert_eq!(
                policy.cmp_entries(w[0], w[1]),
                Ordering::Less
            );
        }
        prop_assert_eq!(
            policy.cmp_entries(sorted[0], sorted[2]),
            Ordering::Less
        );
    }

    #[test]
    fn rule_conservation_under_random_op_sequences(
        ops in proptest::collection::vec((0u8..3, 0u32..40, 1u16..200), 1..120),
        seed in any::<u64>(),
    ) {
        let mut sw = Switch::new(SwitchProfile::vendor2(), Dpid(1), seed);
        let mut model: std::collections::HashMap<(u32, u16), usize> =
            std::collections::HashMap::new();
        let mut t = 0u64;
        for (op, fid, prio) in ops {
            t += 1;
            let m = FlowMatch::l3_for_id(fid);
            let fm = match op {
                0 => FlowMod::add(m, prio),
                1 => FlowMod::modify_strict(m, prio, vec![]),
                _ => FlowMod::delete_strict(m, prio),
            };
            let (res, _) = sw.apply_flow_mod(&fm, SimTime(t));
            match (op, res) {
                (0, Ok(FlowModEffect::Added { .. })) => {
                    *model.entry((fid, prio)).or_insert(0) += 1;
                }
                (0, Err(_)) => {}
                (1, Ok(FlowModEffect::Modified(n))) => {
                    prop_assert_eq!(n, *model.get(&(fid, prio)).unwrap_or(&0));
                }
                (1, Ok(FlowModEffect::Added { .. })) => {
                    // Modify of an absent rule adds (OpenFlow semantics).
                    *model.entry((fid, prio)).or_insert(0) += 1;
                }
                (_, Ok(FlowModEffect::Deleted(n))) => {
                    let have = model.remove(&(fid, prio)).unwrap_or(0);
                    prop_assert_eq!(n, have);
                }
                (o, r) => prop_assert!(false, "unexpected {o} → {r:?}"),
            }
            let expected: usize = model.values().sum();
            prop_assert_eq!(sw.rule_count(), expected);
            // Capacity invariant: vendor2's TCAM holds ≤ 2560.
            prop_assert!(sw.level_occupancy(0) <= 2560);
        }
    }

    #[test]
    fn lookup_is_deterministic_and_priority_correct(
        rules in proptest::collection::vec((0u32..10, 1u16..100), 1..30),
        probe_id in 0u32..10,
    ) {
        let mut sw = Switch::new(SwitchProfile::vendor2(), Dpid(1), 7);
        let mut best: Option<u16> = None;
        let mut seen: std::collections::HashSet<(u32, u16)> =
            std::collections::HashSet::new();
        for (i, &(fid, prio)) in rules.iter().enumerate() {
            if !seen.insert((fid, prio)) {
                continue; // strict duplicates would stack confusingly
            }
            let fm = FlowMod::add(FlowMatch::l3_for_id(fid), prio);
            let _ = sw.apply_flow_mod(&fm, SimTime(i as u64));
            if fid == probe_id {
                best = Some(best.map_or(prio, |b| b.max(prio)));
            }
        }
        let key = FlowMatch::key_for_id(probe_id);
        let (h1, _) = sw.inject(&key, SimTime(1000), 64);
        let (h2, _) = sw.inject(&key, SimTime(1001), 64);
        // Same membership outcome both times (vendor2 is TCAM-only, so
        // hits don't change anything).
        prop_assert_eq!(
            matches!(h1, switchsim::pipeline::Hit::Table { .. }),
            matches!(h2, switchsim::pipeline::Hit::Table { .. })
        );
        prop_assert_eq!(
            matches!(h1, switchsim::pipeline::Hit::Table { .. }),
            best.is_some()
        );
        // The matched entry carries the highest priority for the key.
        if let switchsim::pipeline::Hit::Table { entry, .. } = h1 {
            let stats = sw.flow_stats(SimTime(2000));
            let matched = stats
                .iter()
                .find(|e| {
                    e.flow_match.covers(&key) && e.packet_count > 0
                })
                .expect("matched entry visible in stats");
            prop_assert_eq!(Some(matched.priority), best);
            let _ = entry;
        }
    }

    #[test]
    fn fifo_spill_preserves_insertion_prefix_in_tcam(
        n in 1usize..60,
    ) {
        // Whatever the interleaving of probes, FIFO keeps the first
        // `cap` insertions in the fast level.
        let cap = 20u64;
        let mut sw = Switch::new(
            SwitchProfile::generic_cached(cap, CachePolicy::fifo()),
            Dpid(1),
            3,
        );
        for i in 0..n {
            let fm = FlowMod::add(FlowMatch::l3_for_id(i as u32), 10);
            sw.apply_flow_mod(&fm, SimTime(i as u64)).0.unwrap();
            // Interleave traffic to tempt a (wrong) promotion.
            let key = FlowMatch::key_for_id((i / 2) as u32);
            sw.inject(&key, SimTime(1000 + i as u64), 64);
        }
        prop_assert_eq!(
            sw.level_occupancy(0),
            n.min(cap as usize)
        );
    }
}
