//! Algorithm 2 — the cache-policy probing algorithm (§5.3).
//!
//! The probe installs `2n` flows (where `n` is the fast-layer size
//! inferred by Algorithm 1) with carefully initialized attributes so
//! that, for **each** candidate attribute, half the flows rank high and
//! half low — and no two attributes agree on which half (pairwise
//! balanced splits, cf. Fig 6). After initialization, the cached set is
//! exactly the policy's top-`n`; probing RTTs in most-recently-used-first
//! order observes membership without disturbing any attribute's relative
//! order. The attribute whose initialized values correlate most strongly
//! (positively or negatively) with membership is the policy's next sort
//! key; the probe recurses — holding identified non-serial attributes
//! constant — until it identifies a *serial* attribute (insertion or use
//! time, whose distinct-per-flow values already induce a total order).
//!
//! Policies whose internal tie-break is "oldest entry wins" are reported
//! with an explicit trailing `insertion_time↓` key — behaviourally
//! equivalent, which is all a black-box probe can promise.

use crate::cluster::cluster_rtts;
use crate::driver::{self, mismatch, InferenceDriver, ProbeError, Step};
use crate::pattern::RuleKind;
use crate::probe::ProbingEngine;
use crate::stats::pearson;
use ofwire::flow_mod::FlowMod;
use serde::{Deserialize, Serialize};
use switchsim::cache::{Attribute, CachePolicy, Direction, SortKey};
use switchsim::control::{ControlOp, OpOutcome};

/// Configuration for the policy probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyProbeConfig {
    /// Low traffic-count initialization value.
    pub traffic_low: u32,
    /// High traffic-count initialization value (must exceed `low` by ≥ 2
    /// so the probe's own packets cannot reorder flows — MONOTONE).
    pub traffic_high: u32,
    /// Low rule priority.
    pub prio_low: u16,
    /// High rule priority.
    pub prio_high: u16,
    /// Minimum |correlation| to accept an attribute as a sort key.
    pub min_correlation: f64,
    /// Maximum recursion depth (≤ number of attributes).
    pub max_keys: usize,
}

impl Default for PolicyProbeConfig {
    fn default() -> PolicyProbeConfig {
        PolicyProbeConfig {
            traffic_low: 10,
            traffic_high: 20,
            prio_low: 100,
            prio_high: 200,
            min_correlation: 0.5,
            max_keys: 4,
        }
    }
}

/// Diagnostics from one probe round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRound {
    /// Correlation of each candidate attribute with cache membership.
    pub correlations: Vec<(Attribute, f64)>,
    /// The attribute chosen this round (with direction), if any cleared
    /// the threshold.
    pub chosen: Option<SortKey>,
    /// How many flows the round observed as cached.
    pub cached_count: usize,
}

/// The inferred policy plus per-round diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferredPolicy {
    /// The identified lexicographic sort keys, most significant first.
    pub keys: Vec<SortKey>,
    /// Per-round diagnostics.
    pub rounds: Vec<PolicyRound>,
}

impl InferredPolicy {
    /// As a [`CachePolicy`] for comparison with ground truth.
    #[must_use]
    pub fn as_policy(&self) -> CachePolicy {
        CachePolicy::new(self.keys.clone())
    }
}

/// The attribute-initialization plan for one flow (visualized in Fig 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowInit {
    /// Flow id (also the insertion rank: flow `i` is installed `i`-th).
    pub id: u32,
    /// Rule priority.
    pub priority: u16,
    /// Total packets the flow receives during initialization.
    pub traffic: u32,
    /// Use rank: position in the final use-time order (0 = oldest use).
    pub use_rank: u32,
}

/// Builds the pairwise-balanced initialization plan for `s = 2n` flows.
///
/// * insertion rank = `i` (install order);
/// * priority splits on `i % 2` (unless held constant);
/// * traffic splits on `(i / 2) % 2` (unless held constant);
/// * use rank = `i · K mod s` for an odd multiplier `K` coprime to `s`,
///   decorrelating the use-time order from all the index-based splits.
#[must_use]
pub fn initialization_plan(
    s: usize,
    hold_priority: bool,
    hold_traffic: bool,
    config: &PolicyProbeConfig,
) -> Vec<FlowInit> {
    // An odd multiplier near s·φ, made coprime with s.
    let mut k = ((s as f64 * 0.618) as u32) | 1;
    while gcd(u64::from(k), s as u64) != 1 {
        k += 2;
    }
    (0..s as u32)
        .map(|i| FlowInit {
            id: i,
            priority: if hold_priority {
                config.prio_low
            } else if i % 2 == 0 {
                config.prio_high
            } else {
                config.prio_low
            },
            traffic: if hold_traffic {
                config.traffic_low
            } else if (i / 2) % 2 == 0 {
                config.traffic_high
            } else {
                config.traffic_low
            },
            use_rank: (i.wrapping_mul(k)) % s as u32,
        })
        .collect()
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The policy probe as a resumable state machine (see
/// [`driver`]). Each round's full op sequence — clear,
/// install, traffic initialization, use-time pass, measurement pass — is
/// issued up front; only the final `s` probe completions carry
/// measurements, and the round's analysis plus the recursion decision
/// run when the last one arrives.
pub struct PolicyDriver {
    kind: RuleKind,
    cache_size: usize,
    config: PolicyProbeConfig,
    identified: Vec<SortKey>,
    rounds: Vec<PolicyRound>,
    // Current round.
    plan: Vec<FlowInit>,
    /// Ids probed by the measurement pass, in probe order.
    measure_ids: Vec<u32>,
    /// Completions to consume before the measurement pass starts.
    skip: usize,
    measured: Vec<(u32, f64)>,
    finished: bool,
}

impl PolicyDriver {
    /// A driver inferring the policy of a switch whose fast layer holds
    /// `cache_size` rules (from Algorithm 1).
    #[must_use]
    pub fn new(kind: RuleKind, cache_size: usize, config: PolicyProbeConfig) -> PolicyDriver {
        PolicyDriver {
            kind,
            cache_size,
            config,
            identified: Vec::new(),
            rounds: Vec::new(),
            plan: Vec::new(),
            measure_ids: Vec::new(),
            skip: 0,
            measured: Vec::new(),
            finished: false,
        }
    }

    fn hold_priority(&self) -> bool {
        self.identified
            .iter()
            .any(|k| k.attribute == Attribute::Priority)
    }

    fn hold_traffic(&self) -> bool {
        self.identified
            .iter()
            .any(|k| k.attribute == Attribute::TrafficCount)
    }

    /// Builds one round's complete op sequence and resets the round
    /// bookkeeping.
    fn begin_round(&mut self) -> Vec<ControlOp> {
        let s = 2 * self.cache_size;
        self.plan = initialization_plan(s, self.hold_priority(), self.hold_traffic(), &self.config);

        // Fresh table.
        let mut ops = vec![ControlOp::FlowMod(FlowMod::delete_all())];

        // Install in id order (insertion time = rank i).
        for f in &self.plan {
            ops.push(ControlOp::FlowMod(FlowMod::add(
                self.kind.flow_match(f.id),
                f.priority,
            )));
        }

        // Traffic initialization: bring each flow to traffic-1 packets.
        // The final packet comes from the use-time pass so the last-use
        // order is exactly the use-rank permutation.
        for f in &self.plan {
            for _ in 1..f.traffic {
                ops.push(ControlOp::Probe(self.kind.key(f.id)));
            }
        }

        // Use-time initialization: one packet per flow, in use-rank
        // order.
        let mut by_use: Vec<&FlowInit> = self.plan.iter().collect();
        by_use.sort_by_key(|f| f.use_rank);
        for f in &by_use {
            ops.push(ControlOp::Probe(self.kind.key(f.id)));
        }

        // Measurement: probe most-recently-used first. Each probed
        // flow's new use stamp is *older* than the stamps of flows
        // probed before it, so the relative use order is preserved
        // (paper §5.3).
        self.measure_ids = by_use.iter().rev().map(|f| f.id).collect();
        for &id in &self.measure_ids {
            ops.push(ControlOp::Probe(self.kind.key(id)));
        }

        self.skip = ops.len() - self.measure_ids.len();
        self.measured.clear();
        ops
    }

    /// Analysis plus the recursion decision, once the round's last
    /// measurement completes.
    fn finish_round(&mut self) -> Step<InferredPolicy> {
        let round = analyze_round(
            &self.plan,
            &self.measured,
            self.hold_priority(),
            self.hold_traffic(),
            &self.config,
        );
        let chosen = round.chosen;
        self.rounds.push(round);
        let stop = match chosen {
            None => true,
            Some(key) => {
                // An attribute can only appear once in a LEX order.
                if self.identified.iter().any(|k| k.attribute == key.attribute) {
                    true
                } else {
                    let attr = key.attribute;
                    self.identified.push(key);
                    // A serial attribute already induces a total order;
                    // tie-breaks below a traffic-count key are not
                    // black-box observable (every probe packet
                    // increments the held attribute).
                    attr.is_serial() || attr == Attribute::TrafficCount
                }
            }
        };
        if stop || self.identified.len() >= self.config.max_keys {
            self.finished = true;
            Step::Done(InferredPolicy {
                keys: std::mem::take(&mut self.identified),
                rounds: std::mem::take(&mut self.rounds),
            })
        } else {
            Step::Issue(self.begin_round())
        }
    }
}

impl InferenceDriver for PolicyDriver {
    type Outcome = InferredPolicy;

    fn start(&mut self) -> Step<InferredPolicy> {
        if self.identified.len() >= self.config.max_keys {
            self.finished = true;
            return Step::Done(InferredPolicy {
                keys: std::mem::take(&mut self.identified),
                rounds: std::mem::take(&mut self.rounds),
            });
        }
        Step::Issue(self.begin_round())
    }

    fn on_completion(
        &mut self,
        c: &driver::Completion,
    ) -> Result<Step<InferredPolicy>, ProbeError> {
        if self.finished {
            return Err(mismatch(&"no op in flight (driver finished)", c));
        }
        if self.skip > 0 {
            // Initialization traffic: clear, installs, warm-up probes.
            // Only their ordering matters, not their outcomes.
            self.skip -= 1;
            if self.skip == 0 && self.measure_ids.is_empty() {
                // Degenerate round (cache_size == 0): nothing to
                // measure, analyze the empty round immediately.
                return Ok(self.finish_round());
            }
            return Ok(Step::Issue(vec![]));
        }
        let OpOutcome::Probe(_) = c.inner.outcome else {
            return Err(mismatch(&"measurement probe", c));
        };
        let id = self.measure_ids[self.measured.len()];
        self.measured.push((id, c.elapsed_ms()));
        if self.measured.len() == self.measure_ids.len() {
            Ok(self.finish_round())
        } else {
            Ok(Step::Issue(vec![]))
        }
    }
}

/// Runs Algorithm 2: infers the switch's cache policy given the fast
/// layer's size `cache_size` (from Algorithm 1) — the synchronous
/// adapter over [`PolicyDriver`].
///
/// # Errors
/// [`ProbeError::CompletionMismatch`] if the transport violates its
/// completion contract.
pub fn probe_policy(
    engine: &mut ProbingEngine<'_>,
    cache_size: usize,
    config: &PolicyProbeConfig,
) -> Result<InferredPolicy, ProbeError> {
    let dpid = engine.dpid();
    let kind = engine.kind();
    driver::run_driver(
        engine.testbed_mut(),
        dpid,
        PolicyDriver::new(kind, cache_size, *config),
    )
}

/// The pure analysis of one round: classifies cached membership from the
/// measurement RTTs and correlates each candidate attribute's
/// initialized values with membership.
fn analyze_round(
    plan: &[FlowInit],
    rtts: &[(u32, f64)],
    hold_priority: bool,
    hold_traffic: bool,
    config: &PolicyProbeConfig,
) -> PolicyRound {
    let s = plan.len();

    // Classify cached membership from the RTT clusters.
    let values: Vec<f64> = rtts.iter().map(|&(_, r)| r).collect();
    let clustering = cluster_rtts(&values);
    let mut cached = vec![0.0f64; s];
    let mut cached_count = 0;
    for &(id, rtt) in rtts {
        if clustering.k() >= 2 && clustering.within(rtt, 0) {
            cached[id as usize] = 1.0;
            cached_count += 1;
        }
    }
    if clustering.k() < 2 {
        // One cluster: cannot observe membership (cache larger than 2n,
        // or all flows cached). No attribute can be identified.
        return PolicyRound {
            correlations: vec![],
            chosen: None,
            cached_count: if clustering.k() == 1 { s } else { 0 },
        };
    }

    // Correlate each candidate attribute's initialized values with
    // membership.
    let mut correlations = Vec::new();
    let mut best: Option<(Attribute, f64)> = None;
    for attr in Attribute::ALL {
        let skip = match attr {
            Attribute::Priority => hold_priority,
            Attribute::TrafficCount => hold_traffic,
            _ => false,
        };
        if skip {
            continue;
        }
        let xs: Vec<f64> = plan
            .iter()
            .map(|f| match attr {
                Attribute::InsertionTime => f64::from(f.id),
                Attribute::UseTime => f64::from(f.use_rank),
                Attribute::TrafficCount => f64::from(f.traffic),
                Attribute::Priority => f64::from(f.priority),
            })
            .collect();
        if let Some(r) = pearson(&xs, &cached) {
            correlations.push((attr, r));
            if best.is_none_or(|(_, br)| r.abs() > br.abs()) {
                best = Some((attr, r));
            }
        }
    }

    let chosen = best.and_then(|(attr, r)| {
        if r.abs() >= config.min_correlation {
            Some(SortKey {
                attribute: attr,
                direction: if r > 0.0 {
                    Direction::KeepHigh
                } else {
                    Direction::KeepLow
                },
            })
        } else {
            None
        }
    });

    PolicyRound {
        correlations,
        chosen,
        cached_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RuleKind;
    use ofwire::types::Dpid;
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    fn infer_for(policy: CachePolicy, cache_size: u64) -> InferredPolicy {
        let mut tb = Testbed::new(21);
        let dpid = Dpid(1);
        tb.attach_default(dpid, SwitchProfile::generic_cached(cache_size, policy));
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        probe_policy(&mut eng, cache_size as usize, &PolicyProbeConfig::default())
            .expect("policy probe completes")
    }

    #[test]
    fn initialization_plan_is_pairwise_balanced() {
        let cfg = PolicyProbeConfig::default();
        let plan = initialization_plan(200, false, false, &cfg);
        // Each split is exactly half/half.
        let hi_prio = plan.iter().filter(|f| f.priority == cfg.prio_high).count();
        let hi_traffic = plan
            .iter()
            .filter(|f| f.traffic == cfg.traffic_high)
            .count();
        assert_eq!(hi_prio, 100);
        assert_eq!(hi_traffic, 100);
        // use_rank is a permutation.
        let mut ranks: Vec<u32> = plan.iter().map(|f| f.use_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..200).collect::<Vec<u32>>());
        // Pairwise correlations between the four attribute vectors are
        // small (the "no subset agrees on more than one attribute"
        // condition).
        let attrs: Vec<Vec<f64>> = vec![
            plan.iter().map(|f| f64::from(f.id)).collect(),
            plan.iter().map(|f| f64::from(f.use_rank)).collect(),
            plan.iter().map(|f| f64::from(f.traffic)).collect(),
            plan.iter().map(|f| f64::from(f.priority)).collect(),
        ];
        for i in 0..attrs.len() {
            for j in i + 1..attrs.len() {
                let r = pearson(&attrs[i], &attrs[j]).unwrap().abs();
                assert!(r < 0.2, "attrs {i} vs {j} correlate at {r}");
            }
        }
    }

    #[test]
    fn infers_fifo() {
        let inferred = infer_for(CachePolicy::fifo(), 100);
        assert_eq!(
            inferred.keys.first(),
            Some(&SortKey {
                attribute: Attribute::InsertionTime,
                direction: Direction::KeepLow
            }),
            "rounds: {:?}",
            inferred.rounds
        );
        // Insertion time is serial: exactly one key.
        assert_eq!(inferred.keys.len(), 1);
    }

    #[test]
    fn infers_lru() {
        let inferred = infer_for(CachePolicy::lru(), 100);
        assert_eq!(
            inferred.keys,
            vec![SortKey {
                attribute: Attribute::UseTime,
                direction: Direction::KeepHigh
            }],
            "rounds: {:?}",
            inferred.rounds
        );
    }

    #[test]
    fn infers_lfu() {
        let inferred = infer_for(CachePolicy::lfu(), 100);
        assert_eq!(
            inferred.keys,
            vec![SortKey {
                attribute: Attribute::TrafficCount,
                direction: Direction::KeepHigh
            }],
            "rounds: {:?}",
            inferred.rounds
        );
        // Traffic tie-breaks are not black-box observable (probing
        // perturbs the held attribute), so the probe stops after the
        // traffic key.
        assert_eq!(inferred.keys.len(), 1);
    }

    #[test]
    fn infers_priority_caching() {
        let inferred = infer_for(CachePolicy::priority(), 100);
        assert_eq!(
            inferred.keys.first(),
            Some(&SortKey {
                attribute: Attribute::Priority,
                direction: Direction::KeepHigh
            }),
            "rounds: {:?}",
            inferred.rounds
        );
    }

    #[test]
    fn infers_composite_priority_then_lru() {
        let inferred = infer_for(CachePolicy::priority_then_lru(), 100);
        assert_eq!(
            inferred.keys,
            vec![
                SortKey {
                    attribute: Attribute::Priority,
                    direction: Direction::KeepHigh
                },
                SortKey {
                    attribute: Attribute::UseTime,
                    direction: Direction::KeepHigh
                },
            ],
            "rounds: {:?}",
            inferred.rounds
        );
    }

    #[test]
    fn lfu_then_fifo_matches_lfu_report() {
        // An explicit traffic-then-FIFO LEX policy must produce the same
        // report as plain LFU (whose id tie-break *is* FIFO) — black-box
        // behavioural equivalence.
        let a = infer_for(CachePolicy::lfu_then_fifo(), 80);
        let b = infer_for(CachePolicy::lfu(), 80);
        assert_eq!(a.keys, b.keys, "a: {:?}\nb: {:?}", a.rounds, b.rounds);
    }

    #[test]
    fn undersized_probe_reports_nothing() {
        // If the caller passes a cache_size at least as large as the
        // actual rule population (so everything fits in the fast layer),
        // the probe sees one RTT cluster and identifies nothing.
        let mut tb = Testbed::new(33);
        let dpid = Dpid(1);
        tb.attach_default(
            dpid,
            SwitchProfile::generic_cached(1000, CachePolicy::lru()),
        );
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let inferred = probe_policy(&mut eng, 50, &PolicyProbeConfig::default())
            .expect("policy probe completes");
        assert!(inferred.keys.is_empty(), "rounds: {:?}", inferred.rounds);
    }
}
