//! The Tango Score and Pattern Databases (TangoDB, §4).
//!
//! Every measurement the probing engine produces is deposited here, and
//! every consumer — the network scheduler, placement hints, application
//! API — reads from here. "The measurement results are stored into a
//! central Tango Score Database, to allow sharing of results across
//! components."

use crate::curves::LatencyProfile;
use crate::infer_policy::InferredPolicy;
use crate::infer_size::SizeEstimate;
use crate::pattern::TangoPattern;
use ofwire::types::Dpid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything Tango has learned about one switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SwitchKnowledge {
    /// Profile/vendor label, if known (reporting only).
    pub label: String,
    /// Inferred per-layer sizes, fastest first (Algorithm 1).
    pub size: Option<SizeEstimate>,
    /// Inferred cache policy (Algorithm 2).
    pub policy: Option<InferredPolicy>,
    /// Measured operation-cost profile.
    pub latency: Option<LatencyProfile>,
}

impl SwitchKnowledge {
    /// Per-layer RTT centers in ms (empty if sizes were never probed).
    #[must_use]
    pub fn layer_rtts_ms(&self) -> Vec<f64> {
        self.size
            .as_ref()
            .map(|s| s.clustering.centers.clone())
            .unwrap_or_default()
    }

    /// Estimated fast-layer capacity, if probed.
    #[must_use]
    pub fn fast_layer_size(&self) -> Option<f64> {
        self.size.as_ref().and_then(SizeEstimate::fast_layer_size)
    }

    /// Mean rule-installation cost (ascending adds) in ms, if measured.
    #[must_use]
    pub fn add_ms(&self) -> Option<f64> {
        self.latency.map(|l| l.add_asc_ms)
    }
}

/// The central score + pattern database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TangoDb {
    knowledge: BTreeMap<u64, SwitchKnowledge>,
    patterns: BTreeMap<String, TangoPattern>,
}

impl TangoDb {
    /// An empty database.
    #[must_use]
    pub fn new() -> TangoDb {
        TangoDb::default()
    }

    /// Knowledge record for a switch, creating it on first use.
    pub fn switch_mut(&mut self, dpid: Dpid) -> &mut SwitchKnowledge {
        self.knowledge.entry(dpid.0).or_default()
    }

    /// Read access to a switch's knowledge.
    #[must_use]
    pub fn switch(&self, dpid: Dpid) -> Option<&SwitchKnowledge> {
        self.knowledge.get(&dpid.0)
    }

    /// All switches with recorded knowledge.
    #[must_use]
    pub fn dpids(&self) -> Vec<Dpid> {
        self.knowledge.keys().map(|&d| Dpid(d)).collect()
    }

    /// Registers (or replaces) a pattern by name — "Tango allows new
    /// Tango Patterns to be continuously added to the database".
    pub fn add_pattern(&mut self, pattern: TangoPattern) {
        self.patterns.insert(pattern.name.clone(), pattern);
    }

    /// Fetches a pattern by name.
    #[must_use]
    pub fn pattern(&self, name: &str) -> Option<&TangoPattern> {
        self.patterns.get(name)
    }

    /// Names of all registered patterns.
    #[must_use]
    pub fn pattern_names(&self) -> Vec<&str> {
        self.patterns.keys().map(String::as_str).collect()
    }

    /// The latency profile for a switch, or a conservative default for
    /// never-probed switches (slow, priority-sensitive — safe for
    /// scheduling decisions).
    #[must_use]
    pub fn latency_or_default(&self, dpid: Dpid) -> LatencyProfile {
        self.switch(dpid)
            .and_then(|k| k.latency)
            .unwrap_or(LatencyProfile {
                calibrated_n: 0,
                add_asc_ms: 2.0,
                add_desc_ms: 20.0,
                add_same_ms: 2.0,
                add_rand_ms: 10.0,
                mod_ms: 1.0,
                del_ms: 2.0,
                shift_us: 10.0,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PriorityOrder, RuleKind};

    #[test]
    fn knowledge_lifecycle() {
        let mut db = TangoDb::new();
        assert!(db.switch(Dpid(1)).is_none());
        db.switch_mut(Dpid(1)).label = "Switch #1".into();
        assert_eq!(db.switch(Dpid(1)).unwrap().label, "Switch #1");
        assert_eq!(db.dpids(), vec![Dpid(1)]);
        assert!(db.switch(Dpid(1)).unwrap().fast_layer_size().is_none());
        assert!(db.switch(Dpid(1)).unwrap().add_ms().is_none());
    }

    #[test]
    fn pattern_registry() {
        let mut db = TangoDb::new();
        let p = TangoPattern::priority_insertion(10, PriorityOrder::Ascending, RuleKind::L3);
        let name = p.name.clone();
        db.add_pattern(p);
        assert!(db.pattern(&name).is_some());
        assert_eq!(db.pattern_names(), vec![name.as_str()]);
        assert!(db.pattern("nope").is_none());
    }

    #[test]
    fn default_latency_is_conservative() {
        let db = TangoDb::new();
        let lp = db.latency_or_default(Dpid(99));
        assert!(lp.priority_sensitive());
        assert!(lp.add_desc_ms > lp.add_asc_ms);
    }
}
