//! The Tango Score and Pattern Databases (TangoDB, §4).
//!
//! Every measurement the probing engine produces is deposited here, and
//! every consumer — the network scheduler, placement hints, application
//! API — reads from here. "The measurement results are stored into a
//! central Tango Score Database, to allow sharing of results across
//! components."

use crate::curves::LatencyProfile;
use crate::fleet::{FleetJob, FleetOutcome};
use crate::infer_geometry::GeometryEstimate;
use crate::infer_policy::InferredPolicy;
use crate::infer_size::SizeEstimate;
use crate::json::Value;
use crate::online::Headroom;
use crate::pattern::TangoPattern;
use ofwire::types::Dpid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Everything Tango has learned about one switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SwitchKnowledge {
    /// Profile/vendor label, if known (reporting only).
    pub label: String,
    /// Inferred per-layer sizes, fastest first (Algorithm 1).
    pub size: Option<SizeEstimate>,
    /// Inferred cache policy (Algorithm 2).
    pub policy: Option<InferredPolicy>,
    /// Measured operation-cost profile.
    pub latency: Option<LatencyProfile>,
    /// Inferred TCAM geometry.
    pub geometry: Option<GeometryEstimate>,
    /// Last online headroom measurement.
    pub headroom: Option<Headroom>,
}

impl SwitchKnowledge {
    /// Per-layer RTT centers in ms (empty if sizes were never probed).
    #[must_use]
    pub fn layer_rtts_ms(&self) -> Vec<f64> {
        self.size
            .as_ref()
            .map(|s| s.clustering.centers.clone())
            .unwrap_or_default()
    }

    /// Estimated fast-layer capacity, if probed.
    #[must_use]
    pub fn fast_layer_size(&self) -> Option<f64> {
        self.size.as_ref().and_then(SizeEstimate::fast_layer_size)
    }

    /// Mean rule-installation cost (ascending adds) in ms, if measured.
    #[must_use]
    pub fn add_ms(&self) -> Option<f64> {
        self.latency.map(|l| l.add_asc_ms)
    }
}

/// The central score + pattern database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TangoDb {
    knowledge: BTreeMap<u64, SwitchKnowledge>,
    patterns: BTreeMap<String, TangoPattern>,
}

impl TangoDb {
    /// An empty database.
    #[must_use]
    pub fn new() -> TangoDb {
        TangoDb::default()
    }

    /// Knowledge record for a switch, creating it on first use.
    pub fn switch_mut(&mut self, dpid: Dpid) -> &mut SwitchKnowledge {
        self.knowledge.entry(dpid.0).or_default()
    }

    /// Read access to a switch's knowledge.
    #[must_use]
    pub fn switch(&self, dpid: Dpid) -> Option<&SwitchKnowledge> {
        self.knowledge.get(&dpid.0)
    }

    /// All switches with recorded knowledge.
    #[must_use]
    pub fn dpids(&self) -> Vec<Dpid> {
        self.knowledge.keys().map(|&d| Dpid(d)).collect()
    }

    /// Folds a batch of fleet-inference outcomes into the database —
    /// the network-wide ingest path for
    /// [`fleet::run_inference`](crate::fleet::run_inference). Jobs and
    /// outcomes are matched by position (outcomes come back in job
    /// order); pattern outcomes carry no switch knowledge and are
    /// skipped.
    pub fn ingest_fleet(&mut self, jobs: &[FleetJob], outcomes: &[FleetOutcome]) {
        for (job, outcome) in jobs.iter().zip(outcomes) {
            let k = self.switch_mut(job.dpid);
            match outcome {
                FleetOutcome::Size(e) => k.size = Some(e.clone()),
                FleetOutcome::Policy(p) => k.policy = Some(p.clone()),
                FleetOutcome::Geometry(g) => k.geometry = Some(g.clone()),
                FleetOutcome::Headroom(h) => k.headroom = Some(*h),
                FleetOutcome::Pattern(_) => {}
            }
        }
    }

    /// Registers (or replaces) a pattern by name — "Tango allows new
    /// Tango Patterns to be continuously added to the database".
    pub fn add_pattern(&mut self, pattern: TangoPattern) {
        self.patterns.insert(pattern.name.clone(), pattern);
    }

    /// Fetches a pattern by name.
    #[must_use]
    pub fn pattern(&self, name: &str) -> Option<&TangoPattern> {
        self.patterns.get(name)
    }

    /// Names of all registered patterns.
    #[must_use]
    pub fn pattern_names(&self) -> Vec<&str> {
        self.patterns.keys().map(String::as_str).collect()
    }

    /// The latency profile for a switch, or a conservative default for
    /// never-probed switches (slow, priority-sensitive — safe for
    /// scheduling decisions).
    #[must_use]
    pub fn latency_or_default(&self, dpid: Dpid) -> LatencyProfile {
        self.switch(dpid)
            .and_then(|k| k.latency)
            .unwrap_or(LatencyProfile {
                calibrated_n: 0,
                add_asc_ms: 2.0,
                add_desc_ms: 20.0,
                add_same_ms: 2.0,
                add_rand_ms: 10.0,
                mod_ms: 1.0,
                del_ms: 2.0,
                shift_us: 10.0,
            })
    }

    /// Serializes the whole database (knowledge and patterns) to the
    /// score-database JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        codec::db_to_value(self).render()
    }

    /// Parses a database from its JSON form.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidData`] when the text is not valid JSON or
    /// not a score database.
    pub fn from_json(text: &str) -> io::Result<TangoDb> {
        let v = Value::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        codec::db_from_value(&v)
    }

    /// Writes the database to `path` as JSON, creating parent
    /// directories as needed — how fleet inference results land under
    /// `results/` for the scheduler to reload.
    ///
    /// # Errors
    /// Any I/O failure creating or writing the file.
    pub fn save_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads a database previously written by
    /// [`save_json`](TangoDb::save_json).
    ///
    /// # Errors
    /// Any I/O failure, or [`io::ErrorKind::InvalidData`] on malformed
    /// content.
    pub fn load_json(path: impl AsRef<Path>) -> io::Result<TangoDb> {
        TangoDb::from_json(&std::fs::read_to_string(path)?)
    }
}

/// Hand-rolled (de)serialization of the database to [`Value`] trees.
/// The workspace `serde` is a derive-only shim, so the derives on these
/// types provide no runtime — this module is the runtime.
mod codec {
    use super::{LatencyProfile, SwitchKnowledge, TangoDb, Value};
    use crate::cluster::Clustering;
    use crate::infer_geometry::{GeometryClass, GeometryEstimate};
    use crate::infer_policy::{InferredPolicy, PolicyRound};
    use crate::infer_size::{LevelEstimate, SizeEstimate};
    use crate::online::Headroom;
    use crate::pattern::{PatternStep, RuleKind, TangoPattern};
    use std::io;
    use switchsim::cache::{Attribute, Direction, SortKey};

    fn bad(msg: impl Into<String>) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, msg.into())
    }

    fn obj(members: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    fn opt(v: Option<Value>) -> Value {
        v.unwrap_or(Value::Null)
    }

    fn field<'a>(v: &'a Value, key: &str) -> io::Result<&'a Value> {
        v.get(key)
            .ok_or_else(|| bad(format!("missing field `{key}`")))
    }

    fn f64_field(v: &Value, key: &str) -> io::Result<f64> {
        field(v, key)?
            .as_f64()
            .ok_or_else(|| bad(format!("field `{key}` is not a number")))
    }

    /// A number field where `null` means NaN (the writer's encoding of
    /// non-finite values).
    fn f64_or_nan_field(v: &Value, key: &str) -> io::Result<f64> {
        match field(v, key)? {
            Value::Null => Ok(f64::NAN),
            other => other
                .as_f64()
                .ok_or_else(|| bad(format!("field `{key}` is not a number"))),
        }
    }

    fn usize_field(v: &Value, key: &str) -> io::Result<usize> {
        field(v, key)?
            .as_usize()
            .ok_or_else(|| bad(format!("field `{key}` is not an integer")))
    }

    fn bool_field(v: &Value, key: &str) -> io::Result<bool> {
        field(v, key)?
            .as_bool()
            .ok_or_else(|| bad(format!("field `{key}` is not a bool")))
    }

    fn str_field<'a>(v: &'a Value, key: &str) -> io::Result<&'a str> {
        field(v, key)?
            .as_str()
            .ok_or_else(|| bad(format!("field `{key}` is not a string")))
    }

    fn f64_arr(v: &Value, key: &str) -> io::Result<Vec<f64>> {
        field(v, key)?
            .as_arr()
            .ok_or_else(|| bad(format!("field `{key}` is not an array")))?
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| bad("non-numeric array element")))
            .collect()
    }

    fn usize_arr(v: &Value, key: &str) -> io::Result<Vec<usize>> {
        field(v, key)?
            .as_arr()
            .ok_or_else(|| bad(format!("field `{key}` is not an array")))?
            .iter()
            .map(|x| x.as_usize().ok_or_else(|| bad("non-integer array element")))
            .collect()
    }

    fn option_of<T>(
        v: &Value,
        key: &str,
        read: impl FnOnce(&Value) -> io::Result<T>,
    ) -> io::Result<Option<T>> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(inner) => read(inner).map(Some),
        }
    }

    fn kind_to_str(kind: RuleKind) -> &'static str {
        match kind {
            RuleKind::L2 => "l2",
            RuleKind::L3 => "l3",
            RuleKind::L2L3 => "l2l3",
        }
    }

    fn kind_from_str(s: &str) -> io::Result<RuleKind> {
        match s {
            "l2" => Ok(RuleKind::L2),
            "l3" => Ok(RuleKind::L3),
            "l2l3" => Ok(RuleKind::L2L3),
            other => Err(bad(format!("unknown rule kind `{other}`"))),
        }
    }

    fn attribute_from_str(s: &str) -> io::Result<Attribute> {
        match s {
            "insertion_time" => Ok(Attribute::InsertionTime),
            "use_time" => Ok(Attribute::UseTime),
            "traffic_count" => Ok(Attribute::TrafficCount),
            "priority" => Ok(Attribute::Priority),
            other => Err(bad(format!("unknown attribute `{other}`"))),
        }
    }

    fn sort_key_to_value(k: &SortKey) -> Value {
        obj(vec![
            ("attribute", Value::Str(k.attribute.to_string())),
            (
                "direction",
                Value::Str(
                    match k.direction {
                        Direction::KeepHigh => "keep_high",
                        Direction::KeepLow => "keep_low",
                    }
                    .to_owned(),
                ),
            ),
        ])
    }

    fn sort_key_from_value(v: &Value) -> io::Result<SortKey> {
        let attribute = attribute_from_str(str_field(v, "attribute")?)?;
        let direction = match str_field(v, "direction")? {
            "keep_high" => Direction::KeepHigh,
            "keep_low" => Direction::KeepLow,
            other => return Err(bad(format!("unknown direction `{other}`"))),
        };
        Ok(SortKey {
            attribute,
            direction,
        })
    }

    fn size_to_value(e: &SizeEstimate) -> Value {
        let levels = e
            .levels
            .iter()
            .map(|l| {
                obj(vec![
                    ("rtt_ms", Value::num(l.rtt_ms)),
                    ("estimated_size", Value::num(l.estimated_size)),
                    ("swept_count", Value::Num(l.swept_count as f64)),
                    ("saturated", Value::Bool(l.saturated)),
                ])
            })
            .collect();
        obj(vec![
            ("m", Value::Num(e.m as f64)),
            ("hit_rejection", Value::Bool(e.hit_rejection)),
            ("levels", Value::Arr(levels)),
            (
                "clustering",
                obj(vec![
                    (
                        "centers",
                        Value::Arr(
                            e.clustering
                                .centers
                                .iter()
                                .map(|&x| Value::num(x))
                                .collect(),
                        ),
                    ),
                    (
                        "boundaries",
                        Value::Arr(
                            e.clustering
                                .boundaries
                                .iter()
                                .map(|&x| Value::num(x))
                                .collect(),
                        ),
                    ),
                    (
                        "sizes",
                        Value::Arr(
                            e.clustering
                                .sizes
                                .iter()
                                .map(|&x| Value::Num(x as f64))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("rules_attempted", Value::Num(e.rules_attempted as f64)),
            ("packets_sent", Value::Num(e.packets_sent as f64)),
            ("batches", Value::Num(e.batches as f64)),
        ])
    }

    fn size_from_value(v: &Value) -> io::Result<SizeEstimate> {
        let levels = field(v, "levels")?
            .as_arr()
            .ok_or_else(|| bad("`levels` is not an array"))?
            .iter()
            .map(|l| {
                Ok(LevelEstimate {
                    rtt_ms: f64_field(l, "rtt_ms")?,
                    estimated_size: f64_field(l, "estimated_size")?,
                    swept_count: usize_field(l, "swept_count")?,
                    saturated: bool_field(l, "saturated")?,
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        let c = field(v, "clustering")?;
        Ok(SizeEstimate {
            m: usize_field(v, "m")?,
            hit_rejection: bool_field(v, "hit_rejection")?,
            levels,
            clustering: Clustering {
                centers: f64_arr(c, "centers")?,
                boundaries: f64_arr(c, "boundaries")?,
                sizes: usize_arr(c, "sizes")?,
            },
            rules_attempted: usize_field(v, "rules_attempted")?,
            packets_sent: usize_field(v, "packets_sent")?,
            batches: usize_field(v, "batches")?,
        })
    }

    fn policy_to_value(p: &InferredPolicy) -> Value {
        let rounds = p
            .rounds
            .iter()
            .map(|r| {
                let correlations = r
                    .correlations
                    .iter()
                    .map(|(a, x)| {
                        obj(vec![
                            ("attribute", Value::Str(a.to_string())),
                            ("r", Value::num(*x)),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("correlations", Value::Arr(correlations)),
                    ("chosen", opt(r.chosen.as_ref().map(sort_key_to_value))),
                    ("cached_count", Value::Num(r.cached_count as f64)),
                ])
            })
            .collect();
        obj(vec![
            (
                "keys",
                Value::Arr(p.keys.iter().map(sort_key_to_value).collect()),
            ),
            ("rounds", Value::Arr(rounds)),
        ])
    }

    fn policy_from_value(v: &Value) -> io::Result<InferredPolicy> {
        let keys = field(v, "keys")?
            .as_arr()
            .ok_or_else(|| bad("`keys` is not an array"))?
            .iter()
            .map(sort_key_from_value)
            .collect::<io::Result<Vec<_>>>()?;
        let rounds = field(v, "rounds")?
            .as_arr()
            .ok_or_else(|| bad("`rounds` is not an array"))?
            .iter()
            .map(|r| {
                let correlations = field(r, "correlations")?
                    .as_arr()
                    .ok_or_else(|| bad("`correlations` is not an array"))?
                    .iter()
                    .map(|c| {
                        Ok((
                            attribute_from_str(str_field(c, "attribute")?)?,
                            f64_or_nan_field(c, "r")?,
                        ))
                    })
                    .collect::<io::Result<Vec<_>>>()?;
                Ok(PolicyRound {
                    correlations,
                    chosen: option_of(r, "chosen", sort_key_from_value)?,
                    cached_count: usize_field(r, "cached_count")?,
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(InferredPolicy { keys, rounds })
    }

    fn latency_to_value(l: &LatencyProfile) -> Value {
        obj(vec![
            ("calibrated_n", Value::Num(l.calibrated_n as f64)),
            ("add_asc_ms", Value::num(l.add_asc_ms)),
            ("add_desc_ms", Value::num(l.add_desc_ms)),
            ("add_same_ms", Value::num(l.add_same_ms)),
            ("add_rand_ms", Value::num(l.add_rand_ms)),
            ("mod_ms", Value::num(l.mod_ms)),
            ("del_ms", Value::num(l.del_ms)),
            ("shift_us", Value::num(l.shift_us)),
        ])
    }

    fn latency_from_value(v: &Value) -> io::Result<LatencyProfile> {
        Ok(LatencyProfile {
            calibrated_n: usize_field(v, "calibrated_n")?,
            add_asc_ms: f64_field(v, "add_asc_ms")?,
            add_desc_ms: f64_field(v, "add_desc_ms")?,
            add_same_ms: f64_field(v, "add_same_ms")?,
            add_rand_ms: f64_field(v, "add_rand_ms")?,
            mod_ms: f64_field(v, "mod_ms")?,
            del_ms: f64_field(v, "del_ms")?,
            shift_us: f64_field(v, "shift_us")?,
        })
    }

    fn geometry_to_value(g: &GeometryEstimate) -> Value {
        let class = match &g.class {
            GeometryClass::Unbounded => obj(vec![("kind", Value::Str("unbounded".into()))]),
            GeometryClass::FixedWidth { entries } => obj(vec![
                ("kind", Value::Str("fixed_width".into())),
                ("entries", Value::num(*entries)),
            ]),
            GeometryClass::WidthSensitive { narrow, wide } => obj(vec![
                ("kind", Value::Str("width_sensitive".into())),
                ("narrow", Value::num(*narrow)),
                ("wide", Value::num(*wide)),
            ]),
        };
        obj(vec![
            ("l2_only", opt(g.l2_only.map(Value::num))),
            ("l3_only", opt(g.l3_only.map(Value::num))),
            ("l2l3", opt(g.l2l3.map(Value::num))),
            ("class", class),
        ])
    }

    fn geometry_from_value(v: &Value) -> io::Result<GeometryEstimate> {
        let cv = field(v, "class")?;
        let class = match str_field(cv, "kind")? {
            "unbounded" => GeometryClass::Unbounded,
            "fixed_width" => GeometryClass::FixedWidth {
                entries: f64_or_nan_field(cv, "entries")?,
            },
            "width_sensitive" => GeometryClass::WidthSensitive {
                narrow: f64_or_nan_field(cv, "narrow")?,
                wide: f64_or_nan_field(cv, "wide")?,
            },
            other => return Err(bad(format!("unknown geometry class `{other}`"))),
        };
        Ok(GeometryEstimate {
            l2_only: option_of(v, "l2_only", |x| {
                x.as_f64().ok_or_else(|| bad("`l2_only` is not a number"))
            })?,
            l3_only: option_of(v, "l3_only", |x| {
                x.as_f64().ok_or_else(|| bad("`l3_only` is not a number"))
            })?,
            l2l3: option_of(v, "l2l3", |x| {
                x.as_f64().ok_or_else(|| bad("`l2l3` is not a number"))
            })?,
            class,
        })
    }

    fn headroom_to_value(h: &Headroom) -> Value {
        obj(vec![
            ("accepted", Value::Num(h.accepted as f64)),
            ("hit_rejection", Value::Bool(h.hit_rejection)),
            ("cleaned", Value::Num(h.cleaned as f64)),
        ])
    }

    fn headroom_from_value(v: &Value) -> io::Result<Headroom> {
        Ok(Headroom {
            accepted: usize_field(v, "accepted")?,
            hit_rejection: bool_field(v, "hit_rejection")?,
            cleaned: usize_field(v, "cleaned")?,
        })
    }

    fn pattern_to_value(p: &TangoPattern) -> Value {
        let steps = p
            .steps
            .iter()
            .map(|step| match *step {
                PatternStep::Add { id, priority } => obj(vec![
                    ("op", Value::Str("add".into())),
                    ("id", Value::Num(f64::from(id))),
                    ("priority", Value::Num(f64::from(priority))),
                ]),
                PatternStep::Modify {
                    id,
                    priority,
                    out_port,
                } => obj(vec![
                    ("op", Value::Str("modify".into())),
                    ("id", Value::Num(f64::from(id))),
                    ("priority", Value::Num(f64::from(priority))),
                    ("out_port", Value::Num(f64::from(out_port))),
                ]),
                PatternStep::Delete { id, priority } => obj(vec![
                    ("op", Value::Str("delete".into())),
                    ("id", Value::Num(f64::from(id))),
                    ("priority", Value::Num(f64::from(priority))),
                ]),
                PatternStep::Probe { id } => obj(vec![
                    ("op", Value::Str("probe".into())),
                    ("id", Value::Num(f64::from(id))),
                ]),
                PatternStep::Barrier => obj(vec![("op", Value::Str("barrier".into()))]),
            })
            .collect();
        obj(vec![
            ("name", Value::Str(p.name.clone())),
            ("kind", Value::Str(kind_to_str(p.kind).to_owned())),
            ("steps", Value::Arr(steps)),
        ])
    }

    #[allow(clippy::cast_possible_truncation)]
    fn pattern_from_value(v: &Value) -> io::Result<TangoPattern> {
        let u32_field = |v: &Value, key: &str| -> io::Result<u32> {
            usize_field(v, key)?
                .try_into()
                .map_err(|_| bad(format!("field `{key}` out of range")))
        };
        let u16_field = |v: &Value, key: &str| -> io::Result<u16> {
            usize_field(v, key)?
                .try_into()
                .map_err(|_| bad(format!("field `{key}` out of range")))
        };
        let steps = field(v, "steps")?
            .as_arr()
            .ok_or_else(|| bad("`steps` is not an array"))?
            .iter()
            .map(|step| {
                Ok(match str_field(step, "op")? {
                    "add" => PatternStep::Add {
                        id: u32_field(step, "id")?,
                        priority: u16_field(step, "priority")?,
                    },
                    "modify" => PatternStep::Modify {
                        id: u32_field(step, "id")?,
                        priority: u16_field(step, "priority")?,
                        out_port: u16_field(step, "out_port")?,
                    },
                    "delete" => PatternStep::Delete {
                        id: u32_field(step, "id")?,
                        priority: u16_field(step, "priority")?,
                    },
                    "probe" => PatternStep::Probe {
                        id: u32_field(step, "id")?,
                    },
                    "barrier" => PatternStep::Barrier,
                    other => return Err(bad(format!("unknown pattern op `{other}`"))),
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TangoPattern {
            name: str_field(v, "name")?.to_owned(),
            kind: kind_from_str(str_field(v, "kind")?)?,
            steps,
        })
    }

    fn knowledge_to_value(k: &SwitchKnowledge) -> Value {
        obj(vec![
            ("label", Value::Str(k.label.clone())),
            ("size", opt(k.size.as_ref().map(size_to_value))),
            ("policy", opt(k.policy.as_ref().map(policy_to_value))),
            ("latency", opt(k.latency.as_ref().map(latency_to_value))),
            ("geometry", opt(k.geometry.as_ref().map(geometry_to_value))),
            ("headroom", opt(k.headroom.as_ref().map(headroom_to_value))),
        ])
    }

    fn knowledge_from_value(v: &Value) -> io::Result<SwitchKnowledge> {
        Ok(SwitchKnowledge {
            label: str_field(v, "label")?.to_owned(),
            size: option_of(v, "size", size_from_value)?,
            policy: option_of(v, "policy", policy_from_value)?,
            latency: option_of(v, "latency", latency_from_value)?,
            geometry: option_of(v, "geometry", geometry_from_value)?,
            headroom: option_of(v, "headroom", headroom_from_value)?,
        })
    }

    pub(super) fn db_to_value(db: &TangoDb) -> Value {
        let knowledge = db
            .knowledge
            .iter()
            .map(|(dpid, k)| (dpid.to_string(), knowledge_to_value(k)))
            .collect();
        let patterns = db
            .patterns
            .iter()
            .map(|(name, p)| (name.clone(), pattern_to_value(p)))
            .collect();
        Value::Obj(vec![
            ("knowledge".to_owned(), Value::Obj(knowledge)),
            ("patterns".to_owned(), Value::Obj(patterns)),
        ])
    }

    pub(super) fn db_from_value(v: &Value) -> io::Result<TangoDb> {
        let mut db = TangoDb::new();
        for (dpid, kv) in field(v, "knowledge")?
            .as_obj()
            .ok_or_else(|| bad("`knowledge` is not an object"))?
        {
            let dpid: u64 = dpid
                .parse()
                .map_err(|_| bad(format!("non-numeric dpid key `{dpid}`")))?;
            db.knowledge.insert(dpid, knowledge_from_value(kv)?);
        }
        for (name, pv) in field(v, "patterns")?
            .as_obj()
            .ok_or_else(|| bad("`patterns` is not an object"))?
        {
            let pattern = pattern_from_value(pv)?;
            if pattern.name != *name {
                return Err(bad(format!(
                    "pattern key `{name}` disagrees with pattern name `{}`",
                    pattern.name
                )));
            }
            db.patterns.insert(name.clone(), pattern);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PriorityOrder, RuleKind};

    #[test]
    fn knowledge_lifecycle() {
        let mut db = TangoDb::new();
        assert!(db.switch(Dpid(1)).is_none());
        db.switch_mut(Dpid(1)).label = "Switch #1".into();
        assert_eq!(db.switch(Dpid(1)).unwrap().label, "Switch #1");
        assert_eq!(db.dpids(), vec![Dpid(1)]);
        assert!(db.switch(Dpid(1)).unwrap().fast_layer_size().is_none());
        assert!(db.switch(Dpid(1)).unwrap().add_ms().is_none());
    }

    #[test]
    fn pattern_registry() {
        let mut db = TangoDb::new();
        let p = TangoPattern::priority_insertion(10, PriorityOrder::Ascending, RuleKind::L3);
        let name = p.name.clone();
        db.add_pattern(p);
        assert!(db.pattern(&name).is_some());
        assert_eq!(db.pattern_names(), vec![name.as_str()]);
        assert!(db.pattern("nope").is_none());
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        use crate::cluster::Clustering;
        use crate::infer_geometry::{GeometryClass, GeometryEstimate};
        use crate::infer_policy::{InferredPolicy, PolicyRound};
        use crate::infer_size::{LevelEstimate, SizeEstimate};
        use crate::online::Headroom;
        use switchsim::cache::{Attribute, Direction, SortKey};

        let mut db = TangoDb::new();
        let k = db.switch_mut(Dpid(3));
        k.label = "Switch \"#3\"".into();
        k.size = Some(SizeEstimate {
            m: 1534,
            hit_rejection: true,
            levels: vec![
                LevelEstimate {
                    rtt_ms: 1.25,
                    estimated_size: 767.0,
                    swept_count: 760,
                    saturated: false,
                },
                LevelEstimate {
                    rtt_ms: 11.5,
                    estimated_size: 767.0,
                    swept_count: 774,
                    saturated: true,
                },
            ],
            clustering: Clustering {
                centers: vec![1.25, 11.5],
                boundaries: vec![6.375],
                sizes: vec![760, 774],
            },
            rules_attempted: 2048,
            packets_sent: 3000,
            batches: 11,
        });
        k.policy = Some(InferredPolicy {
            keys: vec![SortKey {
                attribute: Attribute::InsertionTime,
                direction: Direction::KeepLow,
            }],
            rounds: vec![PolicyRound {
                correlations: vec![
                    (Attribute::InsertionTime, -0.92),
                    (Attribute::Priority, 0.03),
                ],
                chosen: Some(SortKey {
                    attribute: Attribute::InsertionTime,
                    direction: Direction::KeepLow,
                }),
                cached_count: 383,
            }],
        });
        k.latency = Some(TangoDb::new().latency_or_default(Dpid(3)));
        k.geometry = Some(GeometryEstimate {
            l2_only: Some(767.0),
            l3_only: Some(767.0),
            l2l3: Some(369.0),
            class: GeometryClass::WidthSensitive {
                narrow: 767.0,
                wide: 369.0,
            },
        });
        k.headroom = Some(Headroom {
            accepted: 567,
            hit_rejection: true,
            cleaned: 567,
        });
        // A second switch with nothing probed yet, and a pattern.
        db.switch_mut(Dpid(9)).label = "fresh".into();
        db.add_pattern(TangoPattern::priority_insertion(
            3,
            PriorityOrder::Descending,
            RuleKind::L2L3,
        ));

        let path = std::env::temp_dir().join("tango_db_roundtrip_test.json");
        db.save_json(&path).expect("save");
        let loaded = TangoDb::load_json(&path).expect("load");
        std::fs::remove_file(&path).ok();

        // Field-for-field equality, via the canonical rendering plus
        // spot checks on the typed view.
        assert_eq!(loaded.to_json(), db.to_json());
        let lk = loaded.switch(Dpid(3)).expect("switch survives");
        assert_eq!(lk, db.switch(Dpid(3)).expect("source switch"));
        assert_eq!(lk.fast_layer_size(), Some(767.0));
        assert_eq!(loaded.pattern_names(), db.pattern_names());
        assert_eq!(
            loaded.pattern(db.pattern_names()[0]),
            db.pattern(db.pattern_names()[0])
        );
    }

    #[test]
    fn malformed_json_is_a_typed_io_error() {
        let err = TangoDb::from_json("{\"knowledge\": 5}").expect_err("not a database");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let err = TangoDb::from_json("not json").expect_err("not JSON at all");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn default_latency_is_conservative() {
        let db = TangoDb::new();
        let lp = db.latency_or_default(Dpid(99));
        assert!(lp.priority_sensitive());
        assert!(lp.add_desc_ms > lp.add_asc_ms);
    }
}
