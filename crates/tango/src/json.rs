//! A small self-contained JSON value type with a writer and a
//! recursive-descent parser.
//!
//! The workspace's `serde` is a derive-only shim (no runtime), so the
//! score database serializes itself by hand through this module. Only
//! what [`TangoDb`](crate::db::TangoDb) needs is implemented: the six
//! JSON value kinds, pretty printing, and a strict parser — but nothing
//! here is database-specific, so other persistence can reuse it.
//!
//! Numbers are `f64`. Non-finite values have no JSON representation and
//! are written as `null`; readers that expect a number treat `null` as
//! NaN where the domain allows it (e.g. one-sided geometry estimates).

/// A parsed or buildable JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Insertion order is preserved (and is the order keys
    /// are written back out).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A number, mapping non-finite floats to `null` (JSON has no NaN
    /// or infinity literals).
    #[must_use]
    pub fn num(x: f64) -> Value {
        if x.is_finite() {
            Value::Num(x)
        } else {
            Value::Null
        }
    }

    /// An object member by key (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the on-disk format of the score database.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is the shortest round-trip form, which
                    // is valid JSON (integers print without a dot).
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (one value plus whitespace).
    ///
    /// # Errors
    /// A human-readable description with a byte offset on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// A JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What the parser expected or rejected.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // consume '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(members));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let ch = if (0xd800..0xdc00).contains(&code) {
                                self.expect_literal("\\u")?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex digits in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3.5", "767", "1e-3"] {
            let v = Value::parse(text).expect("scalar parses");
            let back = Value::parse(v.render().trim()).expect("rendered form parses");
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode é 猫 \u{1}";
        let v = Value::Str(s.to_owned());
        let parsed = Value::parse(&v.render()).expect("escaped string parses");
        assert_eq!(parsed.as_str(), Some(s));
        // Explicit escape forms, including a surrogate pair.
        let v = Value::parse(r#""é猛😀\/""#).expect("unicode escapes");
        assert_eq!(v.as_str(), Some("é猛😀/"));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Obj(vec![
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
            (
                "mixed".into(),
                Value::Arr(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::num(2.25),
                    Value::Str("x".into()),
                    Value::Obj(vec![("k".into(), Value::num(1.0))]),
                ]),
            ),
        ]);
        let text = v.render();
        let back = Value::parse(&text).expect("nested document parses");
        assert_eq!(v, back);
        assert_eq!(
            back.get("mixed")
                .and_then(|m| m.as_arr())
                .map(<[Value]>::len),
            Some(5)
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::num(f64::NAN), Value::Null);
        assert_eq!(Value::num(f64::INFINITY), Value::Null);
        assert_eq!(Value::num(1.5), Value::Num(1.5));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{a: 1}",
            "[1] trailing",
        ] {
            assert!(Value::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn integers_print_exactly() {
        assert_eq!(Value::Num(767.0).render().trim(), "767");
        assert_eq!(Value::Num(0.5).render().trim(), "0.5");
    }
}
