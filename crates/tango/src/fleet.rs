//! Fleet-scale inference: full adaptive probing of many switches,
//! interleaved over one control path.
//!
//! [`run_inference`] takes one [`FleetJob`] per switch — size inference,
//! policy inference, geometry, headroom, or a plain pattern — and drives
//! all of them concurrently through [`run_drivers`]. Each switch's
//! driver
//! advances the moment its own completion arrives, so characterizing N
//! switches costs the wall-clock time of the slowest, not the sum, while
//! every per-switch result stays bit-identical to a sequential run (see
//! the [`driver`](crate::driver "the driver module") docs for why).
//!
//! Outcomes come back as [`FleetOutcome`], in job order; feed them to
//! [`TangoDb::ingest_fleet`](crate::db::TangoDb::ingest_fleet) to fold a
//! whole network's worth of knowledge into the database at once.

use crate::driver::{run_drivers, InferenceDriver, ProbeError, Step};
use crate::infer_geometry::{GeometryDriver, GeometryEstimate};
use crate::infer_policy::{InferredPolicy, PolicyDriver, PolicyProbeConfig};
use crate::infer_size::{SizeDriver, SizeEstimate, SizeProbeConfig};
use crate::online::{Headroom, HeadroomDriver};
use crate::pattern::{RuleKind, TangoPattern};
use crate::probe::{PatternDriver, PatternResult};
use ofwire::types::Dpid;
use switchsim::control::ControlPath;

/// What to infer about one switch.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetTask {
    /// Full Algorithm 1 size inference.
    Size(SizeProbeConfig),
    /// Full Algorithm 2 policy inference against a cache of the given
    /// size.
    Policy {
        /// Believed fast-layer capacity (rules) to probe against.
        cache_size: usize,
        /// Probe parameters.
        config: PolicyProbeConfig,
    },
    /// TCAM geometry classification.
    Geometry {
        /// Upper bound on rules inserted per sub-probe.
        cap: usize,
        /// Negative-binomial trials per occupancy level.
        trials: usize,
    },
    /// Online headroom measurement.
    Headroom {
        /// Priority for the probe rules (keep it low).
        priority: u16,
        /// Upper bound on probe rules installed.
        cap: usize,
    },
    /// A compiled pattern program, run verbatim.
    Pattern(TangoPattern),
}

/// One unit of fleet work: a switch, the rule kind to probe with, and
/// the inference task to run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetJob {
    /// The switch to characterize.
    pub dpid: Dpid,
    /// Rule kind the probe rules use (ignored by `Geometry`, which
    /// sweeps kinds itself, and by `Pattern`, which carries its own).
    pub kind: RuleKind,
    /// What to infer.
    pub task: FleetTask,
}

impl FleetJob {
    /// A size-inference job.
    #[must_use]
    pub fn size(dpid: Dpid, kind: RuleKind, config: SizeProbeConfig) -> FleetJob {
        FleetJob {
            dpid,
            kind,
            task: FleetTask::Size(config),
        }
    }

    /// A policy-inference job.
    #[must_use]
    pub fn policy(
        dpid: Dpid,
        kind: RuleKind,
        cache_size: usize,
        config: PolicyProbeConfig,
    ) -> FleetJob {
        FleetJob {
            dpid,
            kind,
            task: FleetTask::Policy { cache_size, config },
        }
    }

    /// A geometry-classification job.
    #[must_use]
    pub fn geometry(dpid: Dpid, cap: usize, trials: usize) -> FleetJob {
        FleetJob {
            dpid,
            kind: RuleKind::L3,
            task: FleetTask::Geometry { cap, trials },
        }
    }

    /// An online headroom job.
    #[must_use]
    pub fn headroom(dpid: Dpid, kind: RuleKind, priority: u16, cap: usize) -> FleetJob {
        FleetJob {
            dpid,
            kind,
            task: FleetTask::Headroom { priority, cap },
        }
    }

    /// A pattern-execution job.
    #[must_use]
    pub fn pattern(dpid: Dpid, pattern: TangoPattern) -> FleetJob {
        FleetJob {
            dpid,
            kind: pattern.kind,
            task: FleetTask::Pattern(pattern),
        }
    }
}

/// The result of one fleet job, in the same position as its job.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetOutcome {
    /// From a [`FleetTask::Size`] job.
    Size(SizeEstimate),
    /// From a [`FleetTask::Policy`] job.
    Policy(InferredPolicy),
    /// From a [`FleetTask::Geometry`] job.
    Geometry(GeometryEstimate),
    /// From a [`FleetTask::Headroom`] job.
    Headroom(Headroom),
    /// From a [`FleetTask::Pattern`] job.
    Pattern(PatternResult),
}

impl FleetOutcome {
    /// The size estimate, if this outcome is one.
    #[must_use]
    pub fn as_size(&self) -> Option<&SizeEstimate> {
        match self {
            FleetOutcome::Size(e) => Some(e),
            _ => None,
        }
    }

    /// The inferred policy, if this outcome is one.
    #[must_use]
    pub fn as_policy(&self) -> Option<&InferredPolicy> {
        match self {
            FleetOutcome::Policy(p) => Some(p),
            _ => None,
        }
    }

    /// The geometry estimate, if this outcome is one.
    #[must_use]
    pub fn as_geometry(&self) -> Option<&GeometryEstimate> {
        match self {
            FleetOutcome::Geometry(g) => Some(g),
            _ => None,
        }
    }

    /// The headroom measurement, if this outcome is one.
    #[must_use]
    pub fn as_headroom(&self) -> Option<&Headroom> {
        match self {
            FleetOutcome::Headroom(h) => Some(h),
            _ => None,
        }
    }

    /// The pattern result, if this outcome is one.
    #[must_use]
    pub fn as_pattern(&self) -> Option<&PatternResult> {
        match self {
            FleetOutcome::Pattern(r) => Some(r),
            _ => None,
        }
    }
}

/// Dispatch wrapper so heterogeneous tasks can share one `run_drivers`
/// call.
enum FleetDriver {
    Size(SizeDriver),
    Policy(PolicyDriver),
    Geometry(GeometryDriver),
    Headroom(HeadroomDriver),
    Pattern(PatternDriver),
}

impl FleetDriver {
    fn for_job(job: &FleetJob) -> FleetDriver {
        match &job.task {
            FleetTask::Size(config) => FleetDriver::Size(SizeDriver::new(job.kind, *config)),
            FleetTask::Policy { cache_size, config } => {
                FleetDriver::Policy(PolicyDriver::new(job.kind, *cache_size, *config))
            }
            FleetTask::Geometry { cap, trials } => {
                FleetDriver::Geometry(GeometryDriver::new(*cap, *trials))
            }
            FleetTask::Headroom { priority, cap } => {
                FleetDriver::Headroom(HeadroomDriver::new(job.kind, *priority, *cap))
            }
            FleetTask::Pattern(pattern) => {
                FleetDriver::Pattern(PatternDriver::for_pattern(pattern))
            }
        }
    }
}

impl InferenceDriver for FleetDriver {
    type Outcome = FleetOutcome;

    fn start(&mut self) -> Step<FleetOutcome> {
        match self {
            FleetDriver::Size(d) => d.start().map(FleetOutcome::Size),
            FleetDriver::Policy(d) => d.start().map(FleetOutcome::Policy),
            FleetDriver::Geometry(d) => d.start().map(FleetOutcome::Geometry),
            FleetDriver::Headroom(d) => d.start().map(FleetOutcome::Headroom),
            FleetDriver::Pattern(d) => d.start().map(FleetOutcome::Pattern),
        }
    }

    fn on_completion(
        &mut self,
        c: &crate::driver::Completion,
    ) -> Result<Step<FleetOutcome>, ProbeError> {
        Ok(match self {
            FleetDriver::Size(d) => d.on_completion(c)?.map(FleetOutcome::Size),
            FleetDriver::Policy(d) => d.on_completion(c)?.map(FleetOutcome::Policy),
            FleetDriver::Geometry(d) => d.on_completion(c)?.map(FleetOutcome::Geometry),
            FleetDriver::Headroom(d) => d.on_completion(c)?.map(FleetOutcome::Headroom),
            FleetDriver::Pattern(d) => d.on_completion(c)?.map(FleetOutcome::Pattern),
        })
    }
}

/// Runs full adaptive inference of many switches concurrently over one
/// control path. Returns one [`FleetOutcome`] per job, in job order.
///
/// Per-switch results are bit-identical to running each job's
/// synchronous entry point sequentially on the same testbed state — the
/// fleet only compresses wall-clock time, never perturbs measurements.
///
/// # Errors
/// [`ProbeError::DuplicateSwitch`] if two jobs name the same switch;
/// otherwise whatever the underlying drivers surface
/// ([`ProbeError::LeakedRules`], [`ProbeError::CompletionMismatch`], …).
pub fn run_inference<C: ControlPath>(
    cp: &mut C,
    jobs: &[FleetJob],
) -> Result<Vec<FleetOutcome>, ProbeError> {
    let drivers: Vec<(Dpid, FleetDriver)> = jobs
        .iter()
        .map(|job| (job.dpid, FleetDriver::for_job(job)))
        .collect();
    // One controller-track span brackets the whole fleet run; the
    // per-switch driver/op spans nest on their own tracks.
    let start = cp.now();
    let span = cp.telemetry_mut().and_then(|t| {
        t.count("fleet/jobs", jobs.len() as u64);
        t.span_begin(simnet::telemetry::TRACK_CONTROLLER, "fleet", start)
    });
    let result = run_drivers(cp, drivers);
    let end = cp.now();
    if let Some(t) = cp.telemetry_mut() {
        match &result {
            Ok(_) => t.span_end(span, end),
            Err(_) => t.span_cancel(span),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PriorityOrder;
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    #[test]
    fn mixed_fleet_finishes_in_job_order() {
        let mut tb = Testbed::new(11);
        tb.attach_default(Dpid(1), SwitchProfile::vendor2());
        tb.attach_default(Dpid(2), SwitchProfile::ovs());
        tb.attach_default(Dpid(3), SwitchProfile::vendor1());
        let jobs = vec![
            FleetJob::size(
                Dpid(1),
                RuleKind::L3,
                SizeProbeConfig {
                    max_flows: 4096,
                    seed: 9,
                    ..SizeProbeConfig::default()
                },
            ),
            FleetJob::headroom(Dpid(2), RuleKind::L3, 1, 128),
            FleetJob::pattern(
                Dpid(3),
                TangoPattern::priority_insertion(20, PriorityOrder::Ascending, RuleKind::L3),
            ),
        ];
        let outcomes = run_inference(&mut tb, &jobs).expect("fleet completes");
        assert_eq!(outcomes.len(), 3);
        let size = outcomes[0].as_size().expect("job 0 is a size job");
        assert!(size.hit_rejection);
        let head = outcomes[1].as_headroom().expect("job 1 is a headroom job");
        assert_eq!(head.accepted, 128);
        assert_eq!(head.cleaned, 128);
        let pat = outcomes[2].as_pattern().expect("job 2 is a pattern job");
        assert_eq!(pat.rejected(), 0);
        assert_eq!(tb.switch(Dpid(3)).rule_count(), 20);
    }

    #[test]
    fn duplicate_dpids_surface_as_typed_error() {
        let mut tb = Testbed::new(11);
        tb.attach_default(Dpid(1), SwitchProfile::ovs());
        let jobs = vec![
            FleetJob::headroom(Dpid(1), RuleKind::L3, 1, 8),
            FleetJob::headroom(Dpid(1), RuleKind::L3, 1, 8),
        ];
        let err = run_inference(&mut tb, &jobs).expect_err("duplicate dpid");
        assert_eq!(err, ProbeError::DuplicateSwitch(Dpid(1)));
    }
}
