//! Statistical primitives for the inference algorithms: Pearson
//! correlation (Algorithm 2's attribute identification) and the
//! negative-binomial maximum-likelihood estimator (Algorithm 1's size
//! estimate).

/// Pearson correlation coefficient between two equal-length samples.
/// Returns `None` when either sample is degenerate (zero variance or
/// fewer than two points) — e.g. an attribute held constant.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Maximum-likelihood estimate of the hit probability `p` from `k`
/// negative-binomial trials, where `runs[i]` is the number of consecutive
/// cache hits before the first miss in trial `i`.
///
/// From the paper (§5.2): `p̂ = ΣX / (k + ΣX)`.
#[must_use]
pub fn nb_hit_probability(runs: &[u64]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    let k = runs.len() as f64;
    let s: f64 = runs.iter().map(|&x| x as f64).sum();
    s / (k + s)
}

/// Mean of a sample (0 for empty input).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Relative error `|estimate - actual| / actual` (infinite if actual is
/// zero and estimate isn't).
#[must_use]
pub fn relative_error(estimate: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - actual).abs() / actual.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // A balanced design: x alternates independently of y.
        let xs = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let ys = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[5.0, 5.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn nb_estimator_recovers_p() {
        // Simulate NB trials with known p, check the MLE comes back close.
        use simnet::rng::DetRng;
        let mut rng = DetRng::new(77);
        for &p in &[0.3, 0.5, 0.8] {
            let runs: Vec<u64> = (0..5000)
                .map(|_| {
                    let mut j = 0;
                    while rng.chance(p) {
                        j += 1;
                    }
                    j
                })
                .collect();
            let p_hat = nb_hit_probability(&runs);
            assert!((p_hat - p).abs() < 0.02, "p={p}, estimated {p_hat}");
        }
    }

    #[test]
    fn nb_edge_cases() {
        assert_eq!(nb_hit_probability(&[]), 0.0);
        assert_eq!(nb_hit_probability(&[0, 0, 0]), 0.0);
        // All long runs → p near 1.
        assert!(nb_hit_probability(&[1000, 1000]) > 0.99);
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(95.0, 100.0), 0.05);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }
}
