//! One-dimensional RTT clustering.
//!
//! Algorithm 1 clusters probe round-trip times "to determine the number
//! of flow table layers — each cluster corresponds to one layer" (§5.2).
//! Path-delay clusters are tight and widely separated (Fig 2/Fig 5), so a
//! gap-based split is the primary method; a k-means variant is provided
//! for the clustering ablation bench.

use serde::{Deserialize, Serialize};

/// A clustering of scalar samples into ordered groups (ascending center).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster centers, ascending.
    pub centers: Vec<f64>,
    /// Decision boundaries between adjacent clusters (`len = k - 1`).
    pub boundaries: Vec<f64>,
    /// Cluster population counts.
    pub sizes: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    #[must_use]
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Index of the cluster a value belongs to.
    #[must_use]
    pub fn classify(&self, v: f64) -> usize {
        for (i, b) in self.boundaries.iter().enumerate() {
            if v < *b {
                return i;
            }
        }
        self.centers.len().saturating_sub(1)
    }

    /// True if `v` falls in cluster `idx`.
    #[must_use]
    pub fn within(&self, v: f64, idx: usize) -> bool {
        self.classify(v) == idx
    }
}

/// Gap-based clustering: sort the samples and split wherever an adjacent
/// gap is at least `gap_factor` times the median gap *and* at least
/// `min_abs_gap`. Robust for the tight, well-separated latency clusters
/// switches produce.
#[must_use]
pub fn cluster_by_gaps(values: &[f64], gap_factor: f64, min_abs_gap: f64) -> Clustering {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if sorted.is_empty() {
        return Clustering {
            centers: vec![],
            boundaries: vec![],
            sizes: vec![],
        };
    }
    if sorted.len() == 1 {
        return Clustering {
            centers: vec![sorted[0]],
            boundaries: vec![],
            sizes: vec![1],
        };
    }
    let mut gaps: Vec<f64> = sorted.windows(2).map(|w| w[1] - w[0]).collect();
    let mut gaps_sorted = gaps.clone();
    gaps_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_gap = gaps_sorted[gaps_sorted.len() / 2];
    let threshold = (median_gap * gap_factor).max(min_abs_gap);

    let mut boundaries = Vec::new();
    let mut groups: Vec<Vec<f64>> = vec![vec![sorted[0]]];
    for (i, gap) in gaps.drain(..).enumerate() {
        if gap > threshold {
            boundaries.push((sorted[i] + sorted[i + 1]) / 2.0);
            groups.push(Vec::new());
        }
        groups.last_mut().expect("non-empty").push(sorted[i + 1]);
    }
    // Merge runt clusters: a handful of tail samples separated by an
    // unlucky gap is jitter, not a flow-table layer. Anything smaller
    // than 2 % of the sample (and at least 3 points) merges into its
    // nearest neighbour.
    let min_size = (sorted.len() / 50).max(3).min(sorted.len());
    while let Some(idx) = groups
        .iter()
        .position(|g| g.len() < min_size)
        .filter(|_| groups.len() > 1)
    {
        let center = |g: &Vec<f64>| g.iter().sum::<f64>() / g.len() as f64;
        let runt_center = center(&groups[idx]);
        let left_dist = if idx > 0 {
            (runt_center - center(&groups[idx - 1])).abs()
        } else {
            f64::INFINITY
        };
        let right_dist = if idx + 1 < groups.len() {
            (center(&groups[idx + 1]) - runt_center).abs()
        } else {
            f64::INFINITY
        };
        let runt = groups.remove(idx);
        if left_dist <= right_dist {
            groups[idx - 1].extend(runt);
            boundaries.remove(idx - 1);
        } else {
            groups[idx].extend(runt);
            boundaries.remove(idx);
        }
    }
    let centers: Vec<f64> = groups
        .iter()
        .map(|g| g.iter().sum::<f64>() / g.len() as f64)
        .collect();
    let sizes = groups.iter().map(Vec::len).collect();
    Clustering {
        centers,
        boundaries,
        sizes,
    }
}

/// Default parameters suited to millisecond-scale switch RTTs: a split
/// requires a gap 8× the median jitter and at least 0.15 ms.
#[must_use]
pub fn cluster_rtts(values_ms: &[f64]) -> Clustering {
    cluster_by_gaps(values_ms, 8.0, 0.15)
}

/// Lloyd's k-means in one dimension with deterministic farthest-point
/// seeding (avoids the local optima quantile seeding falls into when
/// clusters are unevenly sized). Returns the clustering and the
/// within-cluster sum of squares.
#[must_use]
pub fn kmeans_1d(values: &[f64], k: usize) -> (Clustering, f64) {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if sorted.is_empty() || k == 0 {
        return (
            Clustering {
                centers: vec![],
                boundaries: vec![],
                sizes: vec![],
            },
            0.0,
        );
    }
    let k = k.min(sorted.len());
    // Farthest-point seeding: start at the minimum, then repeatedly add
    // the sample farthest from its nearest existing seed.
    let mut centers: Vec<f64> = vec![sorted[0]];
    while centers.len() < k {
        let far = sorted
            .iter()
            .copied()
            .max_by(|a, b| {
                let da = centers
                    .iter()
                    .map(|c| (a - c).abs())
                    .fold(f64::INFINITY, f64::min);
                let db = centers
                    .iter()
                    .map(|c| (b - c).abs())
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty");
        centers.push(far);
    }
    centers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut assign = vec![0usize; sorted.len()];
    for _ in 0..64 {
        let mut changed = false;
        for (i, v) in sorted.iter().enumerate() {
            let best = centers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (*v - **a)
                        .abs()
                        .partial_cmp(&(*v - **b).abs())
                        .expect("finite")
                })
                .map(|(j, _)| j)
                .expect("k >= 1");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        for (j, c) in centers.iter_mut().enumerate() {
            let members: Vec<f64> = sorted
                .iter()
                .zip(&assign)
                .filter(|(_, a)| **a == j)
                .map(|(v, _)| *v)
                .collect();
            if !members.is_empty() {
                *c = members.iter().sum::<f64>() / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }
    let wcss: f64 = sorted
        .iter()
        .zip(&assign)
        .map(|(v, a)| (v - centers[*a]).powi(2))
        .sum();
    // Drop empty clusters, sort ascending, compute boundaries and sizes.
    let mut pairs: Vec<(f64, usize)> = centers
        .iter()
        .enumerate()
        .map(|(j, c)| (*c, assign.iter().filter(|a| **a == j).count()))
        .filter(|(_, n)| *n > 0)
        .collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let centers: Vec<f64> = pairs.iter().map(|(c, _)| *c).collect();
    let sizes: Vec<usize> = pairs.iter().map(|(_, n)| *n).collect();
    let boundaries: Vec<f64> = centers.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    (
        Clustering {
            centers,
            boundaries,
            sizes,
        },
        wcss,
    )
}

/// Elbow-selected k-means: accepts `k` only while the WCSS improvement
/// over `k-1` exceeds 75 %. Splitting a genuine pair of well-separated
/// latency clusters removes ≳95 % of the WCSS, while splitting a single
/// Gaussian cluster in half removes only ~64 % — so 75 % cleanly
/// separates real layers from jitter. The k-means arm of the clustering
/// ablation.
#[must_use]
pub fn kmeans_auto(values: &[f64], max_k: usize) -> Clustering {
    let (mut best, mut prev_wcss) = kmeans_1d(values, 1);
    for k in 2..=max_k {
        let (c, wcss) = kmeans_1d(values, k);
        if prev_wcss <= f64::EPSILON {
            break;
        }
        if (prev_wcss - wcss) / prev_wcss < 0.75 {
            break;
        }
        best = c;
        prev_wcss = wcss;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::rng::DetRng;

    fn mixed_sample(centers: &[f64], per: usize, jitter: f64, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::new(seed);
        let mut out = Vec::new();
        for &c in centers {
            for _ in 0..per {
                out.push(rng.normal(c, jitter).max(0.0));
            }
        }
        out
    }

    #[test]
    fn gap_clustering_finds_three_tiers() {
        // Fig 2(b)-like: 0.665 / 3.7 / 7.5 ms.
        let vals = mixed_sample(&[0.665, 3.7, 7.5], 200, 0.05, 1);
        let c = cluster_rtts(&vals);
        assert_eq!(c.k(), 3, "centers: {:?}", c.centers);
        assert!((c.centers[0] - 0.665).abs() < 0.05);
        assert!((c.centers[1] - 3.7).abs() < 0.1);
        assert!((c.centers[2] - 7.5).abs() < 0.15);
        assert_eq!(c.sizes.iter().sum::<usize>(), 600);
    }

    #[test]
    fn gap_clustering_single_cluster() {
        let vals = mixed_sample(&[0.4], 300, 0.03, 2);
        let c = cluster_rtts(&vals);
        assert_eq!(c.k(), 1);
    }

    #[test]
    fn classify_and_within() {
        let vals = mixed_sample(&[1.0, 10.0], 100, 0.05, 3);
        let c = cluster_rtts(&vals);
        assert_eq!(c.k(), 2);
        assert_eq!(c.classify(0.9), 0);
        assert_eq!(c.classify(9.5), 1);
        assert!(c.within(1.1, 0));
        assert!(!c.within(1.1, 1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let c = cluster_rtts(&[]);
        assert_eq!(c.k(), 0);
        let c = cluster_rtts(&[5.0]);
        assert_eq!(c.k(), 1);
        assert_eq!(c.classify(123.0), 0);
    }

    #[test]
    fn kmeans_matches_gap_method_on_separated_data() {
        let vals = mixed_sample(&[0.5, 4.0, 8.0], 150, 0.05, 4);
        let g = cluster_rtts(&vals);
        let k = kmeans_auto(&vals, 5);
        assert_eq!(g.k(), 3);
        assert_eq!(k.k(), 3);
        for (a, b) in g.centers.iter().zip(&k.centers) {
            assert!((a - b).abs() < 0.1, "gap {a} vs kmeans {b}");
        }
    }

    #[test]
    fn kmeans_exact_k() {
        let vals = mixed_sample(&[1.0, 5.0], 100, 0.05, 5);
        let (c, wcss) = kmeans_1d(&vals, 2);
        assert_eq!(c.k(), 2);
        assert!(wcss < 2.0);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut vals = mixed_sample(&[1.0], 50, 0.02, 6);
        vals.push(f64::NAN);
        vals.push(f64::INFINITY);
        let c = cluster_rtts(&vals);
        assert_eq!(c.k(), 1);
        assert_eq!(c.sizes[0], 50);
    }
}
