//! Application API hints (§1, §4).
//!
//! Applications tell Tango what a flow needs — e.g. "low-bandwidth but
//! latency-critical setup" — and Tango combines the hint with the score
//! database to pick where rules should go. The intro's motivating
//! example: "when Tango needs to install a low-bandwidth flow where
//! start up latency is more important, Tango will put the flow at the
//! software switch, instead of the hardware switch" (software switches
//! install rules far faster; hardware switches forward far faster).

use crate::db::TangoDb;
use ofwire::types::Dpid;
use serde::{Deserialize, Serialize};

/// What the application cares about for a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlowGoal {
    /// Rule must be usable as soon as possible (e.g. connection setup
    /// for a short, low-bandwidth flow).
    FastSetup,
    /// Packets must be forwarded at line rate (long, high-bandwidth
    /// flow); setup latency is secondary.
    FastForwarding,
}

/// An application's per-flow hint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppHint {
    /// The optimization goal.
    pub goal: FlowGoal,
    /// Optional deadline for rule installation, in milliseconds
    /// (`install_by` of the switch-request format, §6).
    pub install_by_ms: Option<f64>,
}

impl AppHint {
    /// Hint for a latency-sensitive, low-bandwidth flow.
    #[must_use]
    pub fn fast_setup() -> AppHint {
        AppHint {
            goal: FlowGoal::FastSetup,
            install_by_ms: None,
        }
    }

    /// Hint for a throughput-sensitive flow.
    #[must_use]
    pub fn fast_forwarding() -> AppHint {
        AppHint {
            goal: FlowGoal::FastForwarding,
            install_by_ms: None,
        }
    }
}

/// Scores a candidate switch for a hint; lower is better.
fn placement_cost(db: &TangoDb, dpid: Dpid, hint: &AppHint) -> f64 {
    let knowledge = db.switch(dpid);
    let add_ms = db.latency_or_default(dpid).add_asc_ms;
    let fwd_ms = knowledge
        .map(|k| k.layer_rtts_ms().first().copied().unwrap_or(5.0))
        .unwrap_or(5.0);
    match hint.goal {
        FlowGoal::FastSetup => add_ms,
        FlowGoal::FastForwarding => fwd_ms,
    }
}

/// Picks the best switch among `candidates` for the hinted flow.
/// Returns `None` for an empty candidate list.
#[must_use]
pub fn advise_placement(db: &TangoDb, candidates: &[Dpid], hint: &AppHint) -> Option<Dpid> {
    candidates.iter().copied().min_by(|a, b| {
        placement_cost(db, *a, hint)
            .partial_cmp(&placement_cost(db, *b, hint))
            .expect("finite costs")
    })
}

/// Checks whether a switch can meet an installation deadline for a batch
/// of `adds` rules (uses the measured latency curve).
#[must_use]
pub fn can_meet_deadline(db: &TangoDb, dpid: Dpid, adds: usize, deadline_ms: f64) -> bool {
    db.latency_or_default(dpid).predict_batch_ms(adds, 0, 0) <= deadline_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::curves::LatencyProfile;
    use crate::infer_size::{LevelEstimate, SizeEstimate};

    /// Builds a db with a "hardware" switch (slow installs, fast
    /// forwarding) and a "software" switch (fast installs, slow
    /// forwarding) — the intro's scenario.
    fn hw_sw_db() -> TangoDb {
        let mut db = TangoDb::new();
        let hw = db.switch_mut(Dpid(1));
        hw.label = "hardware".into();
        hw.latency = Some(LatencyProfile {
            calibrated_n: 100,
            add_asc_ms: 2.0,
            add_desc_ms: 30.0,
            add_same_ms: 2.0,
            add_rand_ms: 12.0,
            mod_ms: 6.0,
            del_ms: 1.5,
            shift_us: 9.0,
        });
        hw.size = Some(SizeEstimate {
            m: 100,
            hit_rejection: true,
            levels: vec![LevelEstimate {
                rtt_ms: 0.5,
                estimated_size: 100.0,
                swept_count: 100,
                saturated: true,
            }],
            clustering: Clustering {
                centers: vec![0.5],
                boundaries: vec![],
                sizes: vec![100],
            },
            rules_attempted: 100,
            packets_sent: 300,
            batches: 7,
        });
        let sw = db.switch_mut(Dpid(2));
        sw.label = "software".into();
        sw.latency = Some(LatencyProfile {
            calibrated_n: 100,
            add_asc_ms: 0.055,
            add_desc_ms: 0.055,
            add_same_ms: 0.055,
            add_rand_ms: 0.055,
            mod_ms: 0.055,
            del_ms: 0.045,
            shift_us: 0.0,
        });
        sw.size = Some(SizeEstimate {
            m: 100,
            hit_rejection: false,
            levels: vec![LevelEstimate {
                rtt_ms: 3.0,
                estimated_size: 100.0,
                swept_count: 100,
                saturated: true,
            }],
            clustering: Clustering {
                centers: vec![3.0],
                boundaries: vec![],
                sizes: vec![100],
            },
            rules_attempted: 100,
            packets_sent: 300,
            batches: 7,
        });
        db
    }

    #[test]
    fn fast_setup_prefers_software_switch() {
        let db = hw_sw_db();
        let pick = advise_placement(&db, &[Dpid(1), Dpid(2)], &AppHint::fast_setup());
        assert_eq!(pick, Some(Dpid(2)), "software switch installs faster");
    }

    #[test]
    fn fast_forwarding_prefers_hardware_switch() {
        let db = hw_sw_db();
        let pick = advise_placement(&db, &[Dpid(1), Dpid(2)], &AppHint::fast_forwarding());
        assert_eq!(pick, Some(Dpid(1)), "hardware forwards faster");
    }

    #[test]
    fn empty_candidates_yield_none() {
        let db = hw_sw_db();
        assert_eq!(advise_placement(&db, &[], &AppHint::fast_setup()), None);
    }

    #[test]
    fn deadline_check_uses_curves() {
        let db = hw_sw_db();
        // 100 adds on hardware at 2 ms each = 200 ms.
        assert!(can_meet_deadline(&db, Dpid(1), 100, 250.0));
        assert!(!can_meet_deadline(&db, Dpid(1), 100, 150.0));
        // Software is ~36× faster.
        assert!(can_meet_deadline(&db, Dpid(2), 100, 10.0));
    }
}
