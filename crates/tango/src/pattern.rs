//! Tango patterns.
//!
//! Per the paper: "a Tango pattern consists of a sequence of standard
//! OpenFlow flow modification commands and a corresponding data traffic
//! pattern". A [`TangoPattern`] is exactly that — a named step list of
//! flow-mods, probe packets, and barriers over a numbered family of
//! probe flows — executed verbatim by the probing engine.

use ofwire::flow_match::{FlowKey, FlowMatch};
use serde::{Deserialize, Serialize};
use simnet::rng::DetRng;

/// Which header layers the pattern's probe rules match (determines TCAM
/// slot width on width-sensitive switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleKind {
    /// Ethernet-only rules.
    L2,
    /// IP-only rules.
    L3,
    /// Combined rules (double-wide on some TCAMs).
    L2L3,
}

impl RuleKind {
    /// The match for probe flow `id` under this kind.
    #[must_use]
    pub fn flow_match(self, id: u32) -> FlowMatch {
        match self {
            RuleKind::L2 => FlowMatch::l2_for_id(id),
            RuleKind::L3 => FlowMatch::l3_for_id(id),
            RuleKind::L2L3 => FlowMatch::l2l3_for_id(id),
        }
    }

    /// A packet key hitting probe flow `id`'s rule.
    #[must_use]
    pub fn key(self, id: u32) -> FlowKey {
        FlowMatch::key_for_id(id)
    }
}

/// One step of a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternStep {
    /// Install probe flow `id` at `priority`.
    Add {
        /// Probe-flow id.
        id: u32,
        /// Rule priority.
        priority: u16,
    },
    /// Rewrite probe flow `id`'s action to output on `out_port`.
    Modify {
        /// Probe-flow id.
        id: u32,
        /// Rule priority (strict modify).
        priority: u16,
        /// New output port.
        out_port: u16,
    },
    /// Remove probe flow `id` (strict).
    Delete {
        /// Probe-flow id.
        id: u32,
        /// Rule priority (strict delete).
        priority: u16,
    },
    /// Send one data packet matching probe flow `id` and record its RTT.
    Probe {
        /// Probe-flow id.
        id: u32,
    },
    /// Fence: wait until all earlier commands complete, and close the
    /// current timing segment.
    Barrier,
}

/// The order in which a batch of adds assigns priorities (Fig 3c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityOrder {
    /// Priorities increase with insertion order (never shifts).
    Ascending,
    /// Priorities decrease with insertion order (always shifts).
    Descending,
    /// All rules share one priority.
    Same,
    /// A random permutation of the ascending priorities (seeded).
    Random(u64),
}

impl PriorityOrder {
    /// The priority assigned to the `i`-th of `n` insertions. Priorities
    /// stay in `[base, base+n)` so patterns are comparable.
    #[must_use]
    pub fn priorities(self, n: usize, base: u16) -> Vec<u16> {
        match self {
            PriorityOrder::Ascending => (0..n).map(|i| base + i as u16).collect(),
            PriorityOrder::Descending => (0..n).map(|i| base + (n - 1 - i) as u16).collect(),
            PriorityOrder::Same => vec![base; n],
            PriorityOrder::Random(seed) => {
                let mut v: Vec<u16> = (0..n).map(|i| base + i as u16).collect();
                DetRng::new(seed).shuffle(&mut v);
                v
            }
        }
    }

    /// Display label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PriorityOrder::Ascending => "asc. priority",
            PriorityOrder::Descending => "desc. priority",
            PriorityOrder::Same => "same priority",
            PriorityOrder::Random(_) => "random priority",
        }
    }
}

/// A named probe pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TangoPattern {
    /// Identifier in the pattern database.
    pub name: String,
    /// Match kind of the probe rules.
    pub kind: RuleKind,
    /// The steps.
    pub steps: Vec<PatternStep>,
}

impl TangoPattern {
    /// Install `n` rules with the given priority order, barriered at the
    /// end — the Fig 3c priority pattern.
    #[must_use]
    pub fn priority_insertion(n: usize, order: PriorityOrder, kind: RuleKind) -> TangoPattern {
        let prios = order.priorities(n, 1000);
        let mut steps: Vec<PatternStep> = prios
            .iter()
            .enumerate()
            .map(|(i, &priority)| PatternStep::Add {
                id: i as u32,
                priority,
            })
            .collect();
        steps.push(PatternStep::Barrier);
        TangoPattern {
            name: format!("priority_insertion({n}, {})", order.label()),
            kind,
            steps,
        }
    }

    /// Modify `n` pre-installed rules (ids `0..n` at `base_priority`),
    /// barriered — the "mod" arm of Fig 3b.
    #[must_use]
    pub fn modify_batch(n: usize, base_priority: u16, kind: RuleKind) -> TangoPattern {
        let mut steps: Vec<PatternStep> = (0..n)
            .map(|i| PatternStep::Modify {
                id: i as u32,
                priority: base_priority,
                out_port: 2,
            })
            .collect();
        steps.push(PatternStep::Barrier);
        TangoPattern {
            name: format!("modify_batch({n})"),
            kind,
            steps,
        }
    }

    /// Delete `n` pre-installed rules, barriered.
    #[must_use]
    pub fn delete_batch(n: usize, base_priority: u16, kind: RuleKind) -> TangoPattern {
        let mut steps: Vec<PatternStep> = (0..n)
            .map(|i| PatternStep::Delete {
                id: i as u32,
                priority: base_priority,
            })
            .collect();
        steps.push(PatternStep::Barrier);
        TangoPattern {
            name: format!("delete_batch({n})"),
            kind,
            steps,
        }
    }

    /// Probe rules `0..n` once each, in order.
    #[must_use]
    pub fn probe_each(n: usize, kind: RuleKind) -> TangoPattern {
        TangoPattern {
            name: format!("probe_each({n})"),
            kind,
            steps: (0..n)
                .map(|i| PatternStep::Probe { id: i as u32 })
                .collect(),
        }
    }

    /// The six add/mod/del permutations of Fig 3a: phases of `per_phase`
    /// operations each, in the order given by `perm` (a permutation of
    /// `[Add, Modify, Delete]` encoded as phase labels).
    ///
    /// Adds create ids `base_new..` at priorities `base..base+per_phase`;
    /// mods touch pre-installed ids `0..per_phase` at `base`; deletes
    /// touch pre-installed ids `per_phase..2·per_phase` at
    /// `base + 2·per_phase` (above every add, so delete-before-add
    /// genuinely reduces TCAM shifting — the effect Fig 3a measures).
    #[must_use]
    pub fn op_permutation(
        perm: [OpPhase; 3],
        per_phase: usize,
        base_new: u32,
        base_priority: u16,
        kind: RuleKind,
    ) -> TangoPattern {
        let mut steps = Vec::new();
        for phase in perm {
            match phase {
                OpPhase::Add => {
                    for i in 0..per_phase {
                        steps.push(PatternStep::Add {
                            id: base_new + i as u32,
                            priority: base_priority + i as u16,
                        });
                    }
                }
                OpPhase::Modify => {
                    for i in 0..per_phase {
                        steps.push(PatternStep::Modify {
                            id: i as u32,
                            priority: base_priority,
                            out_port: 3,
                        });
                    }
                }
                OpPhase::Delete => {
                    let del_priority = base_priority + 2 * per_phase as u16;
                    for i in 0..per_phase {
                        steps.push(PatternStep::Delete {
                            id: (per_phase + i) as u32,
                            priority: del_priority,
                        });
                    }
                }
            }
            steps.push(PatternStep::Barrier);
        }
        let label: Vec<&str> = perm.iter().map(|p| p.label()).collect();
        TangoPattern {
            name: label.join("_"),
            kind,
            steps,
        }
    }

    /// Number of steps of each class: (adds, mods, dels, probes).
    #[must_use]
    pub fn op_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for s in &self.steps {
            match s {
                PatternStep::Add { .. } => c.0 += 1,
                PatternStep::Modify { .. } => c.1 += 1,
                PatternStep::Delete { .. } => c.2 += 1,
                PatternStep::Probe { .. } => c.3 += 1,
                PatternStep::Barrier => {}
            }
        }
        c
    }
}

/// A phase label for [`TangoPattern::op_permutation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpPhase {
    /// A batch of additions.
    Add,
    /// A batch of modifications.
    Modify,
    /// A batch of deletions.
    Delete,
}

impl OpPhase {
    /// Short label, as in Fig 3a's x-axis ("add_del_mod", …).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OpPhase::Add => "add",
            OpPhase::Modify => "mod",
            OpPhase::Delete => "del",
        }
    }

    /// All six orderings of the three phases.
    #[must_use]
    pub fn permutations() -> [[OpPhase; 3]; 6] {
        use OpPhase::{Add, Delete, Modify};
        [
            [Add, Delete, Modify],
            [Add, Modify, Delete],
            [Modify, Delete, Add],
            [Modify, Add, Delete],
            [Delete, Modify, Add],
            [Delete, Add, Modify],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders() {
        assert_eq!(PriorityOrder::Ascending.priorities(3, 10), vec![10, 11, 12]);
        assert_eq!(
            PriorityOrder::Descending.priorities(3, 10),
            vec![12, 11, 10]
        );
        assert_eq!(PriorityOrder::Same.priorities(3, 10), vec![10, 10, 10]);
        let mut r = PriorityOrder::Random(1).priorities(10, 10);
        let r2 = PriorityOrder::Random(1).priorities(10, 10);
        assert_eq!(r, r2, "seeded randomness is deterministic");
        r.sort_unstable();
        assert_eq!(r, PriorityOrder::Ascending.priorities(10, 10));
    }

    #[test]
    fn priority_insertion_shape() {
        let p = TangoPattern::priority_insertion(5, PriorityOrder::Ascending, RuleKind::L3);
        assert_eq!(p.steps.len(), 6); // 5 adds + barrier
        assert_eq!(p.op_counts(), (5, 0, 0, 0));
        assert!(matches!(p.steps[5], PatternStep::Barrier));
    }

    #[test]
    fn op_permutation_counts_and_name() {
        use OpPhase::{Add, Delete, Modify};
        let p = TangoPattern::op_permutation([Add, Delete, Modify], 200, 1000, 50, RuleKind::L3);
        assert_eq!(p.name, "add_del_mod");
        assert_eq!(p.op_counts(), (200, 200, 200, 0));
        // Three barriers, one per phase.
        let barriers = p
            .steps
            .iter()
            .filter(|s| matches!(s, PatternStep::Barrier))
            .count();
        assert_eq!(barriers, 3);
    }

    #[test]
    fn all_six_permutations_distinct() {
        let names: Vec<String> = OpPhase::permutations()
            .iter()
            .map(|perm| TangoPattern::op_permutation(*perm, 1, 100, 10, RuleKind::L3).name)
            .collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 6, "{names:?}");
    }

    #[test]
    fn rule_kind_match_consistency() {
        for kind in [RuleKind::L2, RuleKind::L3, RuleKind::L2L3] {
            let m = kind.flow_match(7);
            assert!(m.covers(&kind.key(7)));
            assert!(!m.covers(&kind.key(8)));
        }
    }
}
