//! Online (in-service) probing (§4: "The collection of switch
//! measurements can be either offline testing of the switch before it is
//! plugged in the network, but online testing when the switch is
//! running").
//!
//! Online probes must not disturb application state. The headroom probe
//! installs its rules in a reserved flow-id namespace, measures the
//! remaining hardware capacity, then strictly removes exactly what it
//! installed — leaving every application rule (and its counters)
//! untouched.

use crate::driver::{self, mismatch, InferenceDriver, ProbeError, Step};
use crate::pattern::RuleKind;
use crate::probe::ProbingEngine;
use ofwire::flow_mod::FlowMod;
use serde::{Deserialize, Serialize};
use switchsim::control::{ControlOp, OpOutcome};

/// Flow-id namespace reserved for online probes; applications should
/// keep their ids below this.
pub const ONLINE_PROBE_ID_BASE: u32 = 0xf000_0000;

/// The result of an online headroom probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Headroom {
    /// Probe rules accepted before rejection (or the cap).
    pub accepted: usize,
    /// Whether the switch rejected an add (true capacity boundary) or
    /// the cap stopped the probe.
    pub hit_rejection: bool,
    /// Probe rules successfully removed afterwards (must equal
    /// `accepted`).
    pub cleaned: usize,
}

/// Where the headroom driver is.
enum HeadroomState {
    /// A doubling add-batch is in flight.
    Insert,
    /// The strict cleanup batch (of `n_dels` deletes) is in flight.
    Cleanup { n_dels: usize },
    /// Terminal (outcome already produced).
    Finished,
}

/// The online headroom probe as a resumable state machine: doubling
/// add-batches in the reserved flow-id namespace, then one strict
/// cleanup batch removing exactly what was installed.
pub struct HeadroomDriver {
    kind: RuleKind,
    priority: u16,
    cap: usize,
    accepted: usize,
    hit_rejection: bool,
    x: usize,
    state: HeadroomState,
}

impl HeadroomDriver {
    /// A driver probing with rules of `kind` at `priority`, installing
    /// at most `cap` probe rules.
    #[must_use]
    pub fn new(kind: RuleKind, priority: u16, cap: usize) -> HeadroomDriver {
        HeadroomDriver {
            kind,
            priority,
            cap,
            accepted: 0,
            hit_rejection: false,
            x: 1,
            state: HeadroomState::Finished,
        }
    }

    /// Issues the next doubling batch, or the final strict cleanup when
    /// insertion is over. The cleanup batch is issued even when empty so
    /// the probe's op stream (and hence its timing) always ends with the
    /// cleanup barrier.
    fn next_batch_or_cleanup(&mut self) -> Step<Headroom> {
        while !self.hit_rejection && self.accepted < self.cap {
            let target = self.x.min(self.cap);
            if target > self.accepted {
                let fms: Vec<FlowMod> = (self.accepted..target)
                    .map(|i| {
                        FlowMod::add(
                            self.kind.flow_match(ONLINE_PROBE_ID_BASE + i as u32),
                            self.priority,
                        )
                    })
                    .collect();
                self.state = HeadroomState::Insert;
                return Step::Issue(vec![ControlOp::Batch(fms)]);
            }
            self.x *= 2;
        }
        // Clean up strictly: only the probe's own rules.
        let dels: Vec<FlowMod> = (0..self.accepted)
            .map(|i| {
                FlowMod::delete_strict(
                    self.kind.flow_match(ONLINE_PROBE_ID_BASE + i as u32),
                    self.priority,
                )
            })
            .collect();
        self.state = HeadroomState::Cleanup { n_dels: dels.len() };
        Step::Issue(vec![ControlOp::Batch(dels)])
    }
}

impl InferenceDriver for HeadroomDriver {
    type Outcome = Headroom;

    fn start(&mut self) -> Step<Headroom> {
        self.next_batch_or_cleanup()
    }

    fn on_completion(&mut self, c: &driver::Completion) -> Result<Step<Headroom>, ProbeError> {
        match self.state {
            HeadroomState::Insert => {
                let OpOutcome::Batch { ok, failed } = c.inner.outcome else {
                    return Err(mismatch(&"headroom add batch", c));
                };
                self.accepted += ok;
                if failed > 0 {
                    self.hit_rejection = true;
                }
                self.x *= 2;
                Ok(self.next_batch_or_cleanup())
            }
            HeadroomState::Cleanup { n_dels } => {
                let OpOutcome::Batch { ok, failed } = c.inner.outcome else {
                    return Err(mismatch(&"headroom cleanup batch", c));
                };
                if failed != 0 || ok != n_dels {
                    // Probe rules were left behind — the switch is no
                    // longer in its pre-probe state, which an online
                    // probe must never silently accept.
                    return Err(ProbeError::LeakedRules {
                        installed: n_dels,
                        cleaned: ok,
                    });
                }
                self.state = HeadroomState::Finished;
                Ok(Step::Done(Headroom {
                    accepted: self.accepted,
                    hit_rejection: self.hit_rejection,
                    cleaned: ok,
                }))
            }
            HeadroomState::Finished => Err(mismatch(&"no op in flight (driver finished)", c)),
        }
    }
}

/// Measures how many more rules the switch can accept right now,
/// without touching application rules. `priority` should be low so the
/// probe rules cannot shadow production traffic; `cap` bounds the probe
/// on switches with unbounded software tables — the synchronous adapter
/// over [`HeadroomDriver`].
///
/// # Errors
/// [`ProbeError::LeakedRules`] if the cleanup failed to remove every
/// probe rule; [`ProbeError::CompletionMismatch`] if the transport
/// violates its completion contract.
pub fn probe_headroom(
    engine: &mut ProbingEngine<'_>,
    priority: u16,
    cap: usize,
) -> Result<Headroom, ProbeError> {
    let dpid = engine.dpid();
    let kind = engine.kind();
    driver::run_driver(
        engine.testbed_mut(),
        dpid,
        HeadroomDriver::new(kind, priority, cap),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RuleKind;
    use ofwire::flow_match::FlowMatch;
    use ofwire::types::Dpid;
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    #[test]
    fn headroom_measures_remaining_capacity_nondisruptively() {
        let mut tb = Testbed::new(5);
        let dpid = Dpid(1);
        tb.attach_default(dpid, SwitchProfile::vendor3());
        // The "application" has 200 rules installed, with traffic.
        let fms: Vec<FlowMod> = (0..200)
            .map(|i| FlowMod::add(FlowMatch::l3_for_id(i), 500))
            .collect();
        tb.batch(dpid, fms);
        for i in 0..200 {
            tb.probe(dpid, &FlowMatch::key_for_id(i));
        }

        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let h = probe_headroom(&mut eng, 1, 2048).expect("headroom probe completes");
        assert!(h.hit_rejection);
        assert_eq!(h.accepted, 767 - 200);
        assert_eq!(h.cleaned, h.accepted);

        // Application state is untouched: same rule count, same
        // counters.
        assert_eq!(tb.switch(dpid).rule_count(), 200);
        let stats = tb.switch(dpid).flow_stats(simnet::time::SimTime(0));
        assert_eq!(stats.len(), 200);
        assert!(stats.iter().all(|e| e.packet_count == 1));
        assert!(stats.iter().all(|e| e.priority == 500));
    }

    #[test]
    fn headroom_on_unbounded_switch_reports_cap() {
        let mut tb = Testbed::new(6);
        let dpid = Dpid(1);
        tb.attach_default(dpid, SwitchProfile::ovs());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let h = probe_headroom(&mut eng, 1, 300).expect("headroom probe completes");
        assert!(!h.hit_rejection);
        assert_eq!(h.accepted, 300);
        assert_eq!(tb.switch(dpid).rule_count(), 0);
    }

    #[test]
    fn repeated_probes_are_idempotent() {
        let mut tb = Testbed::new(7);
        let dpid = Dpid(1);
        tb.attach_default(dpid, SwitchProfile::vendor2());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let h1 = probe_headroom(&mut eng, 1, 4096).expect("headroom probe completes");
        let h2 = probe_headroom(&mut eng, 1, 4096).expect("headroom probe completes");
        assert_eq!(h1.accepted, 2560);
        assert_eq!(h1.accepted, h2.accepted);
    }
}
