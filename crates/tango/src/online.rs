//! Online (in-service) probing (§4: "The collection of switch
//! measurements can be either offline testing of the switch before it is
//! plugged in the network, but online testing when the switch is
//! running").
//!
//! Online probes must not disturb application state. The headroom probe
//! installs its rules in a reserved flow-id namespace, measures the
//! remaining hardware capacity, then strictly removes exactly what it
//! installed — leaving every application rule (and its counters)
//! untouched.

use crate::probe::ProbingEngine;
use ofwire::flow_mod::FlowMod;
use serde::{Deserialize, Serialize};

/// Flow-id namespace reserved for online probes; applications should
/// keep their ids below this.
pub const ONLINE_PROBE_ID_BASE: u32 = 0xf000_0000;

/// The result of an online headroom probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Headroom {
    /// Probe rules accepted before rejection (or the cap).
    pub accepted: usize,
    /// Whether the switch rejected an add (true capacity boundary) or
    /// the cap stopped the probe.
    pub hit_rejection: bool,
    /// Probe rules successfully removed afterwards (must equal
    /// `accepted`).
    pub cleaned: usize,
}

/// Measures how many more rules the switch can accept right now,
/// without touching application rules. `priority` should be low so the
/// probe rules cannot shadow production traffic; `cap` bounds the probe
/// on switches with unbounded software tables.
pub fn probe_headroom(engine: &mut ProbingEngine<'_>, priority: u16, cap: usize) -> Headroom {
    let kind = engine.kind();
    let mut accepted = 0usize;
    let mut hit_rejection = false;
    // Doubling batches, as in Algorithm 1 stage 1.
    let mut x = 1usize;
    while !hit_rejection && accepted < cap {
        let target = x.min(cap);
        if target > accepted {
            let fms: Vec<FlowMod> = (accepted..target)
                .map(|i| FlowMod::add(kind.flow_match(ONLINE_PROBE_ID_BASE + i as u32), priority))
                .collect();
            let (ok, failed, _) = engine.run_batch(fms);
            accepted += ok;
            if failed > 0 {
                hit_rejection = true;
            }
        }
        x *= 2;
    }
    // Clean up strictly: only the probe's own rules.
    let dels: Vec<FlowMod> = (0..accepted)
        .map(|i| FlowMod::delete_strict(kind.flow_match(ONLINE_PROBE_ID_BASE + i as u32), priority))
        .collect();
    let n_dels = dels.len();
    let (ok, failed, _) = engine.run_batch(dels);
    debug_assert_eq!(failed, 0);
    debug_assert_eq!(ok, n_dels);
    Headroom {
        accepted,
        hit_rejection,
        cleaned: ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RuleKind;
    use ofwire::flow_match::FlowMatch;
    use ofwire::types::Dpid;
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    #[test]
    fn headroom_measures_remaining_capacity_nondisruptively() {
        let mut tb = Testbed::new(5);
        let dpid = Dpid(1);
        tb.attach_default(dpid, SwitchProfile::vendor3());
        // The "application" has 200 rules installed, with traffic.
        let fms: Vec<FlowMod> = (0..200)
            .map(|i| FlowMod::add(FlowMatch::l3_for_id(i), 500))
            .collect();
        tb.batch(dpid, fms);
        for i in 0..200 {
            tb.probe(dpid, &FlowMatch::key_for_id(i));
        }

        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let h = probe_headroom(&mut eng, 1, 2048);
        assert!(h.hit_rejection);
        assert_eq!(h.accepted, 767 - 200);
        assert_eq!(h.cleaned, h.accepted);

        // Application state is untouched: same rule count, same
        // counters.
        assert_eq!(tb.switch(dpid).rule_count(), 200);
        let stats = tb.switch(dpid).flow_stats(simnet::time::SimTime(0));
        assert_eq!(stats.len(), 200);
        assert!(stats.iter().all(|e| e.packet_count == 1));
        assert!(stats.iter().all(|e| e.priority == 500));
    }

    #[test]
    fn headroom_on_unbounded_switch_reports_cap() {
        let mut tb = Testbed::new(6);
        let dpid = Dpid(1);
        tb.attach_default(dpid, SwitchProfile::ovs());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let h = probe_headroom(&mut eng, 1, 300);
        assert!(!h.hit_rejection);
        assert_eq!(h.accepted, 300);
        assert_eq!(tb.switch(dpid).rule_count(), 0);
    }

    #[test]
    fn repeated_probes_are_idempotent() {
        let mut tb = Testbed::new(7);
        let dpid = Dpid(1);
        tb.attach_default(dpid, SwitchProfile::vendor2());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let h1 = probe_headroom(&mut eng, 1, 4096);
        let h2 = probe_headroom(&mut eng, 1, 4096);
        assert_eq!(h1.accepted, 2560);
        assert_eq!(h1.accepted, h2.accepted);
    }
}
