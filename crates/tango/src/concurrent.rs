//! Concurrent multi-switch inference: one compiled pattern program per
//! switch, all interleaved in the same virtual time.
//!
//! Inference of a whole network no longer costs the sum of per-switch
//! probing times. Each program issues its next control-path operation
//! the moment its previous one acks, so switch A's flow-mod batch
//! processes while switch B's probe is still in flight — the event-driven
//! core serializes per switch, never across switches.
//!
//! Because every switch draws its latency jitter from its own RNG stream
//! (forked once at attach), a program's measurements depend only on the
//! op sequence *that switch* sees. Running many programs concurrently
//! therefore yields bit-identical [`PatternResult`]s to running them one
//! after another — verified by the `concurrent_inference` integration
//! test.

use crate::pattern::TangoPattern;
use crate::probe::{compile_pattern, record_completion, to_control_op, PatternResult};
use ofwire::types::Dpid;
use std::collections::HashMap;
use switchsim::control::{ControlPath, OpToken};

/// One pattern program being driven over the control path.
struct Running {
    dpid: Dpid,
    program: crate::probe::PatternProgram,
    /// Index of the op currently in flight.
    cursor: usize,
    issued_at: simnet::time::SimTime,
    result: PatternResult,
}

/// Runs one pattern per switch, all over the same control path, each
/// program advancing as its own completions arrive. Returns the results
/// in job order.
///
/// # Panics
/// Panics if two jobs name the same switch (their op streams would
/// interleave on one control channel, which is not a pattern any more).
pub fn run_patterns<C: ControlPath>(
    cp: &mut C,
    jobs: &[(Dpid, &TangoPattern)],
) -> Vec<PatternResult> {
    {
        let mut seen = std::collections::HashSet::new();
        for &(dpid, _) in jobs {
            assert!(seen.insert(dpid), "one pattern per switch at a time");
        }
    }
    let mut runs: Vec<Running> = jobs
        .iter()
        .map(|&(dpid, pattern)| Running {
            dpid,
            program: compile_pattern(pattern),
            cursor: 0,
            issued_at: cp.now(),
            result: PatternResult::default(),
        })
        .collect();
    // Kick off every program's first op at the common start instant.
    let mut inflight: HashMap<OpToken, usize> = HashMap::new();
    let start = cp.now();
    for (i, run) in runs.iter_mut().enumerate() {
        if let Some(op) = run.program.ops.first() {
            run.issued_at = start;
            let token = cp.submit(run.dpid, to_control_op(run.program.kind, op), start);
            inflight.insert(token, i);
        }
    }
    while !inflight.is_empty() {
        let c = cp.next_completion().expect("in-flight ops must complete");
        let Some(i) = inflight.remove(&c.token) else {
            // A completion from outside these programs (the caller had
            // other work in flight) — not ours to account.
            continue;
        };
        let run = &mut runs[i];
        let op = &run.program.ops[run.cursor];
        record_completion(&mut run.result, op, run.issued_at, &c);
        run.cursor += 1;
        // The program's next op leaves the controller when this op's ack
        // arrives — exactly when a synchronous driver would issue it.
        if let Some(op) = run.program.ops.get(run.cursor) {
            run.issued_at = c.acked_at;
            let token = cp.submit(run.dpid, to_control_op(run.program.kind, op), c.acked_at);
            inflight.insert(token, i);
        }
    }
    runs.into_iter().map(|r| r.result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PriorityOrder, RuleKind};
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    #[test]
    fn concurrent_runs_finish_and_install() {
        let mut tb = Testbed::new(21);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::ovs());
        let p1 = TangoPattern::priority_insertion(30, PriorityOrder::Ascending, RuleKind::L3);
        let p2 = TangoPattern::priority_insertion(40, PriorityOrder::Descending, RuleKind::L3);
        let results = run_patterns(&mut tb, &[(Dpid(1), &p1), (Dpid(2), &p2)]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].rejected(), 0);
        assert_eq!(results[1].rejected(), 0);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 30);
        assert_eq!(tb.switch(Dpid(2)).rule_count(), 40);
    }

    #[test]
    #[should_panic(expected = "one pattern per switch")]
    fn duplicate_switches_are_rejected() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::ovs());
        let p = TangoPattern::priority_insertion(5, PriorityOrder::Ascending, RuleKind::L3);
        let _ = run_patterns(&mut tb, &[(Dpid(1), &p), (Dpid(1), &p)]);
    }
}
