//! Concurrent multi-switch inference: one compiled pattern program per
//! switch, all interleaved in the same virtual time.
//!
//! Inference of a whole network no longer costs the sum of per-switch
//! probing times. Each program issues its next control-path operation
//! the moment its previous one acks, so switch A's flow-mod batch
//! processes while switch B's probe is still in flight — the event-driven
//! core serializes per switch, never across switches.
//!
//! Because every switch draws its latency jitter from its own RNG stream
//! (forked once at attach), a program's measurements depend only on the
//! op sequence *that switch* sees. Running many programs concurrently
//! therefore yields bit-identical [`PatternResult`]s to running them one
//! after another — verified by the `concurrent_inference` integration
//! test.
//!
//! This module is now the trivial instantiation of the general
//! [`driver`](crate::driver "the driver module") machinery: a
//! [`PatternDriver`] per switch fed through [`run_drivers`]. The
//! adaptive pipelines interleave the same way through
//! [`fleet`](crate::fleet "the fleet module").

use crate::driver::{run_drivers, ProbeError};
use crate::pattern::TangoPattern;
use crate::probe::{PatternDriver, PatternResult};
use ofwire::types::Dpid;
use switchsim::control::ControlPath;

/// Runs one pattern per switch, all over the same control path, each
/// program advancing as its own completions arrive. Returns the results
/// in job order.
///
/// # Errors
/// [`ProbeError::DuplicateSwitch`] if two jobs name the same switch
/// (their op streams would interleave on one control channel, which is
/// not a pattern any more); [`ProbeError::CompletionMismatch`] if the
/// transport violates its completion contract.
pub fn run_patterns<C: ControlPath>(
    cp: &mut C,
    jobs: &[(Dpid, &TangoPattern)],
) -> Result<Vec<PatternResult>, ProbeError> {
    let drivers: Vec<(Dpid, PatternDriver)> = jobs
        .iter()
        .map(|&(dpid, pattern)| (dpid, PatternDriver::for_pattern(pattern)))
        .collect();
    run_drivers(cp, drivers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PriorityOrder, RuleKind};
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    #[test]
    fn concurrent_runs_finish_and_install() {
        let mut tb = Testbed::new(21);
        tb.attach_default(Dpid(1), SwitchProfile::vendor1());
        tb.attach_default(Dpid(2), SwitchProfile::ovs());
        let p1 = TangoPattern::priority_insertion(30, PriorityOrder::Ascending, RuleKind::L3);
        let p2 = TangoPattern::priority_insertion(40, PriorityOrder::Descending, RuleKind::L3);
        let results =
            run_patterns(&mut tb, &[(Dpid(1), &p1), (Dpid(2), &p2)]).expect("patterns run");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].rejected(), 0);
        assert_eq!(results[1].rejected(), 0);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 30);
        assert_eq!(tb.switch(Dpid(2)).rule_count(), 40);
    }

    #[test]
    fn duplicate_switches_are_rejected() {
        let mut tb = Testbed::new(1);
        tb.attach_default(Dpid(1), SwitchProfile::ovs());
        let p = TangoPattern::priority_insertion(5, PriorityOrder::Ascending, RuleKind::L3);
        let err = run_patterns(&mut tb, &[(Dpid(1), &p), (Dpid(1), &p)])
            .expect_err("duplicate dpid must be a typed error");
        assert_eq!(err, ProbeError::DuplicateSwitch(Dpid(1)));
    }
}
