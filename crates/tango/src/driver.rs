//! Resumable inference drivers: the adaptive probing algorithms as
//! event-driven state machines over the [`ControlPath`] layer.
//!
//! Every adaptive pipeline in this crate — Algorithm 1
//! ([`SizeDriver`](crate::infer_size::SizeDriver)), Algorithm 2
//! ([`PolicyDriver`](crate::infer_policy::PolicyDriver)), the geometry
//! probe, the online headroom probe, and plain pattern execution — is a
//! small state machine implementing [`InferenceDriver`]: it *issues*
//! control-path operations and *consumes* their completions one at a
//! time, never blocking on the transport. The synchronous entry points
//! (`probe_sizes`, `probe_policy`, …) are thin adapters that feed a
//! single driver through [`run_driver`]; whole-network inference feeds
//! one driver per switch through [`run_drivers`] (see
//! [`fleet`](crate::fleet)) so N switches are characterized in the
//! wall-clock time of the slowest, not the sum.
//!
//! # Determinism
//!
//! Interleaving drivers does not change what any one of them measures.
//! Two properties make that true:
//!
//! 1. **Pacing is preserved.** A driver's next operation is submitted
//!    with `ready_at` equal to the completion's `acked_at` — the exact
//!    instant a synchronous submit/wait/warp loop would have issued it.
//!    The op sequence and op timing one switch observes are therefore
//!    identical whether its driver runs alone or among many.
//! 2. **Randomness is per-switch.** Latency jitter comes from RNG
//!    streams forked per switch at attach time, and each driver owns its
//!    own sampling RNG seeded from its config — nothing is drawn from a
//!    shared stream whose order interleaving could perturb.
//!
//! Hence `run_drivers` is bit-identical to running each driver
//! sequentially on its own — the property the `fleet_inference`
//! integration test and the `driver_equivalence` proptest enforce.

use ofwire::types::Dpid;
use simnet::telemetry::SpanId;
use simnet::time::{SimDuration, SimTime};
use std::collections::{HashSet, VecDeque};
use switchsim::control::{self, ControlOp, ControlPath, OpToken};

use crate::pattern::RuleKind;

/// A typed error from the probing layer. Replaces the panics and asserts
/// that used to live on the probing hot path.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeError {
    /// A completion's outcome did not match the operation the driver had
    /// in flight — a control-path contract violation.
    CompletionMismatch {
        /// Debug rendering of the op the driver expected to complete.
        expected: String,
        /// Debug rendering of the outcome that actually arrived.
        got: String,
    },
    /// Two concurrent jobs named the same switch; their op streams would
    /// interleave on one control channel, which is not a pattern any
    /// more.
    DuplicateSwitch(Dpid),
    /// An online probe failed to remove every rule it installed, leaving
    /// probe state behind in the switch.
    LeakedRules {
        /// Probe rules the cleanup tried to delete.
        installed: usize,
        /// Probe rules actually removed.
        cleaned: usize,
    },
    /// A driver neither finished nor issued another operation — it can
    /// never make progress again.
    DriverStalled(Dpid),
    /// A pattern was handed to an engine bound to a different rule kind.
    PatternKindMismatch {
        /// The pattern's rule kind.
        pattern: RuleKind,
        /// The engine's bound rule kind.
        engine: RuleKind,
    },
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::CompletionMismatch { expected, got } => {
                write!(f, "completion {got} does not match issued op {expected}")
            }
            ProbeError::DuplicateSwitch(dpid) => {
                write!(
                    f,
                    "duplicate job for {dpid}: one driver per switch at a time"
                )
            }
            ProbeError::LeakedRules { installed, cleaned } => write!(
                f,
                "online probe leaked rules: installed {installed}, cleaned {cleaned}"
            ),
            ProbeError::DriverStalled(dpid) => {
                write!(f, "driver for {dpid} stalled: not done, nothing in flight")
            }
            ProbeError::PatternKindMismatch { pattern, engine } => write!(
                f,
                "pattern kind {pattern:?} does not match engine kind {engine:?}"
            ),
        }
    }
}

impl std::error::Error for ProbeError {}

/// What a driver does next: issue more operations, or finish.
#[derive(Debug, Clone, PartialEq)]
pub enum Step<T> {
    /// Submit these operations, in order, behind anything already
    /// queued. An empty `Issue` is a no-op (the driver is still waiting
    /// on earlier operations).
    Issue(Vec<ControlOp>),
    /// The driver is finished; this is its outcome. Any still-queued
    /// operations are discarded.
    Done(T),
}

impl<T> Step<T> {
    /// Maps the outcome type, leaving issued ops untouched.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Step<U> {
        match self {
            Step::Issue(ops) => Step::Issue(ops),
            Step::Done(t) => Step::Done(f(t)),
        }
    }
}

/// A completion as a driver sees it: the transport-level event plus the
/// controller-side instant the op was submitted with, so elapsed time is
/// measured exactly as the synchronous adapters measured it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// When the operation left the controller.
    pub issued_at: SimTime,
    /// The transport-level completion event.
    pub inner: control::Completion,
}

impl Completion {
    /// Controller-observed elapsed time (submit → ack).
    #[must_use]
    pub fn elapsed(&self) -> SimDuration {
        self.inner.acked_at.since(self.issued_at)
    }

    /// Controller-observed elapsed time in milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_millis_f64()
    }
}

/// A resumable inference state machine.
///
/// The runner calls [`start`](InferenceDriver::start) once, submits the
/// issued operations one at a time (each at the previous completion's
/// `acked_at`), and feeds every completion back through
/// [`on_completion`](InferenceDriver::on_completion). Completions arrive
/// in issue order, exactly one per issued op.
pub trait InferenceDriver {
    /// What the driver produces when it finishes.
    type Outcome;

    /// Called once before any completion: the driver's opening
    /// operations (or an immediate outcome for degenerate configs).
    fn start(&mut self) -> Step<Self::Outcome>;

    /// Called with the completion of the oldest outstanding operation.
    fn on_completion(&mut self, c: &Completion) -> Result<Step<Self::Outcome>, ProbeError>;
}

/// One driver's bookkeeping inside [`run_drivers`].
struct Job<D: InferenceDriver> {
    dpid: Dpid,
    driver: D,
    /// Operations issued by the driver but not yet submitted.
    queue: VecDeque<ControlOp>,
    outcome: Option<D::Outcome>,
    /// Telemetry span covering the job on its switch's track, from first
    /// submit to final acknowledgement. `None` when telemetry is off or
    /// the path assigns no per-switch tracks.
    span: Option<SpanId>,
}

impl<D: InferenceDriver> Job<D> {
    /// Submits this job's next queued op at `ready_at`, registering the
    /// token; errors if the driver is unfinished with nothing queued.
    fn submit_next<C: ControlPath>(
        &mut self,
        idx: usize,
        cp: &mut C,
        ready_at: SimTime,
        inflight: &mut TokenRing,
    ) -> Result<(), ProbeError> {
        let Some(op) = self.queue.pop_front() else {
            return Err(ProbeError::DriverStalled(self.dpid));
        };
        if let Some(t) = cp.telemetry_mut() {
            t.count("driver/ops_issued", 1);
        }
        let token = cp.submit(self.dpid, op, ready_at);
        inflight.insert(token, idx, ready_at);
        Ok(())
    }
}

/// In-flight bookkeeping as a flat ring over token sequence numbers.
///
/// [`OpToken`]s are dense per control path (see [`OpToken::seq`]), and a
/// `run_drivers` call keeps at most one op in flight per job, so the
/// span of outstanding tokens stays at the job count. Filing entries at
/// `seq - base` in a deque makes insert and remove an array access with
/// no hashing, and the drained front compacts away as completions
/// arrive in roughly token order.
#[derive(Default)]
struct TokenRing {
    /// Sequence number of `slots[0]`; fixed by the first insert.
    base: Option<u64>,
    slots: VecDeque<Option<(usize, SimTime)>>,
    live: usize,
}

impl TokenRing {
    fn insert(&mut self, token: OpToken, idx: usize, issued_at: SimTime) {
        let base = *self.base.get_or_insert(token.seq());
        let off = usize::try_from(token.seq() - base).expect("token offset fits usize");
        while self.slots.len() <= off {
            self.slots.push_back(None);
        }
        debug_assert!(self.slots[off].is_none(), "token registered twice");
        self.slots[off] = Some((idx, issued_at));
        self.live += 1;
    }

    /// Removes and returns the entry for `token`; `None` for tokens this
    /// ring never registered (foreign ops the caller had in flight).
    fn remove(&mut self, token: OpToken) -> Option<(usize, SimTime)> {
        let base = self.base?;
        let off = usize::try_from(token.seq().checked_sub(base)?).ok()?;
        let entry = self.slots.get_mut(off)?.take()?;
        self.live -= 1;
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base = Some(self.base.expect("base set while compacting") + 1);
        }
        Some(entry)
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The entry with the lowest token, if any (deterministic pick for
    /// stall reporting).
    fn min_entry(&self) -> Option<(usize, SimTime)> {
        self.slots.iter().find_map(|s| *s)
    }
}

/// Drives many inference state machines over one control path, each
/// switch's driver advancing as its own completions arrive. Returns the
/// outcomes in job order.
///
/// Each driver keeps exactly one operation in flight; its next op is
/// submitted at the previous op's `acked_at`, the instant a synchronous
/// loop would have issued it — so the results are bit-identical to
/// running the drivers one after another (see the module docs). On
/// return the shared clock sits at the latest acknowledgement any driver
/// observed, matching where a sequence of synchronous runs would have
/// left it.
///
/// Completions from operations the caller had in flight before this call
/// are consumed and dropped; don't run drivers with foreign ops pending
/// if those completions matter.
pub fn run_drivers<C, D>(cp: &mut C, jobs: Vec<(Dpid, D)>) -> Result<Vec<D::Outcome>, ProbeError>
where
    C: ControlPath,
    D: InferenceDriver,
{
    let mut seen = HashSet::new();
    for (dpid, _) in &jobs {
        if !seen.insert(*dpid) {
            return Err(ProbeError::DuplicateSwitch(*dpid));
        }
    }
    let mut jobs: Vec<Job<D>> = jobs
        .into_iter()
        .map(|(dpid, driver)| Job {
            dpid,
            driver,
            queue: VecDeque::new(),
            outcome: None,
            span: None,
        })
        .collect();

    // Kick off every driver at the common start instant.
    let start = cp.now();
    let mut horizon = start;
    let mut inflight = TokenRing::default();
    if let Some(t) = cp.telemetry_mut() {
        t.count("driver/jobs", jobs.len() as u64);
    }
    for (i, job) in jobs.iter_mut().enumerate() {
        match job.driver.start() {
            Step::Issue(ops) => job.queue.extend(ops),
            Step::Done(o) => job.outcome = Some(o),
        }
        if job.outcome.is_none() {
            // The job span opens before the first op is submitted, so
            // the switch's op spans nest inside it on the track.
            if let Some(track) = cp.track_of(job.dpid) {
                if let Some(t) = cp.telemetry_mut() {
                    job.span = t.span_begin(track, "driver", start);
                }
            }
            job.submit_next(i, cp, start, &mut inflight)?;
        }
    }

    while !inflight.is_empty() {
        let Some(c) = cp.next_completion() else {
            // Ops are registered in flight but the path went quiet — a
            // transport invariant violation. Surface the lowest-token
            // job as stalled (deterministic choice).
            let (i, _) = inflight.min_entry().expect("inflight is non-empty");
            return Err(ProbeError::DriverStalled(jobs[i].dpid));
        };
        let Some((i, issued_at)) = inflight.remove(c.token) else {
            // A completion from outside these drivers (the caller had
            // other work in flight) — not ours to account.
            continue;
        };
        horizon = horizon.max(c.acked_at);
        let completion = Completion {
            issued_at,
            inner: c,
        };
        if let Some(t) = cp.telemetry_mut() {
            t.count("driver/completions", 1);
            t.observe("driver/op_ms", completion.elapsed_ms());
        }
        match jobs[i].driver.on_completion(&completion)? {
            Step::Issue(ops) => jobs[i].queue.extend(ops),
            Step::Done(o) => {
                jobs[i].outcome = Some(o);
                jobs[i].queue.clear();
                // The op span this completion closed was the innermost
                // on the track, so the job span ends cleanly at the ack.
                if let Some(t) = cp.telemetry_mut() {
                    t.span_end(jobs[i].span.take(), c.acked_at);
                }
            }
        }
        if jobs[i].outcome.is_none() {
            // The driver's next op leaves the controller when this op's
            // ack arrives — exactly when a synchronous loop would issue
            // it.
            jobs[i].submit_next(i, cp, c.acked_at, &mut inflight)?;
        }
    }

    // Leave the clock where the last synchronous call would have: at the
    // latest observed acknowledgement (per-job acks are monotone, so for
    // a single job this is its final ack).
    cp.warp_to(horizon);
    jobs.into_iter()
        .map(|j| j.outcome.ok_or(ProbeError::DriverStalled(j.dpid)))
        .collect()
}

/// Drives a single inference state machine to completion — the adapter
/// the synchronous entry points are built on.
pub fn run_driver<C, D>(cp: &mut C, dpid: Dpid, driver: D) -> Result<D::Outcome, ProbeError>
where
    C: ControlPath,
    D: InferenceDriver,
{
    let mut outcomes = run_drivers(cp, vec![(dpid, driver)])?;
    outcomes.pop().ok_or(ProbeError::DriverStalled(dpid))
}

/// Builds a [`ProbeError::CompletionMismatch`] from an expected-op
/// rendering and the completion that arrived.
pub(crate) fn mismatch(expected: &dyn std::fmt::Debug, c: &Completion) -> ProbeError {
    ProbeError::CompletionMismatch {
        expected: format!("{expected:?}"),
        got: format!("{:?}", c.inner.outcome),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::flow_mod::FlowMod;
    use switchsim::control::OpOutcome;
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    /// Installs `n` rules one flow-mod at a time, counting acceptances.
    struct CountingDriver {
        kind: RuleKind,
        n: u32,
        next: u32,
        accepted: usize,
    }

    impl InferenceDriver for CountingDriver {
        type Outcome = usize;

        fn start(&mut self) -> Step<usize> {
            if self.n == 0 {
                return Step::Done(0);
            }
            self.next = 1;
            Step::Issue(vec![ControlOp::FlowMod(FlowMod::add(
                self.kind.flow_match(0),
                10,
            ))])
        }

        fn on_completion(&mut self, c: &Completion) -> Result<Step<usize>, ProbeError> {
            let OpOutcome::FlowMod(r) = c.inner.outcome else {
                return Err(mismatch(&"flow-mod", c));
            };
            if r == switchsim::control::OpResult::Ok {
                self.accepted += 1;
            }
            if self.next == self.n {
                return Ok(Step::Done(self.accepted));
            }
            let id = self.next;
            self.next += 1;
            Ok(Step::Issue(vec![ControlOp::FlowMod(FlowMod::add(
                self.kind.flow_match(id),
                10,
            ))]))
        }
    }

    fn driver(n: u32) -> CountingDriver {
        CountingDriver {
            kind: RuleKind::L3,
            n,
            next: 0,
            accepted: 0,
        }
    }

    #[test]
    fn single_driver_runs_to_completion() {
        let mut tb = Testbed::new(3);
        tb.attach_default(Dpid(1), SwitchProfile::ovs());
        let got = run_driver(&mut tb, Dpid(1), driver(25)).expect("driver completes");
        assert_eq!(got, 25);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 25);
    }

    #[test]
    fn immediate_done_needs_no_ops() {
        let mut tb = Testbed::new(3);
        tb.attach_default(Dpid(1), SwitchProfile::ovs());
        let before = ControlPath::now(&tb);
        let got = run_driver(&mut tb, Dpid(1), driver(0)).expect("degenerate driver");
        assert_eq!(got, 0);
        assert_eq!(ControlPath::now(&tb), before, "no ops, no time");
    }

    #[test]
    fn duplicate_switches_are_a_typed_error() {
        let mut tb = Testbed::new(3);
        tb.attach_default(Dpid(1), SwitchProfile::ovs());
        let err = run_drivers(&mut tb, vec![(Dpid(1), driver(2)), (Dpid(1), driver(2))])
            .expect_err("duplicate dpid must be rejected");
        assert_eq!(err, ProbeError::DuplicateSwitch(Dpid(1)));
    }

    #[test]
    fn concurrent_drivers_interleave_and_finish() {
        let mut tb = Testbed::new(3);
        tb.attach_default(Dpid(1), SwitchProfile::ovs());
        tb.attach_default(Dpid(2), SwitchProfile::vendor1());
        let got = run_drivers(&mut tb, vec![(Dpid(1), driver(30)), (Dpid(2), driver(20))])
            .expect("both drivers complete");
        assert_eq!(got, vec![30, 20]);
        assert_eq!(tb.switch(Dpid(1)).rule_count(), 30);
        assert_eq!(tb.switch(Dpid(2)).rule_count(), 20);
    }

    /// A driver that returns an empty issue without finishing.
    struct StallingDriver;

    impl InferenceDriver for StallingDriver {
        type Outcome = ();

        fn start(&mut self) -> Step<()> {
            Step::Issue(vec![])
        }

        fn on_completion(&mut self, _c: &Completion) -> Result<Step<()>, ProbeError> {
            Ok(Step::Issue(vec![]))
        }
    }

    #[test]
    fn stalled_driver_is_a_typed_error() {
        let mut tb = Testbed::new(3);
        tb.attach_default(Dpid(7), SwitchProfile::ovs());
        let err = run_driver(&mut tb, Dpid(7), StallingDriver).expect_err("stall must surface");
        assert_eq!(err, ProbeError::DriverStalled(Dpid(7)));
    }

    #[test]
    fn probe_error_displays_are_informative() {
        let e = ProbeError::LeakedRules {
            installed: 10,
            cleaned: 9,
        };
        assert!(e.to_string().contains("installed 10"));
        let e = ProbeError::PatternKindMismatch {
            pattern: RuleKind::L2,
            engine: RuleKind::L3,
        };
        assert!(e.to_string().contains("L2"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
