//! # tango — automatic switch property inference, abstraction, and
//! optimization
//!
//! The paper's primary contribution: instead of trusting what switches
//! *report*, Tango *measures* them, using **Tango patterns** — sequences
//! of standard OpenFlow flow-mods plus matching data traffic — and infers
//! the switch implementation properties that matter for control-plane
//! performance:
//!
//! * [`infer_size`] — **Algorithm 1**: flow-table layer sizes from RTT
//!   clustering plus negative-binomial sampling (within 5 % of actual).
//! * [`infer_policy`] — **Algorithm 2**: the cache-replacement policy as
//!   a lexicographic attribute ordering, via pairwise-balanced attribute
//!   initialization and correlation.
//! * [`curves`] — per-operation latency curves (add under each priority
//!   ordering, modify, delete) feeding the scheduler's pattern oracle.
//!
//! Every adaptive pipeline is implemented as a resumable state machine
//! over the control path (see [`driver`]); the functions above are thin
//! synchronous adapters, and [`fleet::run_inference`] interleaves full
//! inference of many switches with bit-identical per-switch results.
//!
//! Results land in the central [`db::TangoDb`] (score + pattern
//! databases), from which the network scheduler (`tango-sched` crate) and
//! application [`hints`] draw.
//!
//! ```no_run
//! use ofwire::types::Dpid;
//! use switchsim::{harness::Testbed, profiles::SwitchProfile};
//! use tango::prelude::*;
//!
//! let mut tb = Testbed::new(1);
//! tb.attach_default(Dpid(1), SwitchProfile::vendor1());
//! let mut engine = ProbingEngine::new(&mut tb, Dpid(1), RuleKind::L3);
//! let sizes = probe_sizes(&mut engine, &SizeProbeConfig::default()).expect("probe");
//! println!("layers: {:?}", sizes.levels);
//! ```

pub mod cluster;
pub mod concurrent;
pub mod curves;
pub mod db;
pub mod driver;
pub mod fleet;
pub mod hints;
pub mod infer_geometry;
pub mod infer_policy;
pub mod infer_size;
pub mod json;
pub mod online;
pub mod pattern;
pub mod probe;
pub mod stats;

/// Glob-import of the commonly used types.
pub mod prelude {
    pub use crate::cluster::{cluster_rtts, kmeans_auto, Clustering};
    pub use crate::concurrent::run_patterns;
    pub use crate::curves::{measure_latency_profile, LatencyProfile};
    pub use crate::db::{SwitchKnowledge, TangoDb};
    pub use crate::driver::{
        run_driver, run_drivers, Completion as DriverCompletion, InferenceDriver, ProbeError, Step,
    };
    pub use crate::fleet::{run_inference, FleetJob, FleetOutcome, FleetTask};
    pub use crate::hints::{advise_placement, AppHint, FlowGoal};
    pub use crate::infer_geometry::{probe_geometry, GeometryClass, GeometryEstimate};
    pub use crate::infer_policy::{probe_policy, InferredPolicy, PolicyProbeConfig};
    pub use crate::infer_size::{probe_sizes, SizeEstimate, SizeProbeConfig};
    pub use crate::online::{probe_headroom, Headroom, ONLINE_PROBE_ID_BASE};
    pub use crate::pattern::{OpPhase, PatternStep, PriorityOrder, RuleKind, TangoPattern};
    pub use crate::probe::{
        compile_pattern, PatternProgram, PatternResult, ProbeSample, ProbingEngine, ProgramOp,
    };
}
