//! Algorithm 1 — the size-probing algorithm (§5.2).
//!
//! Three stages, implemented faithfully:
//!
//! 1. **Doubling insertion** — install rules in doubling batches, sending
//!    one probe packet per installed rule (so the cache holds no wasted
//!    slots), until the switch rejects an add (`ALL_TABLES_FULL`) or a
//!    configured cap is hit (switches with unbounded software tables
//!    never reject).
//! 2. **Clustering** — probe every installed rule once and cluster the
//!    RTTs; each cluster is one flow-table layer.
//! 3. **Sampling** — for each layer, repeatedly pick uniformly random
//!    rules and count consecutive probes whose RTT stays in that layer's
//!    cluster. The run lengths are negative-binomial; the MLE
//!    `p̂ = ΣX/(k+ΣX)` gives the layer's fraction of the `m` installed
//!    rules, hence its size `n̂ᵢ = m·p̂`.
//!
//! The total work is `O(n)` rule installations in `O(log n)` batches and
//! `O(n)` probe packets — asymptotically optimal, since any size probe
//! must install and exercise at least `n` rules.

use crate::cluster::{cluster_rtts, kmeans_auto, Clustering};
use crate::driver::{self, mismatch, InferenceDriver, ProbeError, Step};
use crate::pattern::RuleKind;
use crate::probe::ProbingEngine;
use crate::stats::nb_hit_probability;
use ofwire::flow_mod::FlowMod;
use serde::{Deserialize, Serialize};
use simnet::rng::DetRng;
use switchsim::control::{ControlOp, OpOutcome};

/// Which clustering method stage 2 uses (the ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// Gap-based splitting (default).
    Gaps,
    /// Elbow-selected 1-D k-means.
    KMeans,
}

/// Configuration for the size probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeProbeConfig {
    /// Trials per layer in stage 3 (the paper's
    /// `NUM_TRIALS_PER_ITERATION`). More trials → tighter estimate: the
    /// estimate's relative standard deviation is `(1-p)/sqrt(k·p)` for a
    /// layer holding fraction `p` of the installed rules, so the default
    /// of 600 keeps a half-full layer within the paper's 5 % headline.
    pub trials_per_level: usize,
    /// Upper bound on rules installed, for switches that never reject
    /// (unbounded software tables).
    pub max_flows: usize,
    /// Priority used for all probe rules (constant, so insertion cost is
    /// minimal and priority plays no role in caching during this probe).
    pub priority: u16,
    /// RNG seed for the random sampling stage.
    pub seed: u64,
    /// Clustering method for stage 2.
    pub cluster_method: ClusterMethod,
}

impl Default for SizeProbeConfig {
    fn default() -> SizeProbeConfig {
        SizeProbeConfig {
            trials_per_level: 600,
            max_flows: 8192,
            priority: 100,
            seed: 0x7a60,
            cluster_method: ClusterMethod::Gaps,
        }
    }
}

/// The estimate for one flow-table layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelEstimate {
    /// RTT cluster center (ms) — identifies the layer.
    pub rtt_ms: f64,
    /// Estimated number of rules resident in the layer.
    pub estimated_size: f64,
    /// Rules of the stage-2 sweep observed in this cluster (a cheap
    /// secondary estimate).
    pub swept_count: usize,
    /// True if a sampling trial ran `m` consecutive hits — the layer
    /// holds (essentially) every installed rule.
    pub saturated: bool,
}

/// The complete result of a size probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeEstimate {
    /// Rules successfully installed (`m`).
    pub m: usize,
    /// Whether the switch rejected an add (bounded total capacity) or the
    /// cap was reached (unbounded).
    pub hit_rejection: bool,
    /// Per-layer estimates, fastest first.
    pub levels: Vec<LevelEstimate>,
    /// The stage-2 clustering.
    pub clustering: Clustering,
    /// Total rule installations attempted.
    pub rules_attempted: usize,
    /// Total probe packets sent (all stages).
    pub packets_sent: usize,
    /// Number of doubling batches used in stage 1.
    pub batches: usize,
}

impl SizeEstimate {
    /// The estimated size of the fastest (hardware) layer.
    #[must_use]
    pub fn fast_layer_size(&self) -> Option<f64> {
        self.levels.first().map(|l| l.estimated_size)
    }
}

/// Which stage of Algorithm 1 the driver is in.
enum SizeState {
    /// Stage 1: a doubling add-batch is in flight.
    InsertBatch,
    /// Stage 1: per-installed-rule probes of the last batch are in
    /// flight (`left` remaining; the batch accepted `ok` and rejected
    /// `failed` adds).
    InsertProbes {
        left: usize,
        ok: usize,
        failed: usize,
    },
    /// Stage 2: sweep probes are in flight (`left` remaining).
    Sweep { left: usize },
    /// Stage 3: one sampling probe is in flight.
    Sample,
    /// Terminal (outcome already produced).
    Finished,
}

/// Algorithm 1 as a resumable state machine (see
/// [`driver`]). Issues exactly the operations — in
/// exactly the order and with exactly the RNG draws — of the original
/// synchronous implementation, so the estimate is bit-identical whether
/// the driver runs alone, through the [`probe_sizes`] adapter, or
/// interleaved with other switches' drivers in a fleet.
pub struct SizeDriver {
    kind: RuleKind,
    config: SizeProbeConfig,
    rng: DetRng,
    state: SizeState,
    // Stage 1 accounting.
    m: usize,
    x: usize,
    attempted: usize,
    packets: usize,
    batches: usize,
    hit_rejection: bool,
    // Stage 2.
    rtts: Vec<f64>,
    clustering: Clustering,
    // Stage 3.
    levels: Vec<LevelEstimate>,
    level: usize,
    runs: Vec<u64>,
    trial: usize,
    j: u64,
    saturated: bool,
}

impl SizeDriver {
    /// A driver probing with rules of `kind` under `config`.
    #[must_use]
    pub fn new(kind: RuleKind, config: SizeProbeConfig) -> SizeDriver {
        SizeDriver {
            kind,
            config,
            rng: DetRng::new(config.seed),
            state: SizeState::Finished,
            m: 0,
            x: 1,
            attempted: 0,
            packets: 0,
            batches: 0,
            hit_rejection: false,
            rtts: Vec::new(),
            clustering: Clustering::default(),
            levels: Vec::new(),
            level: 0,
            runs: Vec::new(),
            trial: 0,
            j: 0,
            saturated: false,
        }
    }

    /// Stage 1 scheduling: issue the next doubling batch, or fall
    /// through to stage 2 when insertion is over.
    fn next_batch_or_sweep(&mut self) -> Step<SizeEstimate> {
        while !self.hit_rejection && self.m < self.config.max_flows {
            let target = self.x.min(self.config.max_flows);
            if target > self.m {
                let fms: Vec<FlowMod> = (self.m..target)
                    .map(|i| FlowMod::add(self.kind.flow_match(i as u32), self.config.priority))
                    .collect();
                self.attempted += fms.len();
                self.batches += 1;
                self.state = SizeState::InsertBatch;
                return Step::Issue(vec![ControlOp::Batch(fms)]);
            }
            self.x *= 2;
        }
        self.start_sweep()
    }

    /// Stage 2: sweep every installed rule once, in shuffled order.
    fn start_sweep(&mut self) -> Step<SizeEstimate> {
        let mut order: Vec<u32> = (0..self.m as u32).collect();
        self.rng.shuffle(&mut order);
        if order.is_empty() {
            self.finish_sweep();
            return self.enter_level();
        }
        self.packets += order.len();
        self.state = SizeState::Sweep { left: order.len() };
        Step::Issue(
            order
                .into_iter()
                .map(|id| ControlOp::Probe(self.kind.key(id)))
                .collect(),
        )
    }

    /// Clusters the sweep RTTs (possibly empty).
    fn finish_sweep(&mut self) {
        self.clustering = match self.config.cluster_method {
            ClusterMethod::Gaps => cluster_rtts(&self.rtts),
            ClusterMethod::KMeans => kmeans_auto(&self.rtts, 4),
        };
    }

    /// Stage 3 scheduling: begin sampling the current level, record
    /// degenerate levels without probing, or finish.
    fn enter_level(&mut self) -> Step<SizeEstimate> {
        loop {
            if self.level >= self.clustering.k() {
                self.state = SizeState::Finished;
                return Step::Done(self.build());
            }
            self.saturated = false;
            if self.config.trials_per_level == 0 {
                // No trials: the level's estimate degenerates to
                // `m · p̂(∅) = 0`, with no packets spent.
                self.runs.clear();
                self.push_level();
                self.level += 1;
                continue;
            }
            self.runs.clear();
            self.trial = 0;
            self.j = 0;
            self.state = SizeState::Sample;
            return self.issue_sample();
        }
    }

    /// Draws the next sampling target and issues its probe. Sampling
    /// only runs when `m > 0` (otherwise stage 2 produced no clusters).
    fn issue_sample(&mut self) -> Step<SizeEstimate> {
        let id = self.rng.range_u64(0, self.m as u64) as u32;
        self.packets += 1;
        Step::Issue(vec![ControlOp::Probe(self.kind.key(id))])
    }

    /// Records the current level's estimate from its accumulated runs.
    fn push_level(&mut self) {
        let estimated_size = if self.saturated {
            self.m as f64
        } else {
            self.m as f64 * nb_hit_probability(&self.runs)
        };
        self.levels.push(LevelEstimate {
            rtt_ms: self.clustering.centers[self.level],
            estimated_size,
            swept_count: self.clustering.sizes[self.level],
            saturated: self.saturated,
        });
    }

    fn finish_level(&mut self) -> Step<SizeEstimate> {
        self.push_level();
        self.level += 1;
        self.enter_level()
    }

    fn build(&mut self) -> SizeEstimate {
        SizeEstimate {
            m: self.m,
            hit_rejection: self.hit_rejection,
            levels: std::mem::take(&mut self.levels),
            clustering: std::mem::take(&mut self.clustering),
            rules_attempted: self.attempted,
            packets_sent: self.packets,
            batches: self.batches,
        }
    }
}

impl InferenceDriver for SizeDriver {
    type Outcome = SizeEstimate;

    fn start(&mut self) -> Step<SizeEstimate> {
        self.next_batch_or_sweep()
    }

    fn on_completion(&mut self, c: &driver::Completion) -> Result<Step<SizeEstimate>, ProbeError> {
        match self.state {
            SizeState::InsertBatch => {
                let OpOutcome::Batch { ok, failed } = c.inner.outcome else {
                    return Err(mismatch(&"stage-1 add batch", c));
                };
                if ok > 0 {
                    // Sends are processed in order: the first `ok` adds
                    // of this batch succeeded; probe each once so the
                    // cache holds no wasted slots.
                    let ops: Vec<ControlOp> = (self.m..self.m + ok)
                        .map(|i| ControlOp::Probe(self.kind.key(i as u32)))
                        .collect();
                    self.packets += ok;
                    self.state = SizeState::InsertProbes {
                        left: ok,
                        ok,
                        failed,
                    };
                    Ok(Step::Issue(ops))
                } else {
                    Ok(self.finish_insert_round(ok, failed))
                }
            }
            SizeState::InsertProbes { left, ok, failed } => {
                let OpOutcome::Probe(_) = c.inner.outcome else {
                    return Err(mismatch(&"stage-1 warm-up probe", c));
                };
                if left == 1 {
                    Ok(self.finish_insert_round(ok, failed))
                } else {
                    self.state = SizeState::InsertProbes {
                        left: left - 1,
                        ok,
                        failed,
                    };
                    Ok(Step::Issue(vec![]))
                }
            }
            SizeState::Sweep { left } => {
                let OpOutcome::Probe(_) = c.inner.outcome else {
                    return Err(mismatch(&"stage-2 sweep probe", c));
                };
                self.rtts.push(c.elapsed_ms());
                if left == 1 {
                    self.finish_sweep();
                    Ok(self.enter_level())
                } else {
                    self.state = SizeState::Sweep { left: left - 1 };
                    Ok(Step::Issue(vec![]))
                }
            }
            SizeState::Sample => {
                let OpOutcome::Probe(_) = c.inner.outcome else {
                    return Err(mismatch(&"stage-3 sampling probe", c));
                };
                let rtt = c.elapsed_ms();
                if self.clustering.within(rtt, self.level) && (self.j as usize) < self.m {
                    self.j += 1;
                    Ok(self.issue_sample())
                } else if self.j as usize >= self.m {
                    // A full-length run: the layer holds (essentially)
                    // every installed rule.
                    self.saturated = true;
                    Ok(self.finish_level())
                } else {
                    self.runs.push(self.j);
                    self.trial += 1;
                    if self.trial < self.config.trials_per_level {
                        self.j = 0;
                        Ok(self.issue_sample())
                    } else {
                        Ok(self.finish_level())
                    }
                }
            }
            SizeState::Finished => Err(mismatch(&"no op in flight (driver finished)", c)),
        }
    }
}

impl SizeDriver {
    /// Stage-1 post-batch accounting, shared by the `ok == 0` shortcut
    /// and the last warm-up probe.
    fn finish_insert_round(&mut self, ok: usize, failed: usize) -> Step<SizeEstimate> {
        self.m += ok;
        if failed > 0 {
            self.hit_rejection = true;
        }
        self.x *= 2;
        self.next_batch_or_sweep()
    }
}

/// Runs Algorithm 1 against the engine's switch — the synchronous
/// adapter over [`SizeDriver`].
///
/// # Errors
/// [`ProbeError::CompletionMismatch`] if the transport violates its
/// completion contract.
pub fn probe_sizes(
    engine: &mut ProbingEngine<'_>,
    config: &SizeProbeConfig,
) -> Result<SizeEstimate, ProbeError> {
    let dpid = engine.dpid();
    let kind = engine.kind();
    driver::run_driver(engine.testbed_mut(), dpid, SizeDriver::new(kind, *config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RuleKind;
    use crate::stats::relative_error;
    use ofwire::types::Dpid;
    use switchsim::cache::CachePolicy;
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    fn run_probe(profile: SwitchProfile, kind: RuleKind, cfg: &SizeProbeConfig) -> SizeEstimate {
        let mut tb = Testbed::new(5);
        let dpid = Dpid(1);
        tb.attach_default(dpid, profile);
        let mut eng = ProbingEngine::new(&mut tb, dpid, kind);
        probe_sizes(&mut eng, cfg).expect("size probe completes")
    }

    #[test]
    fn tcam_only_switch_size_is_exact() {
        // Switch #2: rejection happens at exactly 2560; every rule is in
        // the single (fast) layer, so the estimate saturates at m = 2560.
        let est = run_probe(
            SwitchProfile::vendor2(),
            RuleKind::L3,
            &SizeProbeConfig {
                trials_per_level: 32,
                ..SizeProbeConfig::default()
            },
        );
        assert!(est.hit_rejection);
        assert_eq!(est.m, 2560);
        assert_eq!(est.levels.len(), 1);
        assert_eq!(est.levels[0].estimated_size, 2560.0);
        assert!(est.levels[0].saturated);
    }

    #[test]
    fn fifo_cached_switch_within_five_percent() {
        // A generic FIFO-cached switch with a 512-entry TCAM and
        // unbounded software: Algorithm 1 stops at the cap, clusters two
        // layers, and the fast-layer estimate lands within 5 %.
        let cfg = SizeProbeConfig {
            max_flows: 1024,
            ..SizeProbeConfig::default()
        };
        let est = run_probe(
            SwitchProfile::generic_cached(512, CachePolicy::fifo()),
            RuleKind::L3,
            &cfg,
        );
        assert!(!est.hit_rejection);
        assert_eq!(est.m, 1024);
        assert_eq!(
            est.levels.len(),
            2,
            "clusters: {:?}",
            est.clustering.centers
        );
        let err = relative_error(est.levels[0].estimated_size, 512.0);
        assert!(
            err < 0.05,
            "fast layer {} should be within 5% of 512 (err {err:.3})",
            est.levels[0].estimated_size
        );
        // The stage-2 sweep count is exact in simulation.
        assert_eq!(est.levels[0].swept_count, 512);
    }

    #[test]
    fn lru_cached_switch_within_five_percent() {
        // LRU churns membership during sampling; the estimator is built
        // for exactly that (hits don't change membership, misses end the
        // trial).
        let cfg = SizeProbeConfig {
            max_flows: 600,
            seed: 0x7a63,
            ..SizeProbeConfig::default()
        };
        let est = run_probe(
            SwitchProfile::generic_cached(300, CachePolicy::lru()),
            RuleKind::L3,
            &cfg,
        );
        let err = relative_error(est.levels[0].estimated_size, 300.0);
        assert!(
            err < 0.05,
            "estimate {} err {err:.3}",
            est.levels[0].estimated_size
        );
    }

    #[test]
    fn ovs_reports_single_unbounded_layer() {
        // Every probe during stage 1 clones a kernel microflow, so all
        // sweep probes are fast-path: one cluster, saturated at the cap.
        let cfg = SizeProbeConfig {
            max_flows: 256,
            trials_per_level: 16,
            ..SizeProbeConfig::default()
        };
        let est = run_probe(SwitchProfile::ovs(), RuleKind::L3, &cfg);
        assert!(!est.hit_rejection);
        assert_eq!(est.levels.len(), 1);
        assert!(est.levels[0].saturated);
        assert_eq!(est.levels[0].estimated_size, 256.0);
    }

    #[test]
    fn probing_cost_is_linear_with_log_batches() {
        let cfg = SizeProbeConfig {
            max_flows: 1024,
            trials_per_level: 64,
            ..SizeProbeConfig::default()
        };
        let est = run_probe(
            SwitchProfile::generic_cached(256, CachePolicy::fifo()),
            RuleKind::L3,
            &cfg,
        );
        // Stage 1 installs exactly m rules in ~log2(m) batches.
        assert_eq!(est.rules_attempted, 1024);
        assert!(est.batches <= 12, "batches {}", est.batches);
        // Packets: one per install + one per sweep + sampling runs. The
        // sampling stage is O(k · E[run]) = O(m); assert a generous
        // linear bound.
        assert!(
            est.packets_sent < 8 * est.m + 16 * cfg.trials_per_level,
            "packets {} not linear in m {}",
            est.packets_sent,
            est.m
        );
    }

    #[test]
    fn kmeans_method_agrees_with_gaps() {
        let base = SizeProbeConfig {
            max_flows: 512,
            ..SizeProbeConfig::default()
        };
        let gaps = run_probe(
            SwitchProfile::generic_cached(200, CachePolicy::fifo()),
            RuleKind::L3,
            &base,
        );
        let km = run_probe(
            SwitchProfile::generic_cached(200, CachePolicy::fifo()),
            RuleKind::L3,
            &SizeProbeConfig {
                cluster_method: ClusterMethod::KMeans,
                ..base
            },
        );
        assert_eq!(gaps.levels.len(), km.levels.len());
        let e1 = gaps.levels[0].estimated_size;
        let e2 = km.levels[0].estimated_size;
        assert!(
            relative_error(e1, 200.0) < 0.08 && relative_error(e2, 200.0) < 0.08,
            "gaps {e1}, kmeans {e2}"
        );
    }

    #[test]
    fn width_sensitivity_table1_row() {
        // Probing Switch #3 with L3-only vs combined rules recovers the
        // 767 / 369 Table-1 row from pure black-box measurements.
        let cfg = SizeProbeConfig {
            trials_per_level: 16,
            ..SizeProbeConfig::default()
        };
        let l3 = run_probe(SwitchProfile::vendor3(), RuleKind::L3, &cfg);
        let l2l3 = run_probe(SwitchProfile::vendor3(), RuleKind::L2L3, &cfg);
        assert_eq!(l3.m, 767);
        assert_eq!(l2l3.m, 369);
    }
}
