//! Algorithm 1 — the size-probing algorithm (§5.2).
//!
//! Three stages, implemented faithfully:
//!
//! 1. **Doubling insertion** — install rules in doubling batches, sending
//!    one probe packet per installed rule (so the cache holds no wasted
//!    slots), until the switch rejects an add (`ALL_TABLES_FULL`) or a
//!    configured cap is hit (switches with unbounded software tables
//!    never reject).
//! 2. **Clustering** — probe every installed rule once and cluster the
//!    RTTs; each cluster is one flow-table layer.
//! 3. **Sampling** — for each layer, repeatedly pick uniformly random
//!    rules and count consecutive probes whose RTT stays in that layer's
//!    cluster. The run lengths are negative-binomial; the MLE
//!    `p̂ = ΣX/(k+ΣX)` gives the layer's fraction of the `m` installed
//!    rules, hence its size `n̂ᵢ = m·p̂`.
//!
//! The total work is `O(n)` rule installations in `O(log n)` batches and
//! `O(n)` probe packets — asymptotically optimal, since any size probe
//! must install and exercise at least `n` rules.

use crate::cluster::{cluster_rtts, kmeans_auto, Clustering};
use crate::probe::ProbingEngine;
use crate::stats::nb_hit_probability;
use ofwire::flow_mod::FlowMod;
use serde::{Deserialize, Serialize};
use simnet::rng::DetRng;

/// Which clustering method stage 2 uses (the ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// Gap-based splitting (default).
    Gaps,
    /// Elbow-selected 1-D k-means.
    KMeans,
}

/// Configuration for the size probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeProbeConfig {
    /// Trials per layer in stage 3 (the paper's
    /// `NUM_TRIALS_PER_ITERATION`). More trials → tighter estimate: the
    /// estimate's relative standard deviation is `(1-p)/sqrt(k·p)` for a
    /// layer holding fraction `p` of the installed rules, so the default
    /// of 600 keeps a half-full layer within the paper's 5 % headline.
    pub trials_per_level: usize,
    /// Upper bound on rules installed, for switches that never reject
    /// (unbounded software tables).
    pub max_flows: usize,
    /// Priority used for all probe rules (constant, so insertion cost is
    /// minimal and priority plays no role in caching during this probe).
    pub priority: u16,
    /// RNG seed for the random sampling stage.
    pub seed: u64,
    /// Clustering method for stage 2.
    pub cluster_method: ClusterMethod,
}

impl Default for SizeProbeConfig {
    fn default() -> SizeProbeConfig {
        SizeProbeConfig {
            trials_per_level: 600,
            max_flows: 8192,
            priority: 100,
            seed: 0x7a60,
            cluster_method: ClusterMethod::Gaps,
        }
    }
}

/// The estimate for one flow-table layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelEstimate {
    /// RTT cluster center (ms) — identifies the layer.
    pub rtt_ms: f64,
    /// Estimated number of rules resident in the layer.
    pub estimated_size: f64,
    /// Rules of the stage-2 sweep observed in this cluster (a cheap
    /// secondary estimate).
    pub swept_count: usize,
    /// True if a sampling trial ran `m` consecutive hits — the layer
    /// holds (essentially) every installed rule.
    pub saturated: bool,
}

/// The complete result of a size probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeEstimate {
    /// Rules successfully installed (`m`).
    pub m: usize,
    /// Whether the switch rejected an add (bounded total capacity) or the
    /// cap was reached (unbounded).
    pub hit_rejection: bool,
    /// Per-layer estimates, fastest first.
    pub levels: Vec<LevelEstimate>,
    /// The stage-2 clustering.
    pub clustering: Clustering,
    /// Total rule installations attempted.
    pub rules_attempted: usize,
    /// Total probe packets sent (all stages).
    pub packets_sent: usize,
    /// Number of doubling batches used in stage 1.
    pub batches: usize,
}

impl SizeEstimate {
    /// The estimated size of the fastest (hardware) layer.
    #[must_use]
    pub fn fast_layer_size(&self) -> Option<f64> {
        self.levels.first().map(|l| l.estimated_size)
    }
}

/// Runs Algorithm 1 against the engine's switch.
pub fn probe_sizes(engine: &mut ProbingEngine<'_>, config: &SizeProbeConfig) -> SizeEstimate {
    let mut rng = DetRng::new(config.seed);
    let kind = engine.kind();
    let dpid = engine.dpid();

    // ---- Stage 1: doubling insertion, one probe packet per rule. ----
    let mut m: usize = 0; // rules successfully installed
    let mut attempted = 0;
    let mut packets = 0;
    let mut batches = 0;
    let mut hit_rejection = false;
    let mut x: usize = 1;
    while !hit_rejection && m < config.max_flows {
        let target = x.min(config.max_flows);
        if target > m {
            let fms: Vec<FlowMod> = (m..target)
                .map(|i| FlowMod::add(kind.flow_match(i as u32), config.priority))
                .collect();
            attempted += fms.len();
            batches += 1;
            let (ok, failed, _elapsed) = engine.testbed_mut().batch(dpid, fms);
            // Sends are processed in order: the first `ok` adds of this
            // batch succeeded.
            for i in m..m + ok {
                engine.probe_one(i as u32);
                packets += 1;
            }
            m += ok;
            if failed > 0 {
                hit_rejection = true;
                break;
            }
        }
        x *= 2;
    }

    // ---- Stage 2: sweep every rule once (shuffled), cluster RTTs. ----
    let mut order: Vec<u32> = (0..m as u32).collect();
    rng.shuffle(&mut order);
    let mut rtts = Vec::with_capacity(m);
    for id in order {
        let s = engine.probe_one(id);
        packets += 1;
        rtts.push(s.rtt_ms);
    }
    let clustering = match config.cluster_method {
        ClusterMethod::Gaps => cluster_rtts(&rtts),
        ClusterMethod::KMeans => kmeans_auto(&rtts, 4),
    };

    // ---- Stage 3: per-layer negative-binomial sampling. ----
    let mut levels = Vec::new();
    for level in 0..clustering.k() {
        let mut runs: Vec<u64> = Vec::with_capacity(config.trials_per_level);
        let mut saturated = false;
        for _ in 0..config.trials_per_level {
            let mut j: u64 = 0;
            loop {
                let id = rng.range_u64(0, m as u64) as u32;
                let s = engine.probe_one(id);
                packets += 1;
                if clustering.within(s.rtt_ms, level) && (j as usize) < m {
                    j += 1;
                } else {
                    break;
                }
            }
            if j as usize >= m {
                saturated = true;
                break;
            }
            runs.push(j);
        }
        let estimated_size = if saturated {
            m as f64
        } else {
            m as f64 * nb_hit_probability(&runs)
        };
        levels.push(LevelEstimate {
            rtt_ms: clustering.centers[level],
            estimated_size,
            swept_count: clustering.sizes[level],
            saturated,
        });
    }

    SizeEstimate {
        m,
        hit_rejection,
        levels,
        clustering,
        rules_attempted: attempted,
        packets_sent: packets,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RuleKind;
    use crate::stats::relative_error;
    use ofwire::types::Dpid;
    use switchsim::cache::CachePolicy;
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    fn run_probe(profile: SwitchProfile, kind: RuleKind, cfg: &SizeProbeConfig) -> SizeEstimate {
        let mut tb = Testbed::new(5);
        let dpid = Dpid(1);
        tb.attach_default(dpid, profile);
        let mut eng = ProbingEngine::new(&mut tb, dpid, kind);
        probe_sizes(&mut eng, cfg)
    }

    #[test]
    fn tcam_only_switch_size_is_exact() {
        // Switch #2: rejection happens at exactly 2560; every rule is in
        // the single (fast) layer, so the estimate saturates at m = 2560.
        let est = run_probe(
            SwitchProfile::vendor2(),
            RuleKind::L3,
            &SizeProbeConfig {
                trials_per_level: 32,
                ..SizeProbeConfig::default()
            },
        );
        assert!(est.hit_rejection);
        assert_eq!(est.m, 2560);
        assert_eq!(est.levels.len(), 1);
        assert_eq!(est.levels[0].estimated_size, 2560.0);
        assert!(est.levels[0].saturated);
    }

    #[test]
    fn fifo_cached_switch_within_five_percent() {
        // A generic FIFO-cached switch with a 512-entry TCAM and
        // unbounded software: Algorithm 1 stops at the cap, clusters two
        // layers, and the fast-layer estimate lands within 5 %.
        let cfg = SizeProbeConfig {
            max_flows: 1024,
            ..SizeProbeConfig::default()
        };
        let est = run_probe(
            SwitchProfile::generic_cached(512, CachePolicy::fifo()),
            RuleKind::L3,
            &cfg,
        );
        assert!(!est.hit_rejection);
        assert_eq!(est.m, 1024);
        assert_eq!(
            est.levels.len(),
            2,
            "clusters: {:?}",
            est.clustering.centers
        );
        let err = relative_error(est.levels[0].estimated_size, 512.0);
        assert!(
            err < 0.05,
            "fast layer {} should be within 5% of 512 (err {err:.3})",
            est.levels[0].estimated_size
        );
        // The stage-2 sweep count is exact in simulation.
        assert_eq!(est.levels[0].swept_count, 512);
    }

    #[test]
    fn lru_cached_switch_within_five_percent() {
        // LRU churns membership during sampling; the estimator is built
        // for exactly that (hits don't change membership, misses end the
        // trial).
        let cfg = SizeProbeConfig {
            max_flows: 600,
            seed: 0x7a63,
            ..SizeProbeConfig::default()
        };
        let est = run_probe(
            SwitchProfile::generic_cached(300, CachePolicy::lru()),
            RuleKind::L3,
            &cfg,
        );
        let err = relative_error(est.levels[0].estimated_size, 300.0);
        assert!(
            err < 0.05,
            "estimate {} err {err:.3}",
            est.levels[0].estimated_size
        );
    }

    #[test]
    fn ovs_reports_single_unbounded_layer() {
        // Every probe during stage 1 clones a kernel microflow, so all
        // sweep probes are fast-path: one cluster, saturated at the cap.
        let cfg = SizeProbeConfig {
            max_flows: 256,
            trials_per_level: 16,
            ..SizeProbeConfig::default()
        };
        let est = run_probe(SwitchProfile::ovs(), RuleKind::L3, &cfg);
        assert!(!est.hit_rejection);
        assert_eq!(est.levels.len(), 1);
        assert!(est.levels[0].saturated);
        assert_eq!(est.levels[0].estimated_size, 256.0);
    }

    #[test]
    fn probing_cost_is_linear_with_log_batches() {
        let cfg = SizeProbeConfig {
            max_flows: 1024,
            trials_per_level: 64,
            ..SizeProbeConfig::default()
        };
        let est = run_probe(
            SwitchProfile::generic_cached(256, CachePolicy::fifo()),
            RuleKind::L3,
            &cfg,
        );
        // Stage 1 installs exactly m rules in ~log2(m) batches.
        assert_eq!(est.rules_attempted, 1024);
        assert!(est.batches <= 12, "batches {}", est.batches);
        // Packets: one per install + one per sweep + sampling runs. The
        // sampling stage is O(k · E[run]) = O(m); assert a generous
        // linear bound.
        assert!(
            est.packets_sent < 8 * est.m + 16 * cfg.trials_per_level,
            "packets {} not linear in m {}",
            est.packets_sent,
            est.m
        );
    }

    #[test]
    fn kmeans_method_agrees_with_gaps() {
        let base = SizeProbeConfig {
            max_flows: 512,
            ..SizeProbeConfig::default()
        };
        let gaps = run_probe(
            SwitchProfile::generic_cached(200, CachePolicy::fifo()),
            RuleKind::L3,
            &base,
        );
        let km = run_probe(
            SwitchProfile::generic_cached(200, CachePolicy::fifo()),
            RuleKind::L3,
            &SizeProbeConfig {
                cluster_method: ClusterMethod::KMeans,
                ..base
            },
        );
        assert_eq!(gaps.levels.len(), km.levels.len());
        let e1 = gaps.levels[0].estimated_size;
        let e2 = km.levels[0].estimated_size;
        assert!(
            relative_error(e1, 200.0) < 0.08 && relative_error(e2, 200.0) < 0.08,
            "gaps {e1}, kmeans {e2}"
        );
    }

    #[test]
    fn width_sensitivity_table1_row() {
        // Probing Switch #3 with L3-only vs combined rules recovers the
        // 767 / 369 Table-1 row from pure black-box measurements.
        let cfg = SizeProbeConfig {
            trials_per_level: 16,
            ..SizeProbeConfig::default()
        };
        let l3 = run_probe(SwitchProfile::vendor3(), RuleKind::L3, &cfg);
        let l2l3 = run_probe(SwitchProfile::vendor3(), RuleKind::L2L3, &cfg);
        assert_eq!(l3.m, 767);
        assert_eq!(l2l3.m, 369);
    }
}
