//! The probing engine: executes Tango patterns against a switch and
//! collects measurements (§4, "Probing Engine").
//!
//! Consecutive flow-mods are pipelined into one barriered batch — exactly
//! the paper's measurement methodology — and each [`PatternStep::Probe`]
//! sends a real data packet and records its RTT.
//!
//! A pattern is first *compiled* into a [`PatternProgram`] — the exact
//! sequence of control-path operations it issues — and then driven
//! through the [`ControlPath`] abstraction one completion at a time.
//! [`ProbingEngine::run`] drives a single program synchronously; the
//! [`concurrent`](crate::concurrent) module drives one program per
//! switch, interleaved in the same virtual time.

use crate::driver::{self, InferenceDriver, ProbeError, Step};
use crate::pattern::{PatternStep, RuleKind, TangoPattern};
use ofwire::action::Action;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::time::SimDuration;
use switchsim::control::{ControlOp, ControlPath, OpOutcome};
use switchsim::harness::Testbed;
use switchsim::pipeline::Hit;

/// One timed segment of a pattern run (a barriered flow-mod batch).
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Operations in the batch.
    pub ops: usize,
    /// Rejected operations (table full).
    pub rejected: usize,
    /// Wall-clock (virtual) time the batch took, barrier included.
    pub elapsed: SimDuration,
}

/// One probe measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// Probe-flow id.
    pub id: u32,
    /// Where the packet was served.
    pub hit: Hit,
    /// Measured round-trip time in milliseconds.
    pub rtt_ms: f64,
}

/// The full result of running one pattern.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PatternResult {
    /// Timed flow-mod segments, in order.
    pub segments: Vec<Segment>,
    /// Probe measurements, in order.
    pub probes: Vec<ProbeSample>,
}

impl PatternResult {
    /// Total time spent in flow-mod segments.
    #[must_use]
    pub fn install_time(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.elapsed)
    }

    /// Total rejected operations.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.segments.iter().map(|s| s.rejected).sum()
    }

    /// Probe RTTs in milliseconds, in probe order.
    #[must_use]
    pub fn rtts_ms(&self) -> Vec<f64> {
        self.probes.iter().map(|p| p.rtt_ms).collect()
    }
}

/// One control-path operation of a compiled pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramOp {
    /// A barriered batch of flow-mods (consecutive pattern mods,
    /// pipelined per the paper's measurement methodology).
    Batch(Vec<FlowMod>),
    /// A data-plane probe for flow `id`.
    Probe(u32),
}

/// A pattern compiled to the exact control-path operations it issues.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternProgram {
    /// Match kind of the probe rules.
    pub kind: RuleKind,
    /// Operations, in issue order.
    pub ops: Vec<ProgramOp>,
}

/// Compiles a pattern: consecutive flow-mods coalesce into one barriered
/// batch, flushed before every probe or explicit barrier.
#[must_use]
pub fn compile_pattern(pattern: &TangoPattern) -> PatternProgram {
    let kind = pattern.kind;
    let mut ops = Vec::new();
    let mut pending: Vec<FlowMod> = Vec::new();
    for step in &pattern.steps {
        if let Some(fm) = flow_mod_for(kind, step) {
            pending.push(fm);
            continue;
        }
        if !pending.is_empty() {
            ops.push(ProgramOp::Batch(std::mem::take(&mut pending)));
        }
        if let PatternStep::Probe { id } = step {
            ops.push(ProgramOp::Probe(*id));
        }
    }
    if !pending.is_empty() {
        ops.push(ProgramOp::Batch(pending));
    }
    PatternProgram { kind, ops }
}

fn flow_mod_for(kind: RuleKind, step: &PatternStep) -> Option<FlowMod> {
    match *step {
        PatternStep::Add { id, priority } => Some(FlowMod::add(kind.flow_match(id), priority)),
        PatternStep::Modify {
            id,
            priority,
            out_port,
        } => Some(FlowMod::modify_strict(
            kind.flow_match(id),
            priority,
            vec![Action::output(out_port)],
        )),
        PatternStep::Delete { id, priority } => {
            Some(FlowMod::delete_strict(kind.flow_match(id), priority))
        }
        PatternStep::Probe { .. } | PatternStep::Barrier => None,
    }
}

/// Converts one program op into the control-path operation to submit.
pub(crate) fn to_control_op(kind: RuleKind, op: &ProgramOp) -> ControlOp {
    match op {
        ProgramOp::Batch(fms) => ControlOp::Batch(fms.clone()),
        ProgramOp::Probe(id) => ControlOp::Probe(kind.key(*id)),
    }
}

/// Folds one completion into a [`PatternResult`]. `ops` is the batch
/// size (for segment accounting) and `issued_at` the controller-side
/// ready time the op was submitted with. A completion whose outcome does
/// not match the issued op's shape is a control-path contract violation,
/// reported as [`ProbeError::CompletionMismatch`].
pub(crate) fn record_completion(
    result: &mut PatternResult,
    op: &ProgramOp,
    issued_at: simnet::time::SimTime,
    c: &switchsim::control::Completion,
) -> Result<(), ProbeError> {
    match (op, c.outcome) {
        (ProgramOp::Batch(fms), OpOutcome::Batch { failed, .. }) => {
            result.segments.push(Segment {
                ops: fms.len(),
                rejected: failed,
                elapsed: c.acked_at.since(issued_at),
            });
            Ok(())
        }
        (ProgramOp::Probe(id), OpOutcome::Probe(hit)) => {
            result.probes.push(ProbeSample {
                id: *id,
                hit,
                rtt_ms: c.acked_at.since(issued_at).as_millis_f64(),
            });
            Ok(())
        }
        (op, outcome) => Err(ProbeError::CompletionMismatch {
            expected: format!("{op:?}"),
            got: format!("{outcome:?}"),
        }),
    }
}

/// The trivial inference driver: executes one compiled pattern program,
/// folding each completion into a [`PatternResult`]. All ops are issued
/// up front; the runner paces them one completion at a time.
pub struct PatternDriver {
    program: PatternProgram,
    cursor: usize,
    result: PatternResult,
}

impl PatternDriver {
    /// Wraps a compiled program.
    #[must_use]
    pub fn new(program: PatternProgram) -> PatternDriver {
        PatternDriver {
            program,
            cursor: 0,
            result: PatternResult::default(),
        }
    }

    /// Compiles and wraps a pattern.
    #[must_use]
    pub fn for_pattern(pattern: &TangoPattern) -> PatternDriver {
        PatternDriver::new(compile_pattern(pattern))
    }
}

impl InferenceDriver for PatternDriver {
    type Outcome = PatternResult;

    fn start(&mut self) -> Step<PatternResult> {
        if self.program.ops.is_empty() {
            return Step::Done(std::mem::take(&mut self.result));
        }
        Step::Issue(
            self.program
                .ops
                .iter()
                .map(|op| to_control_op(self.program.kind, op))
                .collect(),
        )
    }

    fn on_completion(&mut self, c: &driver::Completion) -> Result<Step<PatternResult>, ProbeError> {
        let op = &self.program.ops[self.cursor];
        record_completion(&mut self.result, op, c.issued_at, &c.inner)?;
        self.cursor += 1;
        if self.cursor == self.program.ops.len() {
            Ok(Step::Done(std::mem::take(&mut self.result)))
        } else {
            Ok(Step::Issue(vec![]))
        }
    }
}

/// The probing engine, bound to one switch of a testbed.
pub struct ProbingEngine<'a> {
    tb: &'a mut Testbed,
    dpid: Dpid,
    kind: RuleKind,
}

impl<'a> ProbingEngine<'a> {
    /// Binds the engine to `dpid`, probing with rules of `kind`.
    pub fn new(tb: &'a mut Testbed, dpid: Dpid, kind: RuleKind) -> ProbingEngine<'a> {
        ProbingEngine { tb, dpid, kind }
    }

    /// The testbed (for direct inspection in tests).
    #[must_use]
    pub fn testbed(&self) -> &Testbed {
        self.tb
    }

    /// Mutable access to the testbed.
    pub fn testbed_mut(&mut self) -> &mut Testbed {
        self.tb
    }

    /// The bound switch.
    #[must_use]
    pub fn dpid(&self) -> Dpid {
        self.dpid
    }

    /// The probe-rule kind in use.
    #[must_use]
    pub fn kind(&self) -> RuleKind {
        self.kind
    }

    /// Runs a pattern to completion: compiles it and drives the program
    /// through the control path as a [`PatternDriver`], one op per
    /// completion.
    ///
    /// # Errors
    /// [`ProbeError::PatternKindMismatch`] if the pattern's rule kind is
    /// not the engine's; [`ProbeError::CompletionMismatch`] if the
    /// transport violates its completion contract.
    pub fn run(&mut self, pattern: &TangoPattern) -> Result<PatternResult, ProbeError> {
        if pattern.kind != self.kind {
            return Err(ProbeError::PatternKindMismatch {
                pattern: pattern.kind,
                engine: self.kind,
            });
        }
        driver::run_driver(self.tb, self.dpid, PatternDriver::for_pattern(pattern))
    }

    /// Issues one barriered batch through the control path, waiting for
    /// its completion. Returns `(accepted, rejected, elapsed)`.
    pub fn run_batch(&mut self, fms: Vec<FlowMod>) -> (usize, usize, SimDuration) {
        let issued_at = ControlPath::now(self.tb);
        let token = self.tb.submit(self.dpid, ControlOp::Batch(fms), issued_at);
        let c = self.tb.wait_for(token);
        self.tb.warp_to(c.acked_at);
        match c.outcome {
            OpOutcome::Batch { ok, failed } => (ok, failed, c.acked_at.since(issued_at)),
            _ => unreachable!("batch submit yields a batch outcome"),
        }
    }

    /// Installs one probe rule immediately (no batching); returns whether
    /// it was accepted.
    pub fn install_one(&mut self, id: u32, priority: u16) -> bool {
        let fm = FlowMod::add(self.kind.flow_match(id), priority);
        matches!(
            self.tb.flow_mod(self.dpid, fm).0,
            switchsim::harness::OpResult::Ok
        )
    }

    /// Sends one probe packet for flow `id`, returning the sample.
    pub fn probe_one(&mut self, id: u32) -> ProbeSample {
        let (hit, rtt) = self.tb.probe(self.dpid, &self.kind.key(id));
        ProbeSample {
            id,
            hit,
            rtt_ms: rtt.as_millis_f64(),
        }
    }

    /// Measures the control channel's round-trip time with `samples`
    /// echo probes, returning the RTTs in milliseconds. Separating the
    /// channel RTT from rule-processing time is what lets the latency
    /// curves attribute costs to the switch itself.
    pub fn measure_control_rtt(&mut self, samples: usize) -> Vec<f64> {
        (0..samples)
            .map(|_| self.tb.echo(self.dpid, 32).as_millis_f64())
            .collect()
    }

    /// Removes every rule from the switch (pattern cleanup).
    pub fn clear_rules(&mut self) {
        self.tb.flow_mod(self.dpid, FlowMod::delete_all());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PriorityOrder;
    use switchsim::profiles::SwitchProfile;

    fn engine_on(profile: SwitchProfile) -> (Testbed, Dpid) {
        let mut tb = Testbed::new(11);
        let dpid = Dpid(1);
        tb.attach_default(dpid, profile);
        (tb, dpid)
    }

    #[test]
    fn run_priority_pattern_installs_rules() {
        let (mut tb, dpid) = engine_on(SwitchProfile::ovs());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let pat = TangoPattern::priority_insertion(50, PriorityOrder::Ascending, RuleKind::L3);
        let res = eng.run(&pat).expect("pattern runs");
        assert_eq!(res.segments.len(), 1);
        assert_eq!(res.segments[0].ops, 50);
        assert_eq!(res.rejected(), 0);
        assert!(res.install_time() > SimDuration::ZERO);
        assert_eq!(tb.switch(dpid).rule_count(), 50);
    }

    #[test]
    fn descending_costs_more_than_ascending_on_hardware() {
        let run_order = |order| {
            let (mut tb, dpid) = engine_on(SwitchProfile::vendor1());
            let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
            let pat = TangoPattern::priority_insertion(500, order, RuleKind::L3);
            eng.run(&pat).expect("pattern runs").install_time()
        };
        let asc = run_order(PriorityOrder::Ascending);
        let desc = run_order(PriorityOrder::Descending);
        assert!(
            desc.as_millis_f64() > 3.0 * asc.as_millis_f64(),
            "desc {desc} should far exceed asc {asc}"
        );
    }

    #[test]
    fn probes_flush_pending_mods_first() {
        let (mut tb, dpid) = engine_on(SwitchProfile::vendor2());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let pat = TangoPattern {
            name: "add-then-probe".into(),
            kind: RuleKind::L3,
            steps: vec![
                PatternStep::Add { id: 1, priority: 5 },
                PatternStep::Probe { id: 1 },
            ],
        };
        let res = eng.run(&pat).expect("pattern runs");
        assert_eq!(res.segments.len(), 1);
        assert_eq!(res.probes.len(), 1);
        assert!(
            matches!(res.probes[0].hit, Hit::Table { level: 0, .. }),
            "the probe must see the rule already installed"
        );
    }

    #[test]
    fn rejections_surface_in_segments() {
        let (mut tb, dpid) = engine_on(SwitchProfile::vendor3());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L2L3);
        let pat = TangoPattern::priority_insertion(400, PriorityOrder::Same, RuleKind::L2L3);
        let res = eng.run(&pat).expect("pattern runs");
        assert_eq!(res.rejected(), 400 - 369);
    }

    #[test]
    fn clear_rules_empties_switch() {
        let (mut tb, dpid) = engine_on(SwitchProfile::ovs());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        for i in 0..10 {
            assert!(eng.install_one(i, 5));
        }
        eng.clear_rules();
        assert_eq!(tb.switch(dpid).rule_count(), 0);
    }

    #[test]
    fn probe_one_reports_miss_for_unknown_flow() {
        let (mut tb, dpid) = engine_on(SwitchProfile::vendor2());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let s = eng.probe_one(9999);
        assert_eq!(s.hit, Hit::Miss);
        assert!(s.rtt_ms > 5.0, "controller path RTT, got {}", s.rtt_ms);
    }
}

#[cfg(test)]
mod echo_tests {
    use super::*;
    use simnet::trace::Summary;
    use switchsim::profiles::SwitchProfile;

    #[test]
    fn control_rtt_reflects_the_channel_not_the_tables() {
        let mut tb = Testbed::new(77);
        let dpid = Dpid(1);
        tb.attach(
            dpid,
            SwitchProfile::vendor1(),
            simnet::link::Link::control_channel(1.5),
        );
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let rtts = eng.measure_control_rtt(200);
        let s = Summary::of(rtts);
        // Two crossings of a ~1.5 ms one-way channel.
        assert!((s.mean - 3.0).abs() < 0.3, "mean {}", s.mean);
        // Installing rules must not change the echo RTT.
        for i in 0..500 {
            eng.install_one(i, 10);
        }
        let s2 = Summary::of(eng.measure_control_rtt(200));
        assert!((s2.mean - s.mean).abs() < 0.2, "{} vs {}", s2.mean, s.mean);
    }
}
