//! Latency-curve measurement: the per-operation cost profiles the Tango
//! scheduler's pattern oracle is driven by (§3 Figs 3a–3c, §6).
//!
//! A [`LatencyProfile`] summarizes, for one switch, the measured
//! per-operation costs of adds under each priority ordering, of
//! modifies, and of deletes — plus a fitted per-shift cost that lets the
//! scheduler extrapolate add costs to other batch sizes (the "Tango
//! latency curves" used for guard-time estimation).

use crate::driver::ProbeError;
use crate::pattern::{PriorityOrder, TangoPattern};
use crate::probe::ProbingEngine;
use serde::{Deserialize, Serialize};

/// Measured per-op latency profile of one switch (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Batch size the profile was calibrated at.
    pub calibrated_n: usize,
    /// Per-add cost, ascending-priority insertion.
    pub add_asc_ms: f64,
    /// Per-add cost, descending-priority insertion.
    pub add_desc_ms: f64,
    /// Per-add cost, constant-priority insertion.
    pub add_same_ms: f64,
    /// Per-add cost, random-priority insertion.
    pub add_rand_ms: f64,
    /// Per-modify cost.
    pub mod_ms: f64,
    /// Per-delete cost.
    pub del_ms: f64,
    /// Fitted cost of shifting one TCAM entry (µs), derived from the
    /// descending-vs-ascending gap: `desc_total − asc_total ≈
    /// shift_us · n²/2`.
    pub shift_us: f64,
}

impl LatencyProfile {
    /// Whether installation order measurably matters on this switch
    /// (OVS: no; hardware: yes — Fig 3c).
    #[must_use]
    pub fn priority_sensitive(&self) -> bool {
        self.add_desc_ms > 1.5 * self.add_asc_ms
    }

    /// Predicted total time (ms) to add `n` rules under an ordering.
    #[must_use]
    pub fn predict_add_total_ms(&self, n: usize, order: PriorityOrder) -> f64 {
        let base = self.add_asc_ms * n as f64;
        let shifts = match order {
            PriorityOrder::Ascending | PriorityOrder::Same => 0.0,
            PriorityOrder::Descending => (n as f64).powi(2) / 2.0,
            PriorityOrder::Random(_) => (n as f64).powi(2) / 4.0,
        };
        base + self.shift_us / 1000.0 * shifts
    }

    /// Predicted total time (ms) for a mixed batch issued in the
    /// scheduler's canonical (del, mod, ascending-add) order.
    #[must_use]
    pub fn predict_batch_ms(&self, adds: usize, mods: usize, dels: usize) -> f64 {
        self.del_ms * dels as f64
            + self.mod_ms * mods as f64
            + self.predict_add_total_ms(adds, PriorityOrder::Ascending)
    }
}

/// Measures a latency profile by running priority-insertion, modify, and
/// delete patterns of size `n` against the switch. Clears the switch's
/// rules between arms.
///
/// # Errors
/// Propagates any [`ProbeError`] from the underlying pattern runs.
pub fn measure_latency_profile(
    engine: &mut ProbingEngine<'_>,
    n: usize,
) -> Result<LatencyProfile, ProbeError> {
    let kind = engine.kind();
    let per_op = |engine: &mut ProbingEngine<'_>, pat: &TangoPattern| -> Result<f64, ProbeError> {
        engine.clear_rules();
        let res = engine.run(pat)?;
        Ok(res.install_time().as_millis_f64() / n as f64)
    };

    let add_asc = per_op(
        engine,
        &TangoPattern::priority_insertion(n, PriorityOrder::Ascending, kind),
    )?;
    let add_desc = per_op(
        engine,
        &TangoPattern::priority_insertion(n, PriorityOrder::Descending, kind),
    )?;
    let add_same = per_op(
        engine,
        &TangoPattern::priority_insertion(n, PriorityOrder::Same, kind),
    )?;
    let add_rand = per_op(
        engine,
        &TangoPattern::priority_insertion(n, PriorityOrder::Random(7), kind),
    )?;

    // Mods and deletes operate on a pre-installed constant-priority set.
    engine.clear_rules();
    let pre = TangoPattern::priority_insertion(n, PriorityOrder::Same, kind);
    engine.run(&pre)?;
    let mod_ms = engine
        .run(&TangoPattern::modify_batch(n, 1000, kind))?
        .install_time()
        .as_millis_f64()
        / n as f64;
    let del_ms = engine
        .run(&TangoPattern::delete_batch(n, 1000, kind))?
        .install_time()
        .as_millis_f64()
        / n as f64;
    engine.clear_rules();

    // desc_total − asc_total ≈ shift_us · n²/2  (in µs).
    let shift_us = ((add_desc - add_asc) * n as f64 * 1000.0 / ((n as f64).powi(2) / 2.0)).max(0.0);

    Ok(LatencyProfile {
        calibrated_n: n,
        add_asc_ms: add_asc,
        add_desc_ms: add_desc,
        add_same_ms: add_same,
        add_rand_ms: add_rand,
        mod_ms,
        del_ms,
        shift_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RuleKind;
    use ofwire::types::Dpid;
    use switchsim::harness::Testbed;
    use switchsim::profiles::SwitchProfile;

    fn profile_for(p: SwitchProfile, n: usize) -> LatencyProfile {
        let mut tb = Testbed::new(17);
        let dpid = Dpid(1);
        tb.attach_default(dpid, p);
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        measure_latency_profile(&mut eng, n).expect("latency profile completes")
    }

    #[test]
    fn hardware_profile_shows_fig3_asymmetries() {
        let lp = profile_for(SwitchProfile::vendor1(), 400);
        assert!(lp.priority_sensitive());
        // Descending ≫ random ≫ ascending ≈ same (Fig 3c shape).
        assert!(lp.add_desc_ms > lp.add_rand_ms);
        assert!(lp.add_rand_ms > 1.5 * lp.add_asc_ms);
        assert!((lp.add_asc_ms - lp.add_same_ms).abs() < 0.5 * lp.add_asc_ms);
        // Fig 3b's asymmetry: at large batch sizes, shift-heavy adds
        // overtake in-place mods by a wide margin (the paper reports
        // "modifying 5000 entries could be six times faster than adding
        // new flows").
        let add_5000 = lp.predict_add_total_ms(5000, PriorityOrder::Descending) / 5000.0;
        assert!(
            add_5000 > 2.0 * lp.mod_ms,
            "per-op add at n=5000 ({add_5000} ms) vs mod ({} ms)",
            lp.mod_ms
        );
        // The fitted shift cost is near the profile's true 9 µs.
        assert!(
            (lp.shift_us - 9.0).abs() < 2.0,
            "fitted shift {} µs",
            lp.shift_us
        );
    }

    #[test]
    fn ovs_profile_is_priority_insensitive() {
        let lp = profile_for(SwitchProfile::ovs(), 400);
        assert!(!lp.priority_sensitive());
        assert!(lp.shift_us < 0.5, "shift {} µs", lp.shift_us);
        // All four orderings cost about the same.
        let worst = lp
            .add_desc_ms
            .max(lp.add_asc_ms)
            .max(lp.add_same_ms)
            .max(lp.add_rand_ms);
        let best = lp
            .add_desc_ms
            .min(lp.add_asc_ms)
            .min(lp.add_same_ms)
            .min(lp.add_rand_ms);
        assert!(worst / best < 1.25, "worst {worst} best {best}");
    }

    #[test]
    fn prediction_matches_measurement_shape() {
        let lp = profile_for(SwitchProfile::vendor1(), 300);
        let asc = lp.predict_add_total_ms(300, PriorityOrder::Ascending);
        let desc = lp.predict_add_total_ms(300, PriorityOrder::Descending);
        let rand = lp.predict_add_total_ms(300, PriorityOrder::Random(1));
        assert!(desc > rand && rand > asc);
        // Prediction at the calibration point reproduces the measurement
        // within 25 %.
        let measured_desc = lp.add_desc_ms * 300.0;
        assert!(
            (desc - measured_desc).abs() / measured_desc < 0.25,
            "predicted {desc}, measured {measured_desc}"
        );
    }

    #[test]
    fn batch_prediction_combines_ops() {
        let lp = profile_for(SwitchProfile::vendor1(), 200);
        let t = lp.predict_batch_ms(10, 20, 30);
        let expect = lp.del_ms * 30.0 + lp.mod_ms * 20.0 + lp.add_asc_ms * 10.0;
        assert!((t - expect).abs() < 1e-9);
    }
}
