//! TCAM width-mode inference — one of the paper's future-work items
//! ("expand the set of Tango patterns to infer other switch
//! capabilities", §9), implemented here as an additional Tango pattern.
//!
//! The probe runs Algorithm 1 three times with L2-only, L3-only, and
//! combined L2+L3 rules, then classifies the TCAM's slot geometry from
//! the three fast-layer capacities (cf. Table 1):
//!
//! * equal everywhere → **fixed-width** slots (Switch #2);
//! * combined entries fit markedly fewer → **width-sensitive** (Switch
//!   #1's single-wide mode and Switch #3's adaptive mode both land
//!   here; they are distinguished by the capacity pair);
//! * no bounded layer at all → software switch.

use crate::driver::{self, mismatch, InferenceDriver, ProbeError, Step};
use crate::infer_size::{SizeDriver, SizeEstimate, SizeProbeConfig};
use crate::pattern::RuleKind;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use serde::{Deserialize, Serialize};
use switchsim::control::{ControlOp, OpOutcome};
use switchsim::harness::Testbed;

/// The classified TCAM geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GeometryClass {
    /// No bounded hardware layer observed up to the probe cap.
    Unbounded,
    /// Every entry kind fits the same count (e.g. fixed double-wide
    /// slots: Switch #2's 2560/2560).
    FixedWidth {
        /// Entries of any kind.
        entries: f64,
    },
    /// Combined L2+L3 entries consume roughly double the slots of
    /// single-layer entries (Switch #1's 4K/2K, Switch #3's 767/369).
    WidthSensitive {
        /// Single-layer (L2-only / L3-only) capacity.
        narrow: f64,
        /// Combined (L2+L3) capacity.
        wide: f64,
    },
}

/// The full geometry probe result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometryEstimate {
    /// Fast-layer capacity observed with L2-only rules.
    pub l2_only: Option<f64>,
    /// Fast-layer capacity observed with L3-only rules.
    pub l3_only: Option<f64>,
    /// Fast-layer capacity observed with combined rules.
    pub l2l3: Option<f64>,
    /// The classification.
    pub class: GeometryClass,
}

/// The three sub-probes, in issue order, with their legacy seeds.
const PHASES: [(RuleKind, u64); 3] = [(RuleKind::L2, 1), (RuleKind::L3, 2), (RuleKind::L2L3, 3)];

/// Where the geometry driver is within the current phase.
enum GeometryState {
    /// The pre-probe `delete_all` is in flight.
    ClearBefore,
    /// The embedded size probe is running.
    Size(Box<SizeDriver>),
    /// The post-probe `delete_all` is in flight.
    ClearAfter,
    /// Terminal (outcome already produced).
    Finished,
}

/// The geometry probe as a resumable state machine: three embedded
/// [`SizeDriver`] runs (L2-only, L3-only, combined), each bracketed by
/// `delete_all` cleanups, classified at the end.
pub struct GeometryDriver {
    cap: usize,
    trials: usize,
    phase: usize,
    state: GeometryState,
    fast: [Option<f64>; 3],
}

impl GeometryDriver {
    /// A driver probing with per-kind caps of `cap` rules and `trials`
    /// sampling trials per layer.
    #[must_use]
    pub fn new(cap: usize, trials: usize) -> GeometryDriver {
        GeometryDriver {
            cap,
            trials,
            phase: 0,
            state: GeometryState::ClearBefore,
            fast: [None; 3],
        }
    }

    fn size_config(&self, seed: u64) -> SizeProbeConfig {
        SizeProbeConfig {
            max_flows: self.cap,
            trials_per_level: self.trials,
            seed,
            ..SizeProbeConfig::default()
        }
    }

    /// Records one sub-probe's fast-layer capacity, if a bounded layer
    /// was observed (rejection, or a spill tier behind the fast one).
    fn record(&mut self, est: &SizeEstimate) {
        self.fast[self.phase] = if est.hit_rejection || est.levels.len() >= 2 {
            est.fast_layer_size()
        } else {
            None
        };
    }

    /// Classification from the three capacities (cf. Table 1).
    fn classify(&self) -> GeometryEstimate {
        let [l2_only, l3_only, l2l3] = self.fast;
        let class = match (l2_only.or(l3_only), l2l3) {
            (None, None) => GeometryClass::Unbounded,
            (Some(narrow), Some(wide)) => {
                // Within estimator noise (< 5 %), equal capacities mean
                // the width does not matter.
                if (narrow - wide).abs() / narrow.max(wide) < 0.10 {
                    GeometryClass::FixedWidth {
                        entries: (narrow + wide) / 2.0,
                    }
                } else {
                    GeometryClass::WidthSensitive { narrow, wide }
                }
            }
            // A bounded layer for only one kind: treat the bounded
            // figure as both (the other probe was capped too low).
            (Some(narrow), None) => GeometryClass::WidthSensitive {
                narrow,
                wide: f64::NAN,
            },
            (None, Some(wide)) => GeometryClass::WidthSensitive {
                narrow: f64::NAN,
                wide,
            },
        };
        GeometryEstimate {
            l2_only,
            l3_only,
            l2l3,
            class,
        }
    }

    /// After the pre-probe clear: start the phase's size driver, which
    /// may finish immediately under a degenerate config (`cap == 0`).
    fn start_size(&mut self) -> Step<GeometryEstimate> {
        let (kind, seed) = PHASES[self.phase];
        let cfg = self.size_config(seed);
        let mut sub = Box::new(SizeDriver::new(kind, cfg));
        match sub.start() {
            Step::Issue(ops) => {
                self.state = GeometryState::Size(sub);
                Step::Issue(ops)
            }
            Step::Done(est) => {
                self.record(&est);
                self.state = GeometryState::ClearAfter;
                Step::Issue(vec![ControlOp::FlowMod(FlowMod::delete_all())])
            }
        }
    }

    /// After the post-probe clear: next phase, or classify and finish.
    fn next_phase(&mut self) -> Step<GeometryEstimate> {
        self.phase += 1;
        if self.phase < PHASES.len() {
            self.state = GeometryState::ClearBefore;
            Step::Issue(vec![ControlOp::FlowMod(FlowMod::delete_all())])
        } else {
            self.state = GeometryState::Finished;
            Step::Done(self.classify())
        }
    }
}

impl InferenceDriver for GeometryDriver {
    type Outcome = GeometryEstimate;

    fn start(&mut self) -> Step<GeometryEstimate> {
        self.phase = 0;
        self.state = GeometryState::ClearBefore;
        Step::Issue(vec![ControlOp::FlowMod(FlowMod::delete_all())])
    }

    fn on_completion(
        &mut self,
        c: &driver::Completion,
    ) -> Result<Step<GeometryEstimate>, ProbeError> {
        match &mut self.state {
            GeometryState::ClearBefore => {
                let OpOutcome::FlowMod(_) = c.inner.outcome else {
                    return Err(mismatch(&"pre-probe delete_all", c));
                };
                Ok(self.start_size())
            }
            GeometryState::Size(sub) => match sub.on_completion(c)? {
                Step::Issue(ops) => Ok(Step::Issue(ops)),
                Step::Done(est) => {
                    self.record(&est);
                    self.state = GeometryState::ClearAfter;
                    Ok(Step::Issue(vec![ControlOp::FlowMod(FlowMod::delete_all())]))
                }
            },
            GeometryState::ClearAfter => {
                let OpOutcome::FlowMod(_) = c.inner.outcome else {
                    return Err(mismatch(&"post-probe delete_all", c));
                };
                Ok(self.next_phase())
            }
            GeometryState::Finished => Err(mismatch(&"no op in flight (driver finished)", c)),
        }
    }
}

/// Probes the switch's TCAM geometry. `cap` bounds each of the three
/// sub-probes (it should comfortably exceed the largest plausible
/// single-layer capacity so spill tiers become visible) — the
/// synchronous adapter over [`GeometryDriver`].
///
/// # Errors
/// [`ProbeError::CompletionMismatch`] if the transport violates its
/// completion contract.
pub fn probe_geometry(
    tb: &mut Testbed,
    dpid: Dpid,
    cap: usize,
    trials: usize,
) -> Result<GeometryEstimate, ProbeError> {
    driver::run_driver(tb, dpid, GeometryDriver::new(cap, trials))
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchsim::profiles::SwitchProfile;

    fn probe(profile: SwitchProfile, cap: usize) -> GeometryEstimate {
        let mut tb = Testbed::new(0x9e0);
        let dpid = Dpid(1);
        tb.attach_default(dpid, profile);
        probe_geometry(&mut tb, dpid, cap, 64).expect("geometry probe completes")
    }

    #[test]
    fn switch2_is_fixed_width() {
        let g = probe(SwitchProfile::vendor2(), 4096);
        match g.class {
            GeometryClass::FixedWidth { entries } => {
                assert_eq!(entries, 2560.0);
            }
            other => panic!("expected fixed width, got {other:?}"),
        }
    }

    #[test]
    fn switch3_is_width_sensitive() {
        let g = probe(SwitchProfile::vendor3(), 2048);
        match g.class {
            GeometryClass::WidthSensitive { narrow, wide } => {
                assert_eq!(narrow, 767.0);
                assert_eq!(wide, 369.0);
            }
            other => panic!("expected width sensitive, got {other:?}"),
        }
    }

    #[test]
    fn switch1_is_width_sensitive_behind_software() {
        // No rejection ever (software spill), but the fast layer is
        // bounded — the spill tier makes it observable.
        let g = probe(SwitchProfile::vendor1(), 6000);
        match g.class {
            GeometryClass::WidthSensitive { narrow, wide } => {
                // 64 sampling trials keep the test fast; tolerance is
                // relaxed accordingly (the classification only needs the
                // ~2× separation, not the 5 % headline).
                assert!((narrow - 4095.0).abs() / 4095.0 < 0.10, "narrow {narrow}");
                assert!((wide - 2047.0).abs() / 2047.0 < 0.10, "wide {wide}");
            }
            other => panic!("expected width sensitive, got {other:?}"),
        }
    }

    #[test]
    fn ovs_is_unbounded() {
        let g = probe(SwitchProfile::ovs(), 1024);
        assert_eq!(g.class, GeometryClass::Unbounded);
        assert_eq!(g.l2_only, None);
        assert_eq!(g.l2l3, None);
    }
}
